"""Unit tests for influencer ranking."""

import numpy as np
import pytest

from repro.analysis.influencers import rank_influencers, rank_selective_nodes
from repro.embedding.model import EmbeddingModel


@pytest.fixture
def model():
    A = np.array([[0.1, 0.1], [5.0, 0.0], [0.0, 3.0], [1.0, 1.0]])
    B = np.array([[9.0, 0.0], [0.1, 0.1], [0.0, 0.2], [2.0, 2.0]])
    return EmbeddingModel(A, B)


class TestRankInfluencers:
    def test_overall_ranking(self, model):
        top = rank_influencers(model, top_k=2)
        assert [n for n, _ in top] == [1, 2]  # row sums: 0.2, 5, 3, 2

    def test_per_topic(self, model):
        top = rank_influencers(model, topic=1, top_k=1)
        assert top[0][0] == 2

    def test_scores_descending(self, model):
        top = rank_influencers(model, top_k=4)
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_clamped(self, model):
        assert len(rank_influencers(model, top_k=100)) == 4

    def test_validation(self, model):
        with pytest.raises(ValueError):
            rank_influencers(model, top_k=0)
        with pytest.raises(ValueError):
            rank_influencers(model, topic=9)


class TestRankSelective:
    def test_overall(self, model):
        top = rank_selective_nodes(model, top_k=1)
        assert top[0][0] == 0  # B row sums: 9, 0.2, 0.2, 4

    def test_per_topic(self, model):
        top = rank_selective_nodes(model, topic=1, top_k=1)
        assert top[0][0] == 3

    def test_validation(self, model):
        with pytest.raises(ValueError):
            rank_selective_nodes(model, top_k=-1)
        with pytest.raises(ValueError):
            rank_selective_nodes(model, topic=2)
