"""Unit tests for the SBM experiment corpus."""

import numpy as np
import pytest

from repro.datasets.sbm_corpus import make_sbm_experiment


@pytest.fixture(scope="module")
def exp():
    return make_sbm_experiment(
        n_nodes=200, community_size=40, n_train=60, n_test=40, seed=0
    )


class TestExperimentStructure:
    def test_split_sizes(self, exp):
        assert len(exp.train) == 60 and len(exp.test) == 40
        assert len(exp.cascades) == 100

    def test_split_order_preserved(self, exp):
        assert exp.cascades[0] == exp.train[0]
        assert exp.cascades[60] == exp.test[0]

    def test_membership_blocks(self, exp):
        assert exp.membership.shape == (200,)
        assert exp.planted_partition.n_communities == 5

    def test_truth_dimensions(self, exp):
        assert exp.truth.n_nodes == 200
        assert exp.truth.n_topics == 10

    def test_min_cascade_size(self, exp):
        assert np.all(exp.cascades.sizes() >= 3)

    def test_deterministic(self):
        a = make_sbm_experiment(n_nodes=100, n_train=20, n_test=10, seed=5)
        b = make_sbm_experiment(n_nodes=100, n_train=20, n_test=10, seed=5)
        assert a.cascades == b.cascades
        assert a.graph == b.graph

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            make_sbm_experiment(n_nodes=50, n_train=-1, n_test=5)


class TestGenerativeProperties:
    def test_cascades_respect_topology(self, exp):
        """Every non-source infection must have an in-neighbor infected
        earlier (the simulator can only spread along edges)."""
        c = exp.cascades[0]
        infected_before = set()
        for v, t in c:
            if infected_before:
                preds = set(exp.graph.predecessors(v).tolist())
                assert preds & infected_before, f"node {v} has no infected parent"
            infected_before.add(v)

    def test_community_local_spread(self, exp):
        """Most infections stay in the seed's planted community."""
        fracs = []
        for c in exp.cascades:
            m = exp.membership[c.nodes]
            fracs.append(np.mean(m == m[0]))
        assert np.mean(fracs) > 0.4

    def test_size_spread(self, exp):
        # Hub communities give a heavy-ish tail even on this small
        # instance (the paper-scale corpus spans ~3-400 on 2000 nodes).
        sizes = exp.cascades.sizes()
        assert sizes.max() > 2 * np.median(sizes)
