"""Unit tests for level checkpointing (atomic save/load, digest binding)."""

import numpy as np
import pytest

from repro.community.mergetree import MergeTree
from repro.community.partition import Partition
from repro.embedding.optimizer import OptimizerConfig
from repro.parallel.arena import CorpusArena
from repro.parallel.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    CheckpointMismatchError,
    corpus_digest,
    run_digest,
)


@pytest.fixture
def tree():
    membership = np.array([0, 0, 1, 1, 2, 2])
    return MergeTree(Partition(membership), stop_at=1)


@pytest.fixture
def config():
    return OptimizerConfig(max_iters=10)


def _ab(seed=0, shape=(6, 3)):
    rng = np.random.default_rng(seed)
    return rng.random(shape), rng.random(shape)


class TestSaveLoadRoundtrip:
    def test_roundtrip(self, tmp_path):
        A, B = _ab()
        mgr = CheckpointManager(tmp_path / "ck")
        mgr.save(2, A, B, "deadbeef")
        ck = mgr.load()
        assert isinstance(ck, Checkpoint)
        assert ck.level_idx == 2 and ck.digest == "deadbeef"
        np.testing.assert_array_equal(ck.A, A)
        np.testing.assert_array_equal(ck.B, B)
        assert ck.rng_state is None

    def test_rng_state_roundtrip(self, tmp_path):
        rng = np.random.default_rng(42)
        rng.random(100)  # advance past the seed state
        state = rng.bit_generator.state
        expected_next = rng.random()
        A, B = _ab()
        mgr = CheckpointManager(tmp_path)
        mgr.save(0, A, B, "d", rng_state=state)
        restored = np.random.default_rng(0)
        restored.bit_generator.state = mgr.load().rng_state
        assert restored.random() == expected_next

    def test_load_without_checkpoint_returns_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load() is None

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        CheckpointManager(target)
        assert target.is_dir()

    def test_save_overwrites_previous_level(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        A0, B0 = _ab(0)
        A1, B1 = _ab(1)
        mgr.save(0, A0, B0, "d")
        mgr.save(1, A1, B1, "d")
        ck = mgr.load()
        assert ck.level_idx == 1
        np.testing.assert_array_equal(ck.A, A1)

    def test_clear(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        A, B = _ab()
        mgr.save(0, A, B, "d")
        mgr.clear()
        assert mgr.load() is None
        mgr.clear()  # idempotent


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        A, B = _ab()
        for level in range(3):
            mgr.save(level, A, B, "d")
        assert [p.name for p in tmp_path.iterdir()] == ["hier_checkpoint.npz"]

    def test_failed_write_preserves_previous_checkpoint(self, tmp_path, monkeypatch):
        mgr = CheckpointManager(tmp_path)
        A, B = _ab()
        mgr.save(0, A, B, "d")

        import repro.parallel.checkpoint as cp

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(cp.np, "savez", boom)
        with pytest.raises(OSError):
            mgr.save(1, A, B, "d")
        monkeypatch.undo()
        ck = mgr.load()  # previous checkpoint intact, no stray temp files
        assert ck.level_idx == 0
        assert [p.name for p in tmp_path.iterdir()] == ["hier_checkpoint.npz"]


class TestCorruptFiles:
    def test_garbage_bytes(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.path.write_bytes(b"not a zip archive at all")
        with pytest.raises(CheckpointError, match="unreadable"):
            mgr.load()

    def test_missing_arrays(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        np.savez(mgr.path, A=np.zeros(3))  # no B, no meta
        with pytest.raises(CheckpointError, match="need A, B, meta"):
            mgr.load()


class TestValidate:
    def test_matching_digest_returns_checkpoint(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        A, B = _ab()
        mgr.save(1, A, B, "abc")
        ck = mgr.validate("abc")
        assert ck is not None and ck.level_idx == 1

    def test_mismatched_digest_raises(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        A, B = _ab()
        mgr.save(1, A, B, "abc")
        with pytest.raises(CheckpointMismatchError, match="different run"):
            mgr.validate("xyz")

    def test_validate_without_checkpoint_returns_none(self, tmp_path):
        assert CheckpointManager(tmp_path).validate("abc") is None


class TestRunDigest:
    def test_deterministic(self, small_corpus, tree, config):
        assert run_digest(small_corpus, tree, config) == run_digest(
            small_corpus, tree, config
        )

    def test_sensitive_to_config(self, small_corpus, tree, config):
        other = OptimizerConfig(max_iters=11)
        assert run_digest(small_corpus, tree, config) != run_digest(
            small_corpus, tree, other
        )

    def test_sensitive_to_corpus(self, small_corpus, tree, config):
        from repro.cascades.types import Cascade, CascadeSet

        other = CascadeSet(6, list(small_corpus))
        other.append(Cascade([0, 5], [0.0, 1.0]))
        assert run_digest(small_corpus, tree, config) != run_digest(
            other, tree, config
        )

    def test_sensitive_to_tree(self, small_corpus, tree, config):
        other = MergeTree(
            Partition(np.array([0, 1, 0, 1, 2, 2])), stop_at=1
        )
        assert run_digest(small_corpus, tree, config) != run_digest(
            small_corpus, other, config
        )

    def test_corpus_digest_matches_arena(self, small_corpus):
        arena = CorpusArena(small_corpus)
        try:
            assert corpus_digest(small_corpus) == arena.content_digest()
        finally:
            arena.close()

    def test_arena_digest_requires_open_arena(self, small_corpus):
        arena = CorpusArena(small_corpus)
        arena.close()
        with pytest.raises(RuntimeError, match="closed"):
            arena.content_digest()
