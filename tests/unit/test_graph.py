"""Unit tests for the CSR Graph substrate."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """0 -> 1 (w=2), 1 -> 2 (w=1), 2 -> 0 (w=3)."""
    return Graph(3, [0, 1, 2], [1, 2, 0], [2.0, 1.0, 3.0])


class TestConstruction:
    def test_basic_counts(self, triangle):
        assert triangle.n_nodes == 3
        assert triangle.n_edges == 3

    def test_empty(self):
        g = Graph.empty(5)
        assert g.n_nodes == 5 and g.n_edges == 0
        assert g.successors(0).size == 0

    def test_duplicate_edges_merge_weights(self):
        g = Graph(2, [0, 0], [1, 1], [1.5, 2.5])
        assert g.n_edges == 1
        assert g.edge_weight(0, 1) == pytest.approx(4.0)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(2, [0], [0])

    def test_out_of_range_node(self):
        with pytest.raises(ValueError):
            Graph(2, [0], [2])
        with pytest.raises(ValueError):
            Graph(2, [-1], [0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [1])

    def test_default_weights_are_one(self):
        g = Graph(2, [0], [1])
        assert g.edge_weight(0, 1) == 1.0

    def test_from_edges_pairs(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.n_nodes == 3 and g.n_edges == 2

    def test_from_edges_triples(self):
        g = Graph.from_edges([(0, 1, 5.0)])
        assert g.edge_weight(0, 1) == 5.0

    def test_from_edges_empty(self):
        g = Graph.from_edges([], n_nodes=4)
        assert g.n_nodes == 4

    def test_negative_n_nodes(self):
        with pytest.raises(ValueError):
            Graph(-1, [], [])


class TestAccessors:
    def test_successors_sorted(self):
        g = Graph(4, [0, 0, 0], [3, 1, 2])
        assert np.array_equal(g.successors(0), [1, 2, 3])

    def test_predecessors(self, triangle):
        assert np.array_equal(triangle.predecessors(0), [2])
        assert triangle.predecessor_weights(0)[0] == 3.0

    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1
        assert np.array_equal(triangle.out_degree(), [1, 1, 1])

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_edge_weight_missing(self, triangle):
        with pytest.raises(KeyError):
            triangle.edge_weight(1, 0)

    def test_edges_iteration(self, triangle):
        edges = sorted(triangle.edges())
        assert edges == [(0, 1, 2.0), (1, 2, 1.0), (2, 0, 3.0)]

    def test_edge_arrays_roundtrip(self, triangle):
        src, dst, w = triangle.edge_arrays()
        g2 = Graph(3, src, dst, w)
        assert g2 == triangle

    def test_views_are_readonly(self, triangle):
        with pytest.raises(ValueError):
            triangle.successors(0)[0] = 9


class TestDerivedGraphs:
    def test_reverse(self, triangle):
        r = triangle.reverse()
        assert r.has_edge(1, 0)
        assert r.edge_weight(1, 0) == 2.0

    def test_reverse_involution(self, triangle):
        assert triangle.reverse().reverse() == triangle

    def test_subgraph(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3])
        sub, mapping = g.subgraph([1, 2])
        assert sub.n_nodes == 2
        assert sub.n_edges == 1
        assert np.array_equal(mapping, [1, 2])
        assert sub.has_edge(0, 1)  # local ids for 1 -> 2

    def test_subgraph_duplicate_nodes_rejected(self):
        g = Graph(3, [0], [1])
        with pytest.raises(ValueError):
            g.subgraph([0, 0])

    def test_filter_edges(self):
        g = Graph(3, [0, 1], [1, 2], [5.0, 1.0])
        f = g.filter_edges(min_weight=2.0)
        assert f.n_edges == 1 and f.has_edge(0, 1)

    def test_to_undirected_symmetric(self, triangle):
        u = triangle.to_undirected()
        for a, b, _ in triangle.edges():
            assert u.has_edge(a, b) and u.has_edge(b, a)

    def test_to_undirected_weight_sum(self):
        g = Graph(2, [0, 1], [1, 0], [1.0, 2.0])
        u = g.to_undirected()
        assert u.edge_weight(0, 1) == 3.0
        assert u.edge_weight(1, 0) == 3.0
