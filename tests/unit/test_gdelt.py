"""Unit tests for the synthetic GDELT generator."""

import numpy as np
import pytest

from repro.cascades.stats import node_participation_counts
from repro.datasets.gdelt import DEFAULT_REGIONS, GDELTConfig, SyntheticGDELT


@pytest.fixture(scope="module")
def world():
    return SyntheticGDELT(GDELTConfig(n_sites=600), seed=7)


@pytest.fixture(scope="module")
def events(world):
    return world.sample_events(150, seed=8)


class TestConfig:
    def test_defaults_valid(self):
        GDELTConfig()

    def test_region_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            GDELTConfig(regions=(("a", 0.5), ("b", 0.2)))

    def test_early_before_window(self):
        with pytest.raises(ValueError):
            GDELTConfig(window_hours=10.0, early_hours=10.0)

    def test_cluster_size_validation(self):
        with pytest.raises(ValueError):
            GDELTConfig(sites_per_cluster=0)


class TestWorldStructure:
    def test_region_counts_match_fractions(self, world):
        counts = np.bincount(world.regions)
        fracs = np.array([f for _, f in DEFAULT_REGIONS])
        assert counts.sum() == 600
        assert np.allclose(counts / 600, fracs, atol=0.01)

    def test_clusters_nest_in_regions(self, world):
        for c in range(world.n_clusters):
            sites = np.flatnonzero(world.clusters == c)
            assert np.unique(world.regions[sites]).size == 1

    def test_site_names_carry_region(self, world):
        name = world.site_name(0)
        assert name.startswith("site0000.")
        assert name.split(".")[1] in world.region_names

    def test_aggregators_are_most_popular(self, world):
        agg_min = world.popularity[world.is_aggregator].min()
        reg_max = world.popularity[~world.is_aggregator].max()
        assert agg_min >= reg_max

    def test_deterministic(self):
        a = SyntheticGDELT(GDELTConfig(n_sites=200), seed=1)
        b = SyntheticGDELT(GDELTConfig(n_sites=200), seed=1)
        assert a.graph == b.graph
        assert np.array_equal(a.popularity, b.popularity)

    def test_partitions(self, world):
        assert world.region_partition.n_nodes == 600
        assert world.cluster_partition.n_communities == world.n_clusters

    def test_early_fraction(self, world):
        assert world.early_fraction == pytest.approx(5.0 / 72.0)


class TestEvents:
    def test_event_count_and_min_size(self, events):
        assert len(events) == 150
        assert np.all(events.sizes() >= 3)

    def test_events_mostly_regional(self, world, events):
        loc = [
            np.mean(world.regions[c.nodes] == world.regions[c.nodes[0]])
            for c in events
        ]
        assert np.mean(loc) > 0.75

    def test_short_life_cycle(self, world, events):
        """§II: most events finish their spread well inside the window
        (time to 90 % of reports under 50 of 72 hours)."""
        t90 = [np.quantile(c.times - c.times[0], 0.9) for c in events]
        assert np.median(t90) < 50.0

    def test_matthew_effect(self, world, events):
        """Aggregators (most popular) report far more events than median."""
        counts = node_participation_counts(events)
        agg_median = np.median(counts[world.is_aggregator])
        reg_median = np.median(counts[~world.is_aggregator])
        assert agg_median > 2 * reg_median

    def test_aggregators_do_not_seed(self, world, events):
        for c in events:
            assert not world.is_aggregator[c.source]

    def test_split_for_prediction(self, world, events):
        train, test = world.split_for_prediction(events, 100)
        assert len(train) == 100 and len(test) == 50

    def test_negative_count_rejected(self, world):
        with pytest.raises(ValueError):
            world.sample_events(-1)
