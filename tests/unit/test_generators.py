"""Unit tests for graph generators."""

import numpy as np
import pytest

from repro.graphs.generators import (
    barabasi_albert,
    core_periphery,
    erdos_renyi,
    planted_partition_sizes,
    stochastic_block_model,
)


class TestPlantedPartition:
    def test_block_sizes(self):
        m = planted_partition_sizes(100, 25)
        sizes = np.bincount(m)
        assert np.array_equal(sizes, [25, 25, 25, 25])

    def test_remainder_absorbed_into_last(self):
        m = planted_partition_sizes(105, 25)
        sizes = np.bincount(m)
        assert sizes[-1] == 30
        assert sizes[:-1].tolist() == [25, 25, 25]

    def test_fewer_nodes_than_block(self):
        m = planted_partition_sizes(5, 10)
        assert np.all(m == 0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            planted_partition_sizes(10, 0)


class TestSBM:
    def test_deterministic(self):
        g1, m1 = stochastic_block_model(100, 25, seed=0)
        g2, m2 = stochastic_block_model(100, 25, seed=0)
        assert g1 == g2 and np.array_equal(m1, m2)

    def test_intra_density_exceeds_inter(self):
        g, m = stochastic_block_model(200, 50, p_in=0.2, p_out=0.005, seed=1)
        src, dst, _ = g.edge_arrays()
        intra = np.sum(m[src] == m[dst])
        inter = g.n_edges - intra
        # 4 blocks of 50: intra cells ~ 4*50*49, inter ~ 200*199-intra cells
        intra_rate = intra / (4 * 50 * 49)
        inter_rate = inter / (200 * 199 - 4 * 50 * 49)
        assert intra_rate > 10 * inter_rate

    def test_mean_degree_close_to_paper(self):
        # Paper: 2000 nodes, alpha=.2, beta=.001, mean degree ~ 10.
        g, _ = stochastic_block_model(1000, 40, p_in=0.2, p_out=0.001, seed=2)
        mean_deg = g.n_edges / g.n_nodes
        expected = 0.2 * 39 + 0.001 * (1000 - 40)
        assert mean_deg == pytest.approx(expected, rel=0.15)

    def test_custom_membership(self):
        member = np.array([0, 0, 1, 1])
        g, m = stochastic_block_model(
            4, 2, p_in=1.0, p_out=0.0, seed=3, membership=member
        )
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_membership_length_validated(self):
        with pytest.raises(ValueError):
            stochastic_block_model(4, 2, membership=[0, 1])

    def test_no_self_loops(self):
        g, _ = stochastic_block_model(50, 10, p_in=0.9, p_out=0.1, seed=4)
        src, dst, _ = g.edge_arrays()
        assert not np.any(src == dst)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model(10, 5, p_in=1.5)


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        g = erdos_renyi(200, 0.05, seed=0)
        expected = 0.05 * 200 * 199
        assert g.n_edges == pytest.approx(expected, rel=0.15)

    def test_p_zero(self):
        assert erdos_renyi(50, 0.0, seed=0).n_edges == 0


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(100, m_attach=3, seed=0)
        assert g.n_edges == (100 - 3) * 3

    def test_heavy_tail_in_degree(self):
        g = barabasi_albert(800, m_attach=3, seed=1)
        deg = g.in_degree()
        # Preferential attachment: max in-degree far above the mean.
        assert deg.max() > 8 * deg.mean()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, m_attach=3)
        with pytest.raises(ValueError):
            barabasi_albert(10, m_attach=0)


class TestCorePeriphery:
    def test_mask_shape(self):
        g, is_core = core_periphery(20, 80, seed=0)
        assert is_core.sum() == 20
        assert g.n_nodes == 100

    def test_core_denser_than_periphery(self):
        g, is_core = core_periphery(30, 300, p_core=0.5, p_periphery=0.002, seed=1)
        src, dst, _ = g.edge_arrays()
        cc = np.sum(is_core[src] & is_core[dst])
        pp = np.sum(~is_core[src] & ~is_core[dst])
        cc_rate = cc / (30 * 29)
        pp_rate = pp / (300 * 299)
        assert cc_rate > 20 * pp_rate

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            core_periphery(5, 5, p_core=2.0)
