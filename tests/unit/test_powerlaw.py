"""Unit tests for power-law fitting and log binning."""

import numpy as np
import pytest

from repro.analysis.powerlaw import fit_power_law, log_binned_histogram


class TestFit:
    def test_recovers_known_exponent(self):
        rng = np.random.default_rng(0)
        alpha_true = 2.5
        # inverse-CDF sampling of a pure power law above x_min=1
        u = rng.uniform(size=20000)
        x = (1 - u) ** (-1 / (alpha_true - 1))
        alpha, xmin = fit_power_law(x, x_min=1.0)
        assert alpha == pytest.approx(alpha_true, rel=0.05)
        assert xmin == 1.0

    def test_default_xmin_is_minimum(self):
        x = np.array([2.0, 3.0, 10.0])
        _, xmin = fit_power_law(x)
        assert xmin == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([]))

    def test_rejects_nonpositive_xmin(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0]), x_min=0.0)

    def test_rejects_insufficient_tail(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0]), x_min=100.0)

    def test_ignores_nonpositive_values(self):
        x = np.array([-1.0, 0.0, 2.0, 3.0, 4.0])
        alpha, xmin = fit_power_law(x)
        assert xmin == 2.0


class TestLogBinnedHistogram:
    def test_counts_total(self):
        x = np.geomspace(1, 1000, 500)
        centers, counts = log_binned_histogram(x, n_bins=10)
        assert counts.sum() == 500
        assert len(centers) == 10

    def test_centers_geometric(self):
        x = np.array([1.0, 10.0, 100.0])
        centers, _ = log_binned_histogram(x, n_bins=4)
        ratios = centers[1:] / centers[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_xmin_cutoff(self):
        x = np.array([0.5, 1.0, 5.0, 50.0])
        _, counts = log_binned_histogram(x, n_bins=3, x_min=1.0)
        assert counts.sum() == 3  # 0.5 excluded

    def test_single_value(self):
        centers, counts = log_binned_histogram(np.array([5.0, 5.0]), n_bins=3)
        assert counts.sum() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            log_binned_histogram(np.array([1.0]), n_bins=0)
        with pytest.raises(ValueError):
            log_binned_histogram(np.array([-1.0]))
