"""Unit tests for the discrete Kempe diffusion models."""

import numpy as np
import pytest

from repro.cascades.kempe import (
    estimate_spread,
    greedy_influence_maximization,
    independent_cascade,
    linear_threshold,
)
from repro.graphs.graph import Graph


@pytest.fixture
def chain():
    return Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0])


@pytest.fixture
def star():
    """Hub 0 pointing at 5 leaves."""
    return Graph(6, [0] * 5, [1, 2, 3, 4, 5], [1.0] * 5)


class TestIndependentCascade:
    def test_probability_one_floods_chain(self, chain):
        c = independent_cascade(chain, [0], activation_probability=1.0, seed=0)
        assert c.size == 4
        assert c.times.tolist() == [0.0, 1.0, 2.0, 3.0]  # rounds

    def test_probability_zero_stays_at_seed(self, chain):
        c = independent_cascade(chain, [0], activation_probability=0.0, seed=0)
        assert c.size == 1 and c.source == 0

    def test_edge_weights_as_probabilities(self):
        g = Graph(2, [0], [1], [1.0])
        c = independent_cascade(g, [0], seed=0)
        assert c.size == 2

    def test_invalid_weight_probability(self):
        g = Graph(2, [0], [1], [5.0])
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            independent_cascade(g, [0], seed=0)

    def test_multiple_seeds(self, chain):
        c = independent_cascade(chain, [0, 2], activation_probability=0.0, seed=0)
        assert set(c.nodes.tolist()) == {0, 2}
        assert np.all(c.times == 0.0)

    def test_max_rounds(self, chain):
        c = independent_cascade(
            chain, [0], activation_probability=1.0, seed=0, max_rounds=2
        )
        assert c.size == 3  # rounds 0, 1, 2

    def test_one_shot_activation(self):
        """Each edge fires at most once: p=0.5 from a single hub gives a
        binomially distributed spread, never retries."""
        g = Graph(11, [0] * 10, list(range(1, 11)), [1.0] * 10)
        sizes = [
            independent_cascade(g, [0], activation_probability=0.5, seed=s).size
            for s in range(300)
        ]
        mean_extra = np.mean(sizes) - 1
        assert mean_extra == pytest.approx(5.0, rel=0.15)

    def test_bad_seed_node(self, chain):
        with pytest.raises(ValueError):
            independent_cascade(chain, [9])

    def test_bad_probability(self, chain):
        with pytest.raises(ValueError):
            independent_cascade(chain, [0], activation_probability=1.5)

    def test_deterministic(self, star):
        a = independent_cascade(star, [0], activation_probability=0.5, seed=7)
        b = independent_cascade(star, [0], activation_probability=0.5, seed=7)
        assert a == b


class TestLinearThreshold:
    def test_full_weight_always_activates(self):
        # single in-edge of weight 1.0 >= any threshold in [0,1)
        g = Graph(2, [0], [1], [1.0])
        hits = sum(linear_threshold(g, [0], seed=s).size == 2 for s in range(50))
        assert hits >= 49  # θ=1.0 has measure zero

    def test_weak_weight_rarely_activates(self):
        g = Graph(2, [0], [1], [0.1])
        hits = sum(linear_threshold(g, [0], seed=s).size == 2 for s in range(200))
        assert hits == pytest.approx(20, abs=12)  # P(θ <= 0.1) = 0.1

    def test_pressure_accumulates(self):
        # two parents each 0.5: both active -> total pressure 1.0 -> always fires
        g = Graph(3, [0, 1], [2, 2], [0.5, 0.5])
        hits = sum(linear_threshold(g, [0, 1], seed=s).size == 3 for s in range(50))
        assert hits >= 49

    def test_normalization_of_heavy_in_weights(self):
        # in-weights sum to 4 -> normalized; a single active parent gives 0.25
        g = Graph(5, [0, 1, 2, 3], [4, 4, 4, 4], [1.0] * 4)
        hits = sum(linear_threshold(g, [0], seed=s).size == 2 for s in range(300))
        assert hits == pytest.approx(75, abs=30)

    def test_rounds_recorded(self, chain):
        # weight-1 chain: LT activates each hop deterministically
        c = linear_threshold(chain, [0], seed=0)
        assert c.times.tolist() == sorted(c.times.tolist())

    def test_bad_seed_node(self, chain):
        with pytest.raises(ValueError):
            linear_threshold(chain, [-1])


class TestSpreadAndGreedy:
    def test_estimate_spread_bounds(self, star):
        s = estimate_spread(
            star, [0], model="ic", n_samples=50, activation_probability=0.5, seed=0
        )
        assert 1.0 <= s <= 6.0

    def test_estimate_spread_monotone_in_probability(self, star):
        lo = estimate_spread(star, [0], n_samples=200, activation_probability=0.2, seed=1)
        hi = estimate_spread(star, [0], n_samples=200, activation_probability=0.8, seed=1)
        assert hi > lo

    def test_bad_model(self, star):
        with pytest.raises(ValueError):
            estimate_spread(star, [0], model="sir")

    def test_greedy_picks_hub_first(self, star):
        seeds, spread = greedy_influence_maximization(
            star, k=1, n_samples=40, activation_probability=0.9, seed=2
        )
        assert seeds == [0]
        assert spread > 3.0

    def test_greedy_k_distinct(self, star):
        seeds, _ = greedy_influence_maximization(
            star, k=3, n_samples=20, activation_probability=0.3, seed=3
        )
        assert len(set(seeds)) == 3

    def test_greedy_validation(self, star):
        with pytest.raises(ValueError):
            greedy_influence_maximization(star, k=0)
