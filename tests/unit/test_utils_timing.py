"""Unit tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Stopwatch, time_callable


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            sum(range(100))
        assert sw.elapsed > 0
        assert sw.laps == 1

    def test_multiple_laps(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw:
                pass
        assert sw.laps == 3
        assert sw.mean_lap == pytest.approx(sw.elapsed / 3)

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0 and sw.laps == 0

    def test_mean_lap_empty(self):
        assert Stopwatch().mean_lap == 0.0

    def test_stop_returns_lap(self):
        sw = Stopwatch()
        sw.start()
        lap = sw.stop()
        assert lap >= 0
        assert lap == sw.elapsed


class TestTimeCallable:
    def test_positive(self):
        assert time_callable(lambda: sum(range(1000))) > 0

    def test_repeats_take_min(self):
        t1 = time_callable(lambda: None, repeats=5)
        assert t1 >= 0

    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
