"""Unit tests for cascade JSON-lines I/O."""

import json

import pytest

from repro.cascades.io import load_cascades_jsonl, save_cascades_jsonl
from repro.cascades.types import Cascade, CascadeSet


class TestRoundtrip:
    def test_roundtrip_preserves_everything(self, small_corpus, tmp_path):
        p = tmp_path / "corpus.jsonl"
        save_cascades_jsonl(small_corpus, p)
        loaded = load_cascades_jsonl(p)
        assert loaded == small_corpus

    def test_roundtrip_empty_corpus(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        save_cascades_jsonl(CascadeSet(7), p)
        loaded = load_cascades_jsonl(p)
        assert loaded.n_nodes == 7 and len(loaded) == 0

    def test_float_precision_preserved(self, tmp_path):
        t = 0.12345678901234567
        cs = CascadeSet(2, [Cascade([0, 1], [0.0, t])])
        p = tmp_path / "prec.jsonl"
        save_cascades_jsonl(cs, p)
        loaded = load_cascades_jsonl(p)
        assert loaded[0].times[1] == t


class TestErrors:
    def test_empty_file(self, tmp_path):
        p = tmp_path / "x.jsonl"
        p.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_cascades_jsonl(p)

    def test_missing_header(self, tmp_path):
        p = tmp_path / "x.jsonl"
        p.write_text(json.dumps({"nodes": [0], "times": [0.0]}) + "\n")
        with pytest.raises(ValueError, match="header"):
            load_cascades_jsonl(p)

    def test_count_mismatch(self, tmp_path):
        p = tmp_path / "x.jsonl"
        p.write_text(json.dumps({"n_nodes": 3, "n_cascades": 2}) + "\n")
        with pytest.raises(ValueError, match="declares"):
            load_cascades_jsonl(p)

    def test_bad_record_reports_line(self, tmp_path):
        p = tmp_path / "x.jsonl"
        lines = [
            json.dumps({"n_nodes": 3, "n_cascades": 1}),
            json.dumps({"nodes": [0, 0], "times": [0.0, 1.0]}),  # dup node
        ]
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":2:"):
            load_cascades_jsonl(p)

    def test_blank_lines_skipped(self, tmp_path, small_corpus):
        p = tmp_path / "x.jsonl"
        save_cascades_jsonl(small_corpus, p)
        content = p.read_text().replace("\n", "\n\n")
        p.write_text(content)
        assert load_cascades_jsonl(p) == small_corpus


class TestCorruptFiles:
    """A killed writer leaves truncated/garbled bytes; loading must name
    the offending line, not crash later inside inference."""

    def test_malformed_header_reports_line_1(self, tmp_path):
        p = tmp_path / "x.jsonl"
        p.write_text('{"n_nodes": 3,\n')
        with pytest.raises(ValueError, match=r":1: malformed header"):
            load_cascades_jsonl(p)

    def test_truncated_record_reports_line(self, tmp_path, small_corpus):
        p = tmp_path / "x.jsonl"
        save_cascades_jsonl(small_corpus, p)
        text = p.read_text().rstrip("\n")
        p.write_text(text[: len(text) // 2])  # chop mid-record
        with pytest.raises(ValueError, match=r"x\.jsonl:\d+: malformed"):
            load_cascades_jsonl(p)

    def test_non_monotone_times_rejected(self, tmp_path):
        p = tmp_path / "x.jsonl"
        lines = [
            json.dumps({"n_nodes": 3, "n_cascades": 1}),
            json.dumps({"nodes": [0, 1], "times": [1.0, 0.0]}),
        ]
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r":2:.*sorted"):
            load_cascades_jsonl(p)

    def test_node_id_beyond_n_nodes_rejected(self, tmp_path):
        p = tmp_path / "x.jsonl"
        lines = [
            json.dumps({"n_nodes": 3, "n_cascades": 1}),
            json.dumps({"nodes": [0, 3], "times": [0.0, 1.0]}),
        ]
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r":2:.*node id 3 outside \[0, 3\)"):
            load_cascades_jsonl(p)

    def test_negative_node_id_rejected(self, tmp_path):
        p = tmp_path / "x.jsonl"
        lines = [
            json.dumps({"n_nodes": 3, "n_cascades": 1}),
            json.dumps({"nodes": [-1, 1], "times": [0.0, 1.0]}),
        ]
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r":2:.*node id -1"):
            load_cascades_jsonl(p)

    def test_missing_times_key_reports_line(self, tmp_path):
        p = tmp_path / "x.jsonl"
        lines = [
            json.dumps({"n_nodes": 3, "n_cascades": 1}),
            json.dumps({"nodes": [0, 1]}),
        ]
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r":2: bad cascade record"):
            load_cascades_jsonl(p)

    def test_truncated_tail_flagged_as_count_mismatch(self, tmp_path, small_corpus):
        p = tmp_path / "x.jsonl"
        save_cascades_jsonl(small_corpus, p)
        lines = p.read_text().splitlines()
        p.write_text("\n".join(lines[:-1]) + "\n")  # drop last full record
        with pytest.raises(ValueError, match="truncated"):
            load_cascades_jsonl(p)
