"""Unit tests for propagation-tree reconstruction and analytics."""

import numpy as np
import pytest

from repro.cascades.trees import (
    map_infector_tree,
    max_breadth,
    structural_virality,
    tree_depth,
)
from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel


@pytest.fixture
def chain_model():
    """Rates strongly favor the chain 0 -> 1 -> 2 -> 3."""
    A = np.zeros((4, 3))
    B = np.zeros((4, 3))
    A[0, 0] = 5.0
    B[1, 0] = 5.0
    A[1, 1] = 5.0
    B[2, 1] = 5.0
    A[2, 2] = 5.0
    B[3, 2] = 5.0
    # small background so densities are well-defined for all pairs
    return EmbeddingModel(A + 0.01, B + 0.01)


class TestMapInfectorTree:
    def test_chain_recovered(self, chain_model):
        c = Cascade([0, 1, 2, 3], [0.0, 0.1, 0.2, 0.3])
        parents = map_infector_tree(chain_model, c)
        assert parents.tolist() == [-1, 0, 1, 2]

    def test_seed_has_no_parent(self, chain_model):
        c = Cascade([0, 1], [0.0, 0.5])
        assert map_infector_tree(chain_model, c)[0] == -1

    def test_ties_with_seed_are_roots(self, chain_model):
        c = Cascade([0, 1, 2], [0.0, 0.0, 1.0])
        parents = map_infector_tree(chain_model, c)
        assert parents[0] == -1 and parents[1] == -1
        assert parents[2] in (0, 1)

    def test_empty_and_single(self, chain_model):
        assert map_infector_tree(chain_model, Cascade([], [])).size == 0
        assert map_infector_tree(chain_model, Cascade([2], [0.0])).tolist() == [-1]

    def test_parents_point_backwards(self, chain_model):
        c = Cascade([3, 0, 2, 1], [0.0, 0.2, 0.4, 0.6])
        parents = map_infector_tree(chain_model, c)
        for i, p in enumerate(parents):
            assert p < i


class TestTreeStats:
    def test_chain_depth(self):
        parents = np.array([-1, 0, 1, 2])
        assert tree_depth(parents) == 3
        assert max_breadth(parents) == 1

    def test_star_breadth(self):
        parents = np.array([-1, 0, 0, 0])
        assert tree_depth(parents) == 1
        assert max_breadth(parents) == 3

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert tree_depth(empty) == 0
        assert max_breadth(empty) == 0
        assert structural_virality(empty) == 0.0

    def test_virality_chain_exceeds_star(self):
        chain = np.array([-1, 0, 1, 2, 3, 4])
        star = np.array([-1, 0, 0, 0, 0, 0])
        assert structural_virality(chain) > structural_virality(star)

    def test_virality_two_nodes(self):
        assert structural_virality(np.array([-1, 0])) == pytest.approx(1.0)

    def test_virality_star_value(self):
        # star with center + 3 leaves: pairs (c,l)=1 x3, (l,l)=2 x3 -> 1.5
        star = np.array([-1, 0, 0, 0])
        assert structural_virality(star) == pytest.approx(1.5)

    def test_forest_distance_through_virtual_root(self):
        # two roots: distance between them = 2 (via virtual origin)
        forest = np.array([-1, -1])
        assert structural_virality(forest) == pytest.approx(2.0)
