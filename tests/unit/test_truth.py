"""Unit tests for ground-truth embedding construction."""

import numpy as np
import pytest

from repro.datasets.truth import community_aligned_embeddings


class TestCommunityAlignment:
    def test_on_topic_dominates(self):
        membership = np.array([0, 0, 1, 1, 2, 2])
        m = community_aligned_embeddings(membership, n_topics=3, noise=0.0, seed=0)
        for v, c in enumerate(membership):
            assert np.argmax(m.A[v]) == c
            assert np.argmax(m.B[v]) == c

    def test_topic_wraparound(self):
        membership = np.array([0, 1, 2, 3])
        m = community_aligned_embeddings(membership, n_topics=2, noise=0.0, seed=0)
        assert np.argmax(m.A[2]) == 0  # community 2 -> topic 0
        assert np.argmax(m.A[3]) == 1

    def test_same_community_high_rate(self):
        membership = np.array([0, 0, 1, 1])
        m = community_aligned_embeddings(
            membership, n_topics=2, on_topic=1.0, off_topic=0.01, noise=0.0, seed=0
        )
        intra = m.hazard_rate(0, 1)
        inter = m.hazard_rate(0, 2)
        assert intra > 20 * inter

    def test_influence_scale_applied(self):
        membership = np.zeros(3, dtype=int)
        scale = np.array([1.0, 2.0, 4.0])
        m = community_aligned_embeddings(
            membership, n_topics=1, noise=0.0, influence_scale=scale, seed=0
        )
        assert m.A[1, 0] == pytest.approx(2 * m.A[0, 0])
        assert m.A[2, 0] == pytest.approx(4 * m.A[0, 0])
        # selectivity untouched
        assert m.B[1, 0] == pytest.approx(m.B[0, 0])

    def test_noise_bounds(self):
        membership = np.zeros(50, dtype=int)
        m = community_aligned_embeddings(
            membership, n_topics=1, on_topic=1.0, noise=0.2, seed=1
        )
        assert np.all(m.A[:, 0] >= 0.8) and np.all(m.A[:, 0] <= 1.2)

    def test_deterministic(self):
        membership = np.array([0, 1, 0, 1])
        a = community_aligned_embeddings(membership, n_topics=2, seed=3)
        b = community_aligned_embeddings(membership, n_topics=2, seed=3)
        assert a == b

    def test_validation(self):
        membership = np.zeros(3, dtype=int)
        with pytest.raises(ValueError):
            community_aligned_embeddings(membership, 2, on_topic=0.1, off_topic=0.5)
        with pytest.raises(ValueError):
            community_aligned_embeddings(membership, 2, noise=1.0)
        with pytest.raises(ValueError):
            community_aligned_embeddings(
                membership, 2, influence_scale=np.ones(5)
            )
        with pytest.raises(ValueError):
            community_aligned_embeddings(
                membership, 2, influence_scale=-np.ones(3)
            )
