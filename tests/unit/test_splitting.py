"""Unit tests for sub-cascade splitting (Alg. 1 lines 1-11)."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.community.partition import Partition
from repro.parallel.splitting import split_cascades, subcorpus_for_community


@pytest.fixture
def corpus_and_partition():
    cs = CascadeSet(6)
    cs.append(Cascade([0, 3, 1, 4], [0.0, 0.1, 0.2, 0.3]))
    cs.append(Cascade([2, 5], [0.0, 0.5]))
    cs.append(Cascade([0, 1, 2], [0.0, 0.4, 0.8]))
    part = Partition([0, 0, 0, 1, 1, 1])  # nodes 0-2 vs 3-5
    return cs, part


class TestSplitCascades:
    def test_sub_cascade_contents(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        # community 0 gets [0,1] from c0, [2] from c1, [0,1,2] from c2
        sizes0 = sorted(c.size for c in subs[0])
        assert sizes0 == [1, 2, 3]
        sizes1 = sorted(c.size for c in subs[1])
        assert sizes1 == [1, 2]

    def test_min_size_drops_singletons(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=2)
        assert all(c.size >= 2 for sub in subs for c in sub)

    def test_times_preserved(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        c0 = subs[0][0]
        assert c0.nodes.tolist() == [0, 1]
        assert c0.times.tolist() == [0.0, 0.2]

    def test_order_preserved(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        for sub in subs:
            for c in sub:
                assert np.all(np.diff(c.times) >= 0)

    def test_total_infection_conservation(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        total = sum(sub.total_infections() for sub in subs)
        assert total == cs.total_infections()

    def test_universe_mismatch(self, corpus_and_partition):
        cs, _ = corpus_and_partition
        with pytest.raises(ValueError):
            split_cascades(cs, Partition([0, 1]))

    def test_trivial_partition_identity(self, corpus_and_partition):
        cs, _ = corpus_and_partition
        subs = split_cascades(cs, Partition.trivial(6), min_size=1)
        assert len(subs) == 1
        assert subs[0].sizes().tolist() == cs.sizes().tolist()


class TestSubcorpusRelabeling:
    def test_relabel_roundtrip(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        nodes = part.members(1)
        local, mapping = subcorpus_for_community(subs[1], nodes)
        assert local.n_nodes == 3
        for lc, gc in zip(local, subs[1]):
            assert np.array_equal(mapping[lc.nodes], gc.nodes)
            assert np.array_equal(lc.times, gc.times)

    def test_rejects_foreign_nodes(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        with pytest.raises(ValueError, match="outside"):
            subcorpus_for_community(subs[0], np.array([0, 1]))  # missing node 2
