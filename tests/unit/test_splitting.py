"""Unit tests for sub-cascade splitting (Alg. 1 lines 1-11)."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.community.partition import Partition
from repro.parallel.splitting import (
    split_cascades,
    split_positions,
    subcorpus_for_community,
)


@pytest.fixture
def corpus_and_partition():
    cs = CascadeSet(6)
    cs.append(Cascade([0, 3, 1, 4], [0.0, 0.1, 0.2, 0.3]))
    cs.append(Cascade([2, 5], [0.0, 0.5]))
    cs.append(Cascade([0, 1, 2], [0.0, 0.4, 0.8]))
    part = Partition([0, 0, 0, 1, 1, 1])  # nodes 0-2 vs 3-5
    return cs, part


class TestSplitCascades:
    def test_sub_cascade_contents(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        # community 0 gets [0,1] from c0, [2] from c1, [0,1,2] from c2
        sizes0 = sorted(c.size for c in subs[0])
        assert sizes0 == [1, 2, 3]
        sizes1 = sorted(c.size for c in subs[1])
        assert sizes1 == [1, 2]

    def test_min_size_drops_singletons(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=2)
        assert all(c.size >= 2 for sub in subs for c in sub)

    def test_times_preserved(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        c0 = subs[0][0]
        assert c0.nodes.tolist() == [0, 1]
        assert c0.times.tolist() == [0.0, 0.2]

    def test_order_preserved(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        for sub in subs:
            for c in sub:
                assert np.all(np.diff(c.times) >= 0)

    def test_total_infection_conservation(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        total = sum(sub.total_infections() for sub in subs)
        assert total == cs.total_infections()

    def test_universe_mismatch(self, corpus_and_partition):
        cs, _ = corpus_and_partition
        with pytest.raises(ValueError):
            split_cascades(cs, Partition([0, 1]))

    def test_trivial_partition_identity(self, corpus_and_partition):
        cs, _ = corpus_and_partition
        subs = split_cascades(cs, Partition.trivial(6), min_size=1)
        assert len(subs) == 1
        assert subs[0].sizes().tolist() == cs.sizes().tolist()


class TestSubcorpusRelabeling:
    def test_relabel_roundtrip(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        nodes = part.members(1)
        local, mapping = subcorpus_for_community(subs[1], nodes)
        assert local.n_nodes == 3
        for lc, gc in zip(local, subs[1]):
            assert np.array_equal(mapping[lc.nodes], gc.nodes)
            assert np.array_equal(lc.times, gc.times)

    def test_rejects_foreign_nodes(self, corpus_and_partition):
        cs, part = corpus_and_partition
        subs = split_cascades(cs, part, min_size=1)
        with pytest.raises(ValueError, match="outside"):
            subcorpus_for_community(subs[0], np.array([0, 1]))  # missing node 2


class TestSplitPositions:
    """Index-based splitting must mirror the object path exactly."""

    def _flat(self, cs):
        nodes = (
            np.concatenate([c.nodes for c in cs])
            if len(cs)
            else np.empty(0, dtype=np.int64)
        )
        times = (
            np.concatenate([c.times for c in cs])
            if len(cs)
            else np.empty(0, dtype=np.float64)
        )
        offsets = np.zeros(len(cs) + 1, dtype=np.int64)
        np.cumsum(cs.sizes(), out=offsets[1:])
        return nodes, times, offsets

    def _assert_matches_object_path(self, cs, part, min_size):
        nodes, times, offsets = self._flat(cs)
        ps = split_positions(nodes, offsets, part.membership, min_size=min_size)
        subs = split_cascades(cs, part, min_size=min_size)
        assert np.all(np.diff(ps.group_community) >= 0)
        for cid in range(part.n_communities):
            lo, hi = ps.community_range(cid)
            assert hi - lo == len(subs[cid])
            for gi, c in zip(range(lo, hi), subs[cid]):
                p = ps.positions[ps.sub_offsets[gi] : ps.sub_offsets[gi + 1]]
                assert np.array_equal(nodes[p], c.nodes)
                assert np.array_equal(times[p], c.times)

    def test_matches_object_path(self, corpus_and_partition):
        cs, part = corpus_and_partition
        self._assert_matches_object_path(cs, part, min_size=2)

    def test_min_size_one(self, corpus_and_partition):
        cs, part = corpus_and_partition
        self._assert_matches_object_path(cs, part, min_size=1)

    def test_randomized_with_ties_and_singletons(self):
        rng = np.random.default_rng(3)
        for trial in range(10):
            n = int(rng.integers(4, 25))
            cs = CascadeSet(n)
            for _ in range(int(rng.integers(1, 12))):
                size = int(rng.integers(1, min(n, 8) + 1))
                picks = rng.permutation(n)[:size]
                times = np.sort(np.round(rng.uniform(0, 2, size), 1))
                cs.append(Cascade(picks, times))
            # random partition, may include single-node communities
            part = Partition(rng.integers(0, max(2, n // 3), size=n))
            self._assert_matches_object_path(cs, part, min_size=2)

    def test_empty_corpus(self):
        ps = split_positions(
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(5, dtype=np.int64),
        )
        assert ps.positions.size == 0
        assert ps.sub_offsets.tolist() == [0]
        assert ps.community_range(0) == (0, 0)

    def test_all_groups_filtered(self):
        # every sub-cascade is a singleton -> nothing survives min_size=2
        cs = CascadeSet(4, [Cascade([0, 1], [0.0, 1.0]), Cascade([2, 3], [0.0, 1.0])])
        nodes, _, offsets = self._flat(cs)
        ps = split_positions(nodes, offsets, np.arange(4), min_size=2)
        assert ps.positions.size == 0
        assert ps.group_community.size == 0
