"""Unit tests for Jaccard distances between cascades."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.clustering.jaccard import (
    incidence_matrix,
    jaccard_distance_matrix,
    jaccard_index,
)


class TestJaccardIndex:
    def test_identical_sets(self):
        a = Cascade([0, 1, 2], [0, 1, 2])
        b = Cascade([2, 1, 0], [5, 6, 7])
        assert jaccard_index(a, b) == 1.0

    def test_disjoint(self):
        a = Cascade([0, 1], [0, 1])
        b = Cascade([2, 3], [0, 1])
        assert jaccard_index(a, b) == 0.0

    def test_partial_overlap(self):
        a = Cascade([0, 1, 2], [0, 1, 2])
        b = Cascade([1, 2, 3], [0, 1, 2])
        assert jaccard_index(a, b) == pytest.approx(2 / 4)

    def test_both_empty(self):
        assert jaccard_index(Cascade([], []), Cascade([], [])) == 1.0

    def test_one_empty(self):
        a = Cascade([0], [0.0])
        assert jaccard_index(a, Cascade([], [])) == 0.0


class TestIncidenceMatrix:
    def test_entries(self, small_corpus):
        M = incidence_matrix(small_corpus)
        assert M.shape == (4, 6)
        assert M[0, 0] == 1 and M[0, 3] == 0

    def test_row_sums_are_sizes(self, small_corpus):
        M = incidence_matrix(small_corpus)
        assert np.array_equal(M.sum(axis=1), small_corpus.sizes())


class TestDistanceMatrix:
    def test_matches_pairwise(self, small_corpus):
        D = jaccard_distance_matrix(small_corpus)
        for i, a in enumerate(small_corpus):
            for j, b in enumerate(small_corpus):
                assert D[i, j] == pytest.approx(1 - jaccard_index(a, b), abs=1e-6)

    def test_symmetric_zero_diagonal(self, small_corpus):
        D = jaccard_distance_matrix(small_corpus)
        assert np.allclose(D, D.T)
        assert np.all(np.diag(D) == 0)

    def test_range(self, small_corpus):
        D = jaccard_distance_matrix(small_corpus)
        assert np.all(D >= 0) and np.all(D <= 1)

    def test_empty_corpus(self):
        D = jaccard_distance_matrix(CascadeSet(3))
        assert D.shape == (0, 0)
