"""Unit tests for the SEISMIC-style point-process baseline."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.prediction.pointprocess import SelfExcitingSizePredictor


class TestConstruction:
    def test_defaults_valid(self):
        SelfExcitingSizePredictor()

    def test_validation(self):
        with pytest.raises(ValueError):
            SelfExcitingSizePredictor(omega=0.0)
        with pytest.raises(ValueError):
            SelfExcitingSizePredictor(max_branching=1.0)


class TestBranchingFactor:
    def test_single_event_zero(self):
        p = SelfExcitingSizePredictor()
        assert p.branching_factor(Cascade([0], [0.0]), 1.0) == 0.0

    def test_empty_zero(self):
        p = SelfExcitingSizePredictor()
        assert p.branching_factor(Cascade([], []), 1.0) == 0.0

    def test_more_events_higher_branching(self):
        p = SelfExcitingSizePredictor(omega=5.0)
        slow = Cascade([0, 1], [0.0, 0.1])
        fast = Cascade([0, 1, 2, 3, 4], [0.0, 0.05, 0.1, 0.15, 0.2])
        assert p.branching_factor(fast, 1.0) > p.branching_factor(slow, 1.0)

    def test_clipped_at_max(self):
        p = SelfExcitingSizePredictor(omega=0.01, max_branching=0.9)
        burst = Cascade(list(range(20)), [0.001 * i for i in range(20)])
        assert p.branching_factor(burst, 0.05) == 0.9

    def test_zero_horizon(self):
        p = SelfExcitingSizePredictor()
        c = Cascade([0, 1], [0.0, 0.0])
        assert p.branching_factor(c, 0.0) == 0.0


class TestPrediction:
    def test_empty_prefix(self):
        p = SelfExcitingSizePredictor()
        assert p.predict_final_size(Cascade([], []), 1.0) == 0.0

    def test_prediction_at_least_observed(self):
        p = SelfExcitingSizePredictor()
        c = Cascade([0, 1, 2], [0.0, 0.05, 0.1])
        assert p.predict_final_size(c, 0.2) >= 3.0

    def test_quiet_prefix_predicts_little_growth(self):
        """A cascade whose last event is long past predicts ~no growth."""
        p = SelfExcitingSizePredictor(omega=5.0)
        c = Cascade([0, 1], [0.0, 0.05])
        pred = p.predict_final_size(c, 10.0)
        assert pred == pytest.approx(2.0, abs=0.3)

    def test_hot_prefix_predicts_growth(self):
        p = SelfExcitingSizePredictor(omega=5.0)
        hot = Cascade(list(range(8)), [0.01 * i for i in range(8)])
        pred = p.predict_final_size(hot, 0.08)
        assert pred > 10.0

    def test_predict_sizes_vector(self):
        p = SelfExcitingSizePredictor()
        cs = CascadeSet(5)
        cs.append(Cascade([0, 1], [0.0, 0.1]))
        cs.append(Cascade([2, 3, 4], [0.0, 0.02, 0.04]))
        est = p.predict_sizes(cs, early_fraction=0.3, window=1.0)
        assert est.shape == (2,)
        assert np.all(est >= 0)

    def test_classify_labels(self):
        p = SelfExcitingSizePredictor()
        cs = CascadeSet(5, [Cascade([0, 1], [0.0, 0.1])])
        labels = p.classify(cs, threshold=1, early_fraction=0.3, window=1.0)
        assert labels[0] == 1
        labels = p.classify(cs, threshold=10**6, early_fraction=0.3, window=1.0)
        assert labels[0] == -1

    def test_parameter_validation(self):
        p = SelfExcitingSizePredictor()
        cs = CascadeSet(2, [Cascade([0, 1], [0.0, 0.1])])
        with pytest.raises(ValueError):
            p.predict_sizes(cs, early_fraction=0.0, window=1.0)
        with pytest.raises(ValueError):
            p.predict_sizes(cs, early_fraction=0.5, window=0.0)

    def test_faster_spread_predicts_bigger(self):
        """With identical observed counts, shorter inter-event gaps at the
        observation horizon imply more pending growth."""
        p = SelfExcitingSizePredictor(omega=5.0)
        recent = Cascade([0, 1, 2], [0.0, 0.25, 0.29])
        stale = Cascade([0, 1, 2], [0.0, 0.02, 0.04])
        assert p.predict_final_size(recent, 0.3) > p.predict_final_size(
            stale, 0.3
        )
