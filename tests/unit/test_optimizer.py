"""Unit tests for projected gradient ascent."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.likelihood import corpus_log_likelihood
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import (
    FitResult,
    OptimizerConfig,
    ProjectedGradientAscent,
)


@pytest.fixture
def corpus():
    cs = CascadeSet(4)
    cs.append(Cascade([0, 1, 2], [0.0, 0.3, 0.8]))
    cs.append(Cascade([0, 2], [0.0, 0.4]))
    cs.append(Cascade([1, 3], [0.0, 0.6]))
    cs.append(Cascade([2, 3, 0], [0.0, 0.2, 0.9]))
    return cs


class TestConfig:
    def test_defaults_valid(self):
        OptimizerConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"max_iters": 0},
            {"step_decay": 1.0},
            {"step_decay": 0.0},
            {"patience": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            OptimizerConfig(**kwargs)


class TestFit:
    def test_loglik_increases(self, corpus):
        model = EmbeddingModel.random(4, 2, scale=0.5, seed=0)
        before = corpus_log_likelihood(model, corpus)
        # background_rate=0 makes the optimizer's objective Eq. 8 verbatim,
        # so the reported history matches corpus_log_likelihood exactly.
        opt = ProjectedGradientAscent(
            OptimizerConfig(max_iters=50, background_rate=0.0)
        )
        result = opt.fit(model, corpus)
        after = corpus_log_likelihood(model, corpus)
        assert after > before
        assert result.final_loglik == pytest.approx(after, rel=1e-9)

    def test_background_rate_objective_still_improves_eq8(self, corpus):
        model = EmbeddingModel.random(4, 2, scale=0.5, seed=0)
        before = corpus_log_likelihood(model, corpus)
        ProjectedGradientAscent(
            OptimizerConfig(max_iters=50, background_rate=1e-3)
        ).fit(model, corpus)
        assert corpus_log_likelihood(model, corpus) > before

    def test_background_rate_validation(self):
        with pytest.raises(ValueError):
            OptimizerConfig(background_rate=-1e-3)

    def test_history_monotone(self, corpus):
        model = EmbeddingModel.random(4, 2, scale=0.5, seed=1)
        result = ProjectedGradientAscent(OptimizerConfig(max_iters=60)).fit(
            model, corpus
        )
        h = np.asarray(result.history)
        assert np.all(np.diff(h) >= -1e-9)

    def test_nonnegativity_maintained(self, corpus):
        model = EmbeddingModel.random(4, 2, scale=0.5, seed=2)
        ProjectedGradientAscent(
            OptimizerConfig(max_iters=40, learning_rate=0.2)
        ).fit(model, corpus)
        assert model.A.min() >= 0 and model.B.min() >= 0

    def test_early_stopping_on_plateau(self, corpus):
        model = EmbeddingModel.random(4, 2, scale=0.5, seed=3)
        cfg = OptimizerConfig(max_iters=500, tol=1e-4, patience=2)
        result = ProjectedGradientAscent(cfg).fit(model, corpus)
        assert result.converged
        assert result.n_iters < 500
        assert result.reason in ("log-likelihood plateau", "step size underflow")

    def test_deterministic(self, corpus):
        m1 = EmbeddingModel.random(4, 2, seed=4)
        m2 = EmbeddingModel.random(4, 2, seed=4)
        cfg = OptimizerConfig(max_iters=30)
        ProjectedGradientAscent(cfg).fit(m1, corpus)
        ProjectedGradientAscent(cfg).fit(m2, corpus)
        assert m1 == m2

    def test_callback_invoked(self, corpus):
        model = EmbeddingModel.random(4, 2, seed=5)
        calls = []
        ProjectedGradientAscent(OptimizerConfig(max_iters=10)).fit(
            model, corpus, callback=lambda it, ll: calls.append((it, ll))
        )
        assert len(calls) >= 1

    def test_universe_mismatch(self, corpus):
        model = EmbeddingModel.random(3, 2, seed=0)
        with pytest.raises(ValueError):
            ProjectedGradientAscent().fit(model, corpus)

    def test_empty_corpus_is_noop(self):
        model = EmbeddingModel.random(4, 2, seed=6)
        before = model.copy()
        result = ProjectedGradientAscent(OptimizerConfig(max_iters=5)).fit(
            model, CascadeSet(4)
        )
        assert model == before or model.frobenius_distance(before) == 0.0
        assert result.final_loglik == 0.0


class TestBlockCoordinate:
    def test_update_rows_mask_restricts_changes(self, corpus):
        model = EmbeddingModel.random(4, 2, seed=7)
        frozen = model.copy()
        mask = np.array([True, True, False, False])
        ProjectedGradientAscent(OptimizerConfig(max_iters=20)).fit(
            model, corpus, update_rows=mask
        )
        assert np.array_equal(model.A[2:], frozen.A[2:])
        assert np.array_equal(model.B[2:], frozen.B[2:])
        assert not np.array_equal(model.A[:2], frozen.A[:2])

    def test_update_rows_as_indices(self, corpus):
        model = EmbeddingModel.random(4, 2, seed=8)
        frozen = model.copy()
        ProjectedGradientAscent(OptimizerConfig(max_iters=10)).fit(
            model, corpus, update_rows=np.array([0, 1])
        )
        assert np.array_equal(model.A[2:], frozen.A[2:])

    def test_bad_mask_length(self, corpus):
        model = EmbeddingModel.random(4, 2, seed=9)
        with pytest.raises(ValueError):
            ProjectedGradientAscent().fit(
                model, corpus, update_rows=np.array([True, False])
            )


class TestFitResult:
    def test_final_loglik_empty(self):
        assert FitResult().final_loglik == float("-inf")


class TestWorkspaceThreading:
    """An explicit GradientWorkspace must change nothing but allocations."""

    def _fit(self, corpus, workspace=None, seed=3):
        model = EmbeddingModel.random(4, 2, scale=0.5, seed=seed)
        result = ProjectedGradientAscent(OptimizerConfig(max_iters=25)).fit(
            model, corpus, workspace=workspace
        )
        return model, result

    def test_explicit_workspace_bit_identical(self, corpus):
        from repro.embedding.compiled import GradientWorkspace

        m1, r1 = self._fit(corpus)
        m2, r2 = self._fit(corpus, workspace=GradientWorkspace())
        assert r1.history == r2.history
        assert np.array_equal(m1.A, m2.A)
        assert np.array_equal(m1.B, m2.B)

    def test_model_array_identity_preserved(self, corpus):
        # The parallel engine aliases model.A/model.B into shared memory;
        # fit must keep writing through the SAME arrays even though the
        # accept path swaps candidate buffers internally.
        model = EmbeddingModel.random(4, 2, seed=4)
        origA, origB = model.A, model.B
        ProjectedGradientAscent(OptimizerConfig(max_iters=25)).fit(model, corpus)
        assert model.A is origA
        assert model.B is origB

    def test_workspace_reused_across_fits_of_different_shapes(self, corpus):
        from repro.embedding.compiled import GradientWorkspace

        ws = GradientWorkspace()
        big = CascadeSet(6)
        big.append(Cascade([0, 1, 2, 3, 4, 5], [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]))
        big.append(Cascade([5, 3, 1], [0.0, 0.7, 0.9]))
        model_big = EmbeddingModel.random(6, 3, seed=5)
        ProjectedGradientAscent(OptimizerConfig(max_iters=10)).fit(
            model_big, big, workspace=ws
        )
        m1, r1 = self._fit(corpus, workspace=ws)  # smaller corpus, K=2
        m2, r2 = self._fit(corpus)
        assert r1.history == r2.history
        assert np.array_equal(m1.A, m2.A)
        assert np.array_equal(m1.B, m2.B)

    def test_candidates_released_after_fit(self, corpus):
        from repro.embedding.compiled import GradientWorkspace

        ws = GradientWorkspace()
        model = EmbeddingModel.random(4, 2, seed=6)
        ProjectedGradientAscent(OptimizerConfig(max_iters=5)).fit(
            model, corpus, workspace=ws
        )
        # candidate buffers may alias caller arrays after the final swap —
        # fit must drop them on the way out
        assert "candA" not in ws._mats
        assert "candB" not in ws._mats
