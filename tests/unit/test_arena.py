"""Unit tests for the shared-memory cascade arena and level selections."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.parallel._shm import attach_untracked
from repro.parallel.arena import CorpusArena, LevelSelection


@pytest.fixture
def corpus() -> CascadeSet:
    cs = CascadeSet(8)
    cs.append(Cascade([0, 1, 2], [0.0, 0.3, 0.9]))
    cs.append(Cascade([3, 4], [0.0, 0.7]))
    cs.append(Cascade([5], [0.2]))  # size-1 cascade stored verbatim
    cs.append(Cascade([1, 0, 7], [0.0, 0.2, 1.1]))
    return cs


class TestCorpusArena:
    def test_flat_layout_matches_corpus(self, corpus):
        arena = CorpusArena(corpus)
        try:
            assert arena.meta.n_cascades == len(corpus)
            assert arena.meta.n_infections == corpus.total_infections()
            for i, c in enumerate(corpus):
                lo, hi = arena.offsets[i], arena.offsets[i + 1]
                assert np.array_equal(arena.nodes[lo:hi], c.nodes)
                assert np.array_equal(arena.times[lo:hi], c.times)
        finally:
            arena.close()

    def test_worker_view_roundtrip(self, corpus):
        arena = CorpusArena(corpus)
        try:
            shm = attach_untracked(arena.meta.name)
            try:
                times, nodes, offsets = CorpusArena.view(shm.buf, arena.meta)
                assert np.array_equal(np.asarray(offsets), np.asarray(arena.offsets))
                assert np.array_equal(np.asarray(nodes), np.asarray(arena.nodes))
                assert np.array_equal(np.asarray(times), np.asarray(arena.times))
                del times, nodes, offsets
            finally:
                shm.close()
        finally:
            arena.close()

    def test_empty_corpus(self):
        arena = CorpusArena(CascadeSet(0))
        try:
            assert arena.meta.n_infections == 0
            assert arena.offsets.tolist() == [0]
        finally:
            arena.close()

    def test_close_idempotent(self, corpus):
        arena = CorpusArena(corpus)
        arena.close()
        arena.close()


class TestLevelSelection:
    def _sample(self, seed=0):
        rng = np.random.default_rng(seed)
        positions = rng.permutation(30).astype(np.int64)
        sub_offsets = np.array([0, 10, 22, 30], dtype=np.int64)
        members = np.sort(rng.choice(100, size=12, replace=False)).astype(np.int64)
        return positions, sub_offsets, members

    def test_update_and_view(self):
        sel = LevelSelection()
        try:
            pos, sub, mem = self._sample()
            meta = sel.update(pos, sub, mem)
            shm = attach_untracked(meta.name)
            try:
                pv, sv, mv = LevelSelection.view(shm.buf, meta)
                assert np.array_equal(np.asarray(pv), pos)
                assert np.array_equal(np.asarray(sv), sub)
                assert np.array_equal(np.asarray(mv), mem)
                del pv, sv, mv
            finally:
                shm.close()
        finally:
            sel.close()

    def test_unchanged_content_reuses_meta(self):
        sel = LevelSelection()
        try:
            pos, sub, mem = self._sample()
            meta1 = sel.update(pos, sub, mem)
            meta2 = sel.update(pos.copy(), sub.copy(), mem.copy())
            assert meta1 is meta2  # optimizer-restart fast path: no rewrite
        finally:
            sel.close()

    def test_changed_content_changes_digest(self):
        sel = LevelSelection()
        try:
            pos, sub, mem = self._sample()
            meta1 = sel.update(pos, sub, mem)
            digest1 = meta1.digest
            pos2 = pos.copy()
            pos2[0], pos2[1] = pos2[1], pos2[0]
            meta2 = sel.update(pos2, sub, mem)
            assert meta2.digest != digest1
        finally:
            sel.close()

    def test_grows_segment_when_capacity_exceeded(self):
        sel = LevelSelection()
        try:
            pos, sub, mem = self._sample()
            name1 = sel.update(pos, sub, mem).name
            big = np.arange(100_000, dtype=np.int64)
            meta2 = sel.update(big, np.array([0, big.size]), mem)
            assert meta2.name != name1
            shm = attach_untracked(meta2.name)
            try:
                pv, _, _ = LevelSelection.view(shm.buf, meta2)
                assert np.array_equal(np.asarray(pv), big)
                del pv
            finally:
                shm.close()
        finally:
            sel.close()

    def test_close_idempotent(self):
        sel = LevelSelection()
        sel.update(*self._sample())
        sel.close()
        sel.close()
