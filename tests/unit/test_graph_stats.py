"""Unit tests for graph statistics."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.stats import (
    degree_histogram,
    density,
    mean_degree,
    reciprocity,
    weakly_connected_components,
)


@pytest.fixture
def two_components() -> Graph:
    # component {0,1,2} (path) and {3,4} (mutual pair)
    return Graph(5, [0, 1, 3, 4], [1, 2, 4, 3])


class TestBasicStats:
    def test_mean_degree(self, two_components):
        assert mean_degree(two_components) == pytest.approx(4 / 5)

    def test_mean_degree_empty(self):
        assert mean_degree(Graph.empty(0)) == 0.0

    def test_density(self, two_components):
        assert density(two_components) == pytest.approx(4 / 20)

    def test_density_single_node(self):
        assert density(Graph.empty(1)) == 0.0

    def test_degree_histogram_out(self, two_components):
        values, counts = degree_histogram(two_components, "out")
        assert dict(zip(values.tolist(), counts.tolist())) == {0: 1, 1: 4}

    def test_degree_histogram_total(self, two_components):
        values, counts = degree_histogram(two_components, "total")
        assert counts.sum() == 5

    def test_degree_histogram_bad_kind(self, two_components):
        with pytest.raises(ValueError):
            degree_histogram(two_components, "sideways")


class TestReciprocity:
    def test_mutual_pair(self):
        g = Graph(2, [0, 1], [1, 0])
        assert reciprocity(g) == 1.0

    def test_one_way(self):
        g = Graph(2, [0], [1])
        assert reciprocity(g) == 0.0

    def test_mixed(self, two_components):
        assert reciprocity(two_components) == pytest.approx(0.5)

    def test_empty(self):
        assert reciprocity(Graph.empty(3)) == 0.0


class TestComponents:
    def test_two_components(self, two_components):
        comps = weakly_connected_components(two_components)
        assert len(comps) == 2
        assert np.array_equal(comps[0], [0, 1, 2])  # largest first
        assert np.array_equal(comps[1], [3, 4])

    def test_direction_ignored(self):
        g = Graph(3, [2], [0])  # 2 -> 0 connects them weakly
        comps = weakly_connected_components(g)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 2]

    def test_isolated_nodes(self):
        comps = weakly_connected_components(Graph.empty(3))
        assert len(comps) == 3

    def test_covers_all_nodes(self, two_components):
        comps = weakly_connected_components(two_components)
        allnodes = np.sort(np.concatenate(comps))
        assert np.array_equal(allnodes, np.arange(5))
