"""Unit tests for the lock-free Hogwild solver."""

import numpy as np
import pytest

from repro.cascades.simulate import simulate_corpus
from repro.embedding.likelihood import corpus_log_likelihood
from repro.embedding.model import EmbeddingModel
from repro.graphs.generators import stochastic_block_model
from repro.parallel.hogwild import HogwildConfig, hogwild_fit


@pytest.fixture(scope="module")
def world():
    graph, _ = stochastic_block_model(60, 20, p_in=0.4, p_out=0.01, seed=0)
    cascades = simulate_corpus(graph, 40, window=0.5, seed=1, min_size=2)
    return cascades


class TestConfig:
    def test_defaults_valid(self):
        HogwildConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"n_epochs": 0},
            {"n_workers": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HogwildConfig(**kwargs)


class TestSequentialMode:
    def test_improves_loglik(self, world):
        model = EmbeddingModel.random(60, 3, seed=2)
        before = corpus_log_likelihood(model, world)
        hogwild_fit(
            model, world, HogwildConfig(n_workers=1, n_epochs=8), seed=3
        )
        assert corpus_log_likelihood(model, world) > before

    def test_deterministic_single_worker(self, world):
        cfg = HogwildConfig(n_workers=1, n_epochs=3)
        m1 = EmbeddingModel.random(60, 3, seed=4)
        m2 = EmbeddingModel.random(60, 3, seed=4)
        hogwild_fit(m1, world, cfg, seed=5)
        hogwild_fit(m2, world, cfg, seed=5)
        assert m1 == m2

    def test_nonnegativity(self, world):
        model = EmbeddingModel.random(60, 3, seed=6)
        hogwild_fit(
            model, world, HogwildConfig(n_workers=1, n_epochs=5), seed=7
        )
        assert model.A.min() >= 0 and model.B.min() >= 0

    def test_returns_same_object(self, world):
        model = EmbeddingModel.random(60, 3, seed=8)
        out = hogwild_fit(
            model, world, HogwildConfig(n_workers=1, n_epochs=1), seed=9
        )
        assert out is model

    def test_universe_mismatch(self, world):
        model = EmbeddingModel.random(10, 3, seed=0)
        with pytest.raises(ValueError):
            hogwild_fit(model, world, HogwildConfig(n_workers=1))


class TestLockFreeMode:
    def test_parallel_improves_loglik(self, world):
        model = EmbeddingModel.random(60, 3, seed=10)
        before = corpus_log_likelihood(model, world)
        hogwild_fit(
            model, world, HogwildConfig(n_workers=2, n_epochs=4), seed=11
        )
        after = corpus_log_likelihood(model, world)
        assert after > before
        assert model.A.min() >= 0 and model.B.min() >= 0

    def test_parallel_close_to_sequential_quality(self, world):
        """Racy updates must not wreck the objective: the lock-free result
        lands in the same likelihood ballpark as sequential SGD."""
        cfg_seq = HogwildConfig(n_workers=1, n_epochs=8)
        cfg_par = HogwildConfig(n_workers=2, n_epochs=4)
        m_seq = EmbeddingModel.random(60, 3, seed=12)
        m_par = EmbeddingModel.random(60, 3, seed=12)
        hogwild_fit(m_seq, world, cfg_seq, seed=13)
        hogwild_fit(m_par, world, cfg_par, seed=13)
        ll_seq = corpus_log_likelihood(m_seq, world)
        ll_par = corpus_log_likelihood(m_par, world)
        assert ll_par > ll_seq - 0.25 * abs(ll_seq)
