"""Unit tests for the Louvain community detector."""

import numpy as np
import pytest

from repro.community.louvain import louvain
from repro.community.modularity import modularity
from repro.community.partition import Partition
from repro.graphs.generators import stochastic_block_model
from repro.graphs.graph import Graph


class TestLouvainBasics:
    def test_empty_graph(self):
        p = louvain(Graph.empty(0), seed=0)
        assert p.n_nodes == 0

    def test_isolated_nodes_singletons(self):
        p = louvain(Graph.empty(4), seed=0)
        assert p.n_communities == 4

    def test_two_cliques(self):
        edges = []
        for clique in ([0, 1, 2], [3, 4, 5]):
            for a in clique:
                for b in clique:
                    if a != b:
                        edges.append((a, b))
        g = Graph.from_edges(edges, n_nodes=6)
        p = louvain(g, seed=1)
        m = p.membership
        assert m[0] == m[1] == m[2]
        assert m[3] == m[4] == m[5]
        assert m[0] != m[3]

    def test_deterministic_given_seed(self):
        g, _ = stochastic_block_model(80, 20, p_in=0.4, p_out=0.02, seed=3)
        assert louvain(g, seed=5) == louvain(g, seed=5)

    def test_recovers_planted_blocks(self):
        g, membership = stochastic_block_model(
            120, 30, p_in=0.4, p_out=0.005, seed=7
        )
        p = louvain(g, seed=9)
        assert p.agreement(Partition(membership)) > 0.95

    def test_positive_modularity_on_modular_graph(self):
        g, _ = stochastic_block_model(100, 25, p_in=0.4, p_out=0.01, seed=11)
        p = louvain(g, seed=13)
        assert modularity(g, p) > 0.4

    def test_weighted_edges_respected(self):
        # nodes 0-1 strongly tied, 1-2 weakly: 2 should separate
        g = Graph.from_edges(
            [(0, 1, 10.0), (1, 0, 10.0), (1, 2, 0.01), (2, 1, 0.01),
             (2, 3, 10.0), (3, 2, 10.0)],
            n_nodes=4,
        )
        p = louvain(g, seed=15)
        assert p.membership[0] == p.membership[1]
        assert p.membership[2] == p.membership[3]
        assert p.membership[0] != p.membership[2]


class TestLouvainVsSLPA:
    def test_comparable_quality_on_sbm(self):
        from repro.community.slpa import slpa

        g, membership = stochastic_block_model(
            150, 30, p_in=0.35, p_out=0.01, seed=17
        )
        planted = Partition(membership)
        p_louvain = louvain(g, seed=19)
        p_slpa = slpa(g, seed=19)
        assert p_louvain.agreement(planted) > 0.9
        assert p_slpa.agreement(planted) > 0.9
