"""Unit tests for cross-validation."""

import numpy as np
import pytest

from repro.prediction.crossval import cross_val_f1, kfold_indices
from repro.prediction.svm import LinearSVM


class TestKFold:
    def test_folds_partition_everything(self):
        splits = kfold_indices(23, k=5, seed=0)
        all_test = np.sort(np.concatenate([t for _, t in splits]))
        assert np.array_equal(all_test, np.arange(23))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(20, k=4, seed=1):
            assert np.intersect1d(train, test).size == 0
            assert train.size + test.size == 20

    def test_stratification_balances_classes(self):
        y = np.concatenate([np.ones(10), -np.ones(40)])
        for _, test in kfold_indices(50, k=5, stratify=y, seed=2):
            n_pos = np.sum(y[test] == 1)
            assert n_pos == 2  # 10 positives over 5 folds

    def test_deterministic(self):
        a = kfold_indices(15, k=3, seed=5)
        b = kfold_indices(15, k=3, seed=5)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(10, k=1)

    def test_stratify_length_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(10, k=2, stratify=np.ones(5))


class TestCrossValF1:
    def test_separable_scores_high(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        y = np.where(X[:, 0] > 0, 1, -1)
        X[y == 1, 0] += 2.0
        score = cross_val_f1(
            lambda: LinearSVM(seed=0), X, y, k=5, seed=1
        )
        assert score > 0.9

    def test_random_labels_score_middling(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        y = rng.choice([-1, 1], size=100)
        score = cross_val_f1(lambda: LinearSVM(seed=0), X, y, k=5, seed=2)
        assert score < 0.75

    def test_score_in_unit_interval(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(40, 2))
        y = rng.choice([-1, 1], size=40)
        s = cross_val_f1(lambda: LinearSVM(seed=0), X, y, k=4, seed=3)
        assert 0.0 <= s <= 1.0

    def test_standardization_helps_scaled_features(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(120, 2))
        y = np.where(X[:, 1] > 0, 1, -1)
        X[y == 1, 1] += 1.5
        X[:, 1] *= 1e-4  # informative feature has tiny scale
        X[:, 0] *= 1e4  # noise feature has huge scale
        with_std = cross_val_f1(
            lambda: LinearSVM(seed=0), X, y, k=4, seed=4, standardize=True
        )
        without = cross_val_f1(
            lambda: LinearSVM(seed=0), X, y, k=4, seed=4, standardize=False
        )
        assert with_std > without
