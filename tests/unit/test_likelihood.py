"""Unit tests for the cascade log-likelihood (Eq. 8)."""

import numpy as np
import pytest

from repro.cascades.types import Cascade
from repro.embedding.likelihood import (
    corpus_log_likelihood,
    log_likelihood,
    log_likelihood_naive,
    tie_groups,
)
from repro.embedding.model import EmbeddingModel


class TestTieGroups:
    def test_no_ties(self):
        starts, ends = tie_groups(np.array([0.0, 1.0, 2.0]))
        assert starts.tolist() == [0, 1, 2]
        assert ends.tolist() == [1, 2, 3]

    def test_with_ties(self):
        starts, ends = tie_groups(np.array([0.0, 1.0, 1.0, 2.0]))
        assert starts.tolist() == [0, 1, 1, 3]
        assert ends.tolist() == [1, 3, 3, 4]

    def test_all_tied(self):
        starts, ends = tie_groups(np.array([5.0, 5.0, 5.0]))
        assert starts.tolist() == [0, 0, 0]
        assert ends.tolist() == [3, 3, 3]


class TestLogLikelihood:
    def test_matches_naive(self, small_model, small_corpus):
        for c in small_corpus:
            assert log_likelihood(small_model, c) == pytest.approx(
                log_likelihood_naive(small_model, c), abs=1e-10
            )

    def test_matches_naive_with_ties(self, small_model, tied_cascade):
        assert log_likelihood(small_model, tied_cascade) == pytest.approx(
            log_likelihood_naive(small_model, tied_cascade), abs=1e-10
        )

    def test_hand_computed_two_nodes(self):
        # Single link u=0 -> v=1, rate r = A0·B1, delay dt.
        A = np.array([[2.0], [0.1]])
        B = np.array([[0.3], [1.5]])
        m = EmbeddingModel(A, B)
        dt = 0.8
        c = Cascade([0, 1], [0.0, dt])
        r = 2.0 * 1.5
        expected = -r * dt + np.log(r)
        assert log_likelihood(m, c) == pytest.approx(expected)

    def test_small_cascades_contribute_zero(self, small_model):
        assert log_likelihood(small_model, Cascade([0], [0.0])) == 0.0
        assert log_likelihood(small_model, Cascade([], [])) == 0.0

    def test_time_shift_invariance(self, small_model, tiny_cascade):
        # needs a model with >= 5 nodes
        m = EmbeddingModel.random(5, 3, seed=0)
        a = log_likelihood(m, tiny_cascade)
        b = log_likelihood(m, tiny_cascade.shifted(100.0))
        assert a == pytest.approx(b, rel=1e-9)

    def test_zero_rates_guarded(self):
        m = EmbeddingModel.zeros(2, 2)
        c = Cascade([0, 1], [0.0, 1.0])
        ll = log_likelihood(m, c)
        assert np.isfinite(ll)  # eps guard keeps log finite

    def test_higher_rate_better_fit_for_short_delay(self):
        # For dt < 1/r, increasing the rate increases the likelihood.
        c = Cascade([0, 1], [0.0, 0.1])
        low = EmbeddingModel(np.array([[1.0], [0.0]]), np.array([[0.0], [1.0]]))
        high = EmbeddingModel(np.array([[5.0], [0.0]]), np.array([[0.0], [1.0]]))
        assert log_likelihood(high, c) > log_likelihood(low, c)

    def test_simultaneous_with_source_skipped(self, small_model):
        # Both tied at t=0: no strict predecessors anywhere -> LL 0.
        c = Cascade([0, 1], [0.0, 0.0])
        assert log_likelihood(small_model, c) == 0.0


class TestCorpusLogLikelihood:
    def test_sum_of_cascades(self, small_model, small_corpus):
        total = corpus_log_likelihood(small_model, small_corpus)
        parts = sum(log_likelihood(small_model, c) for c in small_corpus)
        assert total == pytest.approx(parts)

    def test_empty_corpus(self, small_model):
        from repro.cascades.types import CascadeSet

        assert corpus_log_likelihood(small_model, CascadeSet(6)) == 0.0
