"""Unit tests for the command-line interface (driven in-process)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.embedding.model import EmbeddingModel


@pytest.fixture
def small_corpus_file(tmp_path):
    path = tmp_path / "corpus.jsonl"
    rc = main(
        [
            "simulate-sbm",
            "--nodes", "120",
            "--community-size", "30",
            "--cascades", "60",
            "--seed", "1",
            "--out", str(path),
        ]
    )
    assert rc == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_int_list_parsing(self):
        args = build_parser().parse_args(
            ["speedup", "--corpus", "x", "--cores", "1,2,4"]
        )
        assert args.cores == [1, 2, 4]

    def test_bad_int_list(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["speedup", "--corpus", "x", "--cores", "1,two"]
            )


class TestSimulate:
    def test_writes_corpus(self, small_corpus_file, capsys):
        from repro.cascades.io import load_cascades_jsonl

        corpus = load_cascades_jsonl(small_corpus_file)
        assert corpus.n_nodes == 120
        assert len(corpus) == 60

    def test_gdelt_command(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        rc = main(
            ["gdelt", "--sites", "200", "--events", "30", "--out", str(path)]
        )
        assert rc == 0
        from repro.cascades.io import load_cascades_jsonl

        events = load_cascades_jsonl(path)
        assert events.n_nodes == 200
        assert len(events) == 30


class TestInferPredict:
    def test_full_pipeline(self, small_corpus_file, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        rc = main(
            [
                "infer",
                "--corpus", str(small_corpus_file),
                "--train", "40",
                "--topics", "4",
                "--max-iters", "20",
                "--out", str(model_path),
            ]
        )
        assert rc == 0
        model = EmbeddingModel.load(model_path)
        assert model.n_nodes == 120 and model.n_topics == 4

        rc = main(
            [
                "predict",
                "--corpus", str(small_corpus_file),
                "--skip", "40",
                "--model", str(model_path),
                "--window", "1.0",
                "--quantiles", "0.5,0.8",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "F1" in out

    def test_influencers_command(self, small_corpus_file, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        EmbeddingModel.random(120, 3, seed=0).save(model_path)
        rc = main(
            [
                "influencers",
                "--model", str(model_path),
                "--corpus", str(small_corpus_file),
                "--top", "5",
                "--min-participation", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "influence" in out

    def test_speedup_command(self, small_corpus_file, capsys):
        rc = main(
            [
                "speedup",
                "--corpus", str(small_corpus_file),
                "--topics", "3",
                "--cores", "1,4,16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "merge tree" in out


class TestServeParser:
    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--model", "m.npz"])
        assert args.command == "serve"
        assert args.max_batch == 64
        assert args.max_delay == pytest.approx(0.005)
        assert args.overflow == "reject"
        assert args.ttl is None
        assert not args.stdio

    def test_serve_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "--model", "m.npz", "--predictor", "p.npz",
                "--features", "extended", "--stdio", "--max-batch", "16",
                "--max-delay", "0.02", "--max-pending", "256",
                "--overflow", "shed_oldest", "--capacity", "500", "--ttl", "30",
            ]
        )
        assert args.features == "extended"
        assert args.stdio and args.max_batch == 16
        assert args.overflow == "shed_oldest"
        assert args.ttl == pytest.approx(30.0)

    def test_serve_stdio_end_to_end(self, tmp_path, capsys, monkeypatch):
        import io
        import json

        from repro.cli import main

        m = EmbeddingModel.random(10, 2, seed=1)
        mp = tmp_path / "m.npz"
        m.save(mp)
        lines = [
            {"op": "event", "cascade": "c", "node": 1, "t": 0.0},
            {"op": "score", "cascade": "c", "id": 1},
        ]
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(json.dumps(o) + "\n" for o in lines))
        )
        rc = main(["serve", "--model", str(mp), "--stdio", "--max-delay", "0.001"])
        assert rc == 0
        out = capsys.readouterr().out
        responses = [json.loads(x) for x in out.splitlines()]
        assert any(r.get("id") == 1 and r["status"] == "ok" for r in responses)


class TestModelPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        m = EmbeddingModel.random(7, 3, seed=5)
        p = tmp_path / "m.npz"
        m.save(p)
        loaded = EmbeddingModel.load(p)
        assert loaded == m

    def test_load_rejects_wrong_archive(self, tmp_path):
        p = tmp_path / "bad.npz"
        np.savez(p, X=np.zeros(3))
        with pytest.raises(ValueError, match="embedding archive"):
            EmbeddingModel.load(p)
