"""Unit tests for the streaming embedding estimator."""

import numpy as np
import pytest

from repro.cascades.simulate import simulate_corpus
from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.online import OnlineConfig, OnlineEmbeddingInference
from repro.graphs.generators import stochastic_block_model


@pytest.fixture(scope="module")
def stream():
    graph, _ = stochastic_block_model(60, 20, p_in=0.4, p_out=0.01, seed=0)
    return simulate_corpus(graph, 60, window=0.5, seed=1, min_size=2)


class TestConfig:
    def test_defaults_valid(self):
        OnlineConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"decay": -0.1},
            {"sweeps_per_batch": 0},
            {"max_step": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OnlineConfig(**kwargs)


class TestPartialFit:
    def test_improves_loglik_over_batches(self, stream):
        online = OnlineEmbeddingInference(60, 3, seed=2)
        before = online.loglik(stream)
        for start in range(0, 60, 15):
            online.partial_fit(list(stream)[start : start + 15])
        assert online.loglik(stream) > before

    def test_step_counter_advances(self, stream):
        online = OnlineEmbeddingInference(60, 3, seed=3)
        online.partial_fit(list(stream)[:10])
        # 10 cascades x sweeps_per_batch(2) learnable updates
        assert online.t == 20

    def test_nonnegative_embeddings(self, stream):
        online = OnlineEmbeddingInference(60, 3, seed=4)
        online.partial_fit(stream)
        assert online.model.A.min() >= 0
        assert online.model.B.min() >= 0

    def test_step_size_decays(self):
        cfg = OnlineConfig(learning_rate=0.1, decay=0.01)
        online = OnlineEmbeddingInference(5, 2, config=cfg, seed=5)
        s0 = online._step()
        online.t = 1000
        assert online._step() < s0

    def test_empty_batch_noop(self, stream):
        online = OnlineEmbeddingInference(60, 3, seed=6)
        before = online.model.copy()
        online.partial_fit([])
        assert online.model == before

    def test_empty_batch_is_transparent(self, stream):
        """partial_fit([]) leaves the estimator bit-identical to not
        having called it: no counter advance, no RNG draws — the next
        real batch produces exactly the same model either way."""
        batch = list(stream)[:10]
        plain = OnlineEmbeddingInference(60, 3, seed=11)
        ticked = OnlineEmbeddingInference(60, 3, seed=11)
        for _ in range(5):
            ticked.partial_fit([])  # idle stream ticks
        assert ticked.t == 0
        assert (
            ticked._rng.bit_generator.state == plain._rng.bit_generator.state
        )
        plain.partial_fit(batch)
        ticked.partial_fit(batch)
        assert ticked.t == plain.t
        assert np.array_equal(ticked.model.A, plain.model.A)
        assert np.array_equal(ticked.model.B, plain.model.B)

    def test_singleton_cascades_skipped(self):
        online = OnlineEmbeddingInference(4, 2, seed=7)
        before = online.model.copy()
        online.partial_fit([Cascade([0], [0.0])])
        assert online.model == before
        assert online.t == 0

    def test_universe_validated(self):
        online = OnlineEmbeddingInference(3, 2, seed=8)
        with pytest.raises(ValueError, match="outside"):
            online.partial_fit([Cascade([0, 5], [0.0, 1.0])])

    def test_deterministic_given_seed(self, stream):
        a = OnlineEmbeddingInference(60, 3, seed=9)
        b = OnlineEmbeddingInference(60, 3, seed=9)
        batch = list(stream)[:20]
        a.partial_fit(batch)
        b.partial_fit(batch)
        assert a.model == b.model

    def test_online_approaches_batch_quality(self, stream):
        """Streaming over the whole corpus should land within a modest
        factor of the batch optimizer's likelihood."""
        from repro.embedding.model import EmbeddingModel
        from repro.embedding.optimizer import (
            OptimizerConfig,
            ProjectedGradientAscent,
        )

        online = OnlineEmbeddingInference(60, 3, seed=10)
        for _ in range(4):  # four epochs of streaming
            online.partial_fit(stream)
        batch_model = EmbeddingModel.random(60, 3, seed=10)
        ProjectedGradientAscent(OptimizerConfig(max_iters=80)).fit(
            batch_model, stream
        )
        ll_online = online.loglik(stream)
        from repro.embedding.likelihood import corpus_log_likelihood

        ll_batch = corpus_log_likelihood(batch_model, stream)
        assert ll_online > ll_batch - 0.3 * abs(ll_batch)
