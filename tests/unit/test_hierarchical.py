"""Unit tests for the hierarchical inference driver (Algorithm 2)."""

import numpy as np
import pytest

from repro.cascades.simulate import simulate_corpus
from repro.community.mergetree import MergeTree
from repro.community.partition import Partition
from repro.embedding.likelihood import corpus_log_likelihood
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig
from repro.graphs.generators import stochastic_block_model
from repro.parallel.hierarchical import HierarchicalInference, infer_embeddings


@pytest.fixture(scope="module")
def small_world():
    graph, membership = stochastic_block_model(
        60, 20, p_in=0.4, p_out=0.01, seed=0
    )
    cascades = simulate_corpus(
        graph, 40, window=0.5, seed=1, min_size=2
    )
    return cascades, Partition(membership)


class TestHierarchicalFit:
    def test_improves_loglik(self, small_world):
        cascades, part = small_world
        model = EmbeddingModel.random(60, 3, seed=2)
        before = corpus_log_likelihood(model, cascades)
        tree = MergeTree(part, stop_at=1)
        engine = HierarchicalInference(tree, OptimizerConfig(max_iters=25))
        engine.fit(model, cascades)
        assert corpus_log_likelihood(model, cascades) > before

    def test_level_stats_recorded(self, small_world):
        cascades, part = small_world
        model = EmbeddingModel.random(60, 3, seed=3)
        tree = MergeTree(part, stop_at=1)
        engine = HierarchicalInference(tree, OptimizerConfig(max_iters=10))
        result = engine.fit(model, cascades)
        assert len(result.levels) == tree.n_levels
        level0 = result.levels[0]
        assert len(level0.work_units) >= 1
        assert all(w > 0 for w in level0.work_units)
        assert result.total_work_units > 0
        assert result.serial_seconds > 0

    def test_barrier_vs_total_seconds(self, small_world):
        cascades, part = small_world
        model = EmbeddingModel.random(60, 3, seed=4)
        tree = MergeTree(part, stop_at=1)
        result = HierarchicalInference(tree, OptimizerConfig(max_iters=5)).fit(
            model, cascades
        )
        for level in result.levels:
            assert level.barrier_seconds <= level.total_seconds + 1e-12

    def test_universe_mismatch(self, small_world):
        cascades, part = small_world
        model = EmbeddingModel.random(10, 3, seed=0)
        tree = MergeTree(part, stop_at=1)
        with pytest.raises(ValueError):
            HierarchicalInference(tree).fit(model, cascades)

    def test_deterministic(self, small_world):
        cascades, part = small_world
        tree = MergeTree(part, stop_at=1)
        cfg = OptimizerConfig(max_iters=8)
        m1 = EmbeddingModel.random(60, 3, seed=5)
        m2 = EmbeddingModel.random(60, 3, seed=5)
        HierarchicalInference(tree, cfg).fit(m1, cascades)
        HierarchicalInference(tree, cfg).fit(m2, cascades)
        assert m1 == m2

    def test_hierarchy_at_least_matches_root_only(self, small_world):
        """Once both runs converge, warm-starting the root from
        community-local fits should not end below a cold root-only fit."""
        cascades, part = small_world
        cfg = OptimizerConfig(max_iters=300)
        m_hier = EmbeddingModel.random(60, 3, seed=6)
        HierarchicalInference(MergeTree(part, stop_at=1), cfg).fit(
            m_hier, cascades
        )
        m_flat = EmbeddingModel.random(60, 3, seed=6)
        HierarchicalInference(
            MergeTree(Partition.trivial(60), stop_at=1), cfg
        ).fit(m_flat, cascades)
        ll_hier = corpus_log_likelihood(m_hier, cascades)
        ll_flat = corpus_log_likelihood(m_flat, cascades)
        assert ll_hier > ll_flat - 0.1 * abs(ll_flat)


class TestInferEmbeddings:
    def test_end_to_end(self, small_world):
        cascades, _ = small_world
        model, result, tree = infer_embeddings(
            cascades, n_topics=3, seed=0,
            config=OptimizerConfig(max_iters=10),
        )
        assert model.n_nodes == 60 and model.n_topics == 3
        assert tree.widths()[-1] == 1
        assert len(result.levels) == tree.n_levels

    def test_explicit_partition_skips_slpa(self, small_world):
        cascades, part = small_world
        model, result, tree = infer_embeddings(
            cascades, n_topics=3, partition=part, seed=0,
            config=OptimizerConfig(max_iters=5),
        )
        assert tree.levels[0].n_communities == part.n_communities

    def test_stop_at_respected(self, small_world):
        cascades, part = small_world
        _, _, tree = infer_embeddings(
            cascades, n_topics=2, partition=part, stop_at=2, seed=0,
            config=OptimizerConfig(max_iters=3),
        )
        assert tree.widths()[-1] <= 2
