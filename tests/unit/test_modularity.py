"""Unit tests for modularity, with networkx as oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.community.modularity import modularity
from repro.community.partition import Partition
from repro.graphs.generators import stochastic_block_model
from repro.graphs.graph import Graph


class TestModularityBasics:
    def test_single_community_is_zero(self):
        g = Graph(3, [0, 1, 2], [1, 2, 0])
        assert modularity(g, Partition.trivial(3)) == pytest.approx(0.0)

    def test_empty_graph(self):
        assert modularity(Graph.empty(3), Partition.trivial(3)) == 0.0

    def test_partition_mismatch(self):
        g = Graph.empty(3)
        with pytest.raises(ValueError):
            modularity(g, Partition.trivial(4))

    def test_good_partition_beats_random(self):
        g, membership = stochastic_block_model(80, 20, p_in=0.5, p_out=0.01, seed=0)
        good = modularity(g, Partition(membership))
        rng = np.random.default_rng(0)
        bad = modularity(g, Partition(rng.integers(0, 4, size=80)))
        assert good > 0.5
        assert good > bad + 0.3

    def test_two_disconnected_cliques(self):
        edges = []
        for base in (0, 3):
            for a in range(3):
                for b in range(3):
                    if a != b:
                        edges.append((base + a, base + b))
        g = Graph.from_edges(edges, n_nodes=6)
        p = Partition([0, 0, 0, 1, 1, 1])
        # Perfect split of two equal cliques: Q = 1/2
        assert modularity(g, p) == pytest.approx(0.5)


class TestAgainstNetworkx:
    def test_matches_networkx_directed(self):
        g, membership = stochastic_block_model(60, 15, p_in=0.4, p_out=0.03, seed=3)
        p = Partition(membership)
        ours = modularity(g, p)
        G = nx.DiGraph()
        G.add_nodes_from(range(60))
        for u, v, w in g.edges():
            G.add_edge(u, v, weight=w)
        comms = [set(np.flatnonzero(membership == c)) for c in np.unique(membership)]
        theirs = nx.algorithms.community.modularity(G, comms, weight="weight")
        assert ours == pytest.approx(theirs, abs=1e-10)

    def test_matches_networkx_weighted(self):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 20, size=100)
        dst = rng.integers(0, 20, size=100)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        w = rng.uniform(0.1, 5.0, size=src.size)
        g = Graph(20, src, dst, w)
        labels = rng.integers(0, 3, size=20)
        p = Partition(labels)
        G = nx.DiGraph()
        G.add_nodes_from(range(20))
        for u, v, wt in g.edges():
            G.add_edge(u, v, weight=wt)
        comms = [set(np.flatnonzero(p.membership == c)) for c in range(p.n_communities)]
        theirs = nx.algorithms.community.modularity(G, comms, weight="weight")
        assert modularity(g, p) == pytest.approx(theirs, abs=1e-10)
