"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, derive_seed, spawn_generators


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 2**60)
        b = as_generator(2).integers(0, 2**60)
        assert a != b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seedsequence_accepted(self):
        seq = np.random.SeedSequence(5)
        g = as_generator(seq)
        assert isinstance(g, np.random.Generator)

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")

    def test_numpy_integer_accepted(self):
        g = as_generator(np.int64(7))
        assert isinstance(g, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_independence_of_streams(self):
        gens = spawn_generators(0, 3)
        draws = [g.integers(0, 2**60) for g in gens]
        assert len(set(draws)) == 3

    def test_deterministic_from_int_seed(self):
        a = [g.integers(0, 2**60) for g in spawn_generators(11, 4)]
        b = [g.integers(0, 2**60) for g in spawn_generators(11, 4)]
        assert a == b

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_from_generator(self):
        g = np.random.default_rng(3)
        gens = spawn_generators(g, 2)
        assert len(gens) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(10, 3) == derive_seed(10, 3)

    def test_salt_changes_seed(self):
        assert derive_seed(10, 3) != derive_seed(10, 4)

    def test_seed_changes_seed(self):
        assert derive_seed(10, 3) != derive_seed(11, 3)

    def test_in_int31_range(self):
        for salt in range(20):
            s = derive_seed(123, salt)
            assert 0 <= s < 2**31 - 1
