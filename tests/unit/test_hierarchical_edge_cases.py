"""Edge-case tests for the hierarchical engine and splitting machinery."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.community.mergetree import MergeTree
from repro.community.partition import Partition
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig
from repro.parallel.hierarchical import HierarchicalInference


class TestDegenerateCorpora:
    def test_empty_corpus(self):
        """No cascades: the engine completes and changes nothing."""
        part = Partition([0, 0, 1, 1])
        tree = MergeTree(part, stop_at=1)
        model = EmbeddingModel.random(4, 2, seed=0)
        before = model.copy()
        result = HierarchicalInference(tree, OptimizerConfig(max_iters=5)).fit(
            model, CascadeSet(4)
        )
        assert model == before
        assert all(len(l.work_units) == 0 for l in result.levels)

    def test_community_with_no_cascades(self):
        """A community whose nodes never appear gets no task and keeps its
        initial embeddings."""
        part = Partition([0, 0, 1, 1])
        tree = MergeTree(part, stop_at=part.n_communities)  # leaf level only
        cs = CascadeSet(4, [Cascade([0, 1], [0.0, 0.5])])  # only community 0
        model = EmbeddingModel.random(4, 2, seed=1)
        before = model.copy()
        HierarchicalInference(tree, OptimizerConfig(max_iters=10)).fit(
            model, cs
        )
        assert np.array_equal(model.A[2:], before.A[2:])
        assert np.array_equal(model.B[2:], before.B[2:])
        assert not np.array_equal(model.A[:2], before.A[:2])

    def test_all_singleton_subcascades_dropped(self):
        """Cascades that split into only singletons yield no learnable
        sub-cascades at the leaf level (but do at the merged root)."""
        part = Partition([0, 1])
        cs = CascadeSet(2, [Cascade([0, 1], [0.0, 0.5])])
        tree = MergeTree(part, stop_at=2)  # leaves only: both singletons
        model = EmbeddingModel.random(2, 2, seed=2)
        before = model.copy()
        result = HierarchicalInference(
            tree, OptimizerConfig(max_iters=10)
        ).fit(model, cs)
        assert model == before  # nothing learnable at this level
        # merging to the root reunites the pair
        tree2 = MergeTree(part, stop_at=1)
        result2 = HierarchicalInference(
            tree2, OptimizerConfig(max_iters=10)
        ).fit(model, cs)
        assert model != before

    def test_simultaneous_only_corpus(self):
        """All infections tied: zero gradient everywhere, engine is a
        no-op rather than an error."""
        part = Partition([0, 0, 0])
        cs = CascadeSet(3, [Cascade([0, 1, 2], [1.0, 1.0, 1.0])])
        tree = MergeTree(part, stop_at=1)
        model = EmbeddingModel.random(3, 2, seed=3)
        result = HierarchicalInference(
            tree, OptimizerConfig(max_iters=5)
        ).fit(model, cs)
        assert np.isfinite(result.final_loglik)

    def test_single_node_universe(self):
        part = Partition([0])
        cs = CascadeSet(1, [Cascade([0], [0.0])])
        tree = MergeTree(part, stop_at=1)
        model = EmbeddingModel.random(1, 2, seed=4)
        HierarchicalInference(tree, OptimizerConfig(max_iters=3)).fit(model, cs)


class TestResultAccounting:
    def test_empty_result_properties(self):
        from repro.parallel.hierarchical import HierarchicalResult

        r = HierarchicalResult()
        assert r.total_work_units == 0
        assert r.serial_seconds == 0.0
        assert r.final_loglik == float("-inf")

    def test_level_stats_empty(self):
        from repro.parallel.hierarchical import LevelStats

        ls = LevelStats(level=0, n_communities=3)
        assert ls.barrier_seconds == 0.0
        assert ls.total_seconds == 0.0


class TestMinSubcascadeSizeGuard:
    def test_size_below_two_rejected(self):
        # Workers compile arena sub-corpora with assume_compact=True,
        # which is only sound when the splitter never emits size-<2
        # groups — the constructor enforces the precondition.
        part = Partition([0, 0, 1, 1])
        tree = MergeTree(part, stop_at=1)
        for bad in (0, 1, -3):
            with pytest.raises(ValueError):
                HierarchicalInference(
                    tree, OptimizerConfig(max_iters=5),
                    min_subcascade_size=bad,
                )

    def test_size_two_accepted(self):
        part = Partition([0, 0, 1, 1])
        tree = MergeTree(part, stop_at=1)
        HierarchicalInference(
            tree, OptimizerConfig(max_iters=5), min_subcascade_size=2
        )
