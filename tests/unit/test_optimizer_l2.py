"""Unit tests for the ridge-regularized optimizer option."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig, ProjectedGradientAscent


@pytest.fixture
def corpus():
    cs = CascadeSet(5)
    cs.append(Cascade([0, 1, 2], [0.0, 0.3, 0.8]))
    cs.append(Cascade([1, 2], [0.0, 0.4]))
    cs.append(Cascade([0, 2, 3], [0.0, 0.2, 0.9]))
    return cs


class TestL2Config:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(l2=-0.1)

    def test_zero_matches_unregularized(self, corpus):
        m1 = EmbeddingModel.random(5, 2, seed=0)
        m2 = EmbeddingModel.random(5, 2, seed=0)
        ProjectedGradientAscent(OptimizerConfig(max_iters=20)).fit(m1, corpus)
        ProjectedGradientAscent(OptimizerConfig(max_iters=20, l2=0.0)).fit(
            m2, corpus
        )
        assert m1 == m2


class TestL2Effect:
    def test_shrinks_unobserved_rows(self, corpus):
        """Node 4 appears in no cascade: without ridge its random init
        persists; with ridge it decays toward zero."""
        cfg_plain = OptimizerConfig(max_iters=60)
        cfg_ridge = OptimizerConfig(max_iters=60, l2=0.5)
        m_plain = EmbeddingModel.random(5, 2, seed=1)
        m_ridge = EmbeddingModel.random(5, 2, seed=1)
        init_row = m_plain.A[4].copy()
        ProjectedGradientAscent(cfg_plain).fit(m_plain, corpus)
        ProjectedGradientAscent(cfg_ridge).fit(m_ridge, corpus)
        assert np.allclose(m_plain.A[4], init_row)  # untouched without l2
        assert np.linalg.norm(m_ridge.A[4]) < 0.5 * np.linalg.norm(init_row)

    def test_reduces_total_norm(self, corpus):
        m_plain = EmbeddingModel.random(5, 2, seed=2)
        m_ridge = EmbeddingModel.random(5, 2, seed=2)
        ProjectedGradientAscent(OptimizerConfig(max_iters=60)).fit(
            m_plain, corpus
        )
        ProjectedGradientAscent(OptimizerConfig(max_iters=60, l2=0.3)).fit(
            m_ridge, corpus
        )
        norm = lambda m: np.linalg.norm(m.A) + np.linalg.norm(m.B)  # noqa: E731
        assert norm(m_ridge) < norm(m_plain)

    def test_objective_still_ascends(self, corpus):
        m = EmbeddingModel.random(5, 2, seed=3)
        result = ProjectedGradientAscent(
            OptimizerConfig(max_iters=40, l2=0.1)
        ).fit(m, corpus)
        h = np.asarray(result.history)
        assert np.all(np.diff(h) >= -1e-9)
