"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_shape,
    check_fraction,
    check_nonnegative,
    check_positive,
    check_probability,
    check_sorted_times,
)


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative(-0.001, "x")

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_probability_accepts(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan")])
    def test_probability_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")

    def test_fraction_rejects_bounds(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f")
        with pytest.raises(ValueError):
            check_fraction(1.0, "f")
        assert check_fraction(0.3, "f") == 0.3


class TestArrayChecks:
    def test_shape_ok(self):
        a = np.zeros((3, 4))
        assert check_array_shape(a, (3, 4), "a") is a

    def test_wildcard(self):
        a = np.zeros((3, 4))
        check_array_shape(a, (None, 4), "a")

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_array_shape(np.zeros(3), (3, 1), "a")

    def test_wrong_size(self):
        with pytest.raises(ValueError):
            check_array_shape(np.zeros((3, 4)), (3, 5), "a")

    def test_non_array(self):
        with pytest.raises(TypeError):
            check_array_shape([1, 2], (2,), "a")

    def test_sorted_times_ok(self):
        t = check_sorted_times([0.0, 0.5, 0.5, 1.0])
        assert t.dtype == np.float64

    def test_sorted_times_rejects_descending(self):
        with pytest.raises(ValueError):
            check_sorted_times([1.0, 0.5])

    def test_sorted_times_rejects_nan(self):
        with pytest.raises(ValueError):
            check_sorted_times([0.0, float("nan")])

    def test_sorted_times_rejects_2d(self):
        with pytest.raises(ValueError):
            check_sorted_times(np.zeros((2, 2)))
