"""Unit tests for the compiled-corpus gradient kernel."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.compiled import CompiledCorpus, corpus_gradients
from repro.embedding.gradients import accumulate_gradients
from repro.embedding.model import EmbeddingModel


class TestCompilation:
    def test_counts(self, small_corpus):
        comp = CompiledCorpus.from_cascades(small_corpus)
        assert comp.n_infections == small_corpus.total_infections()

    def test_singletons_skipped(self):
        cs = CascadeSet(3, [Cascade([0], [0.0]), Cascade([1, 2], [0.0, 1.0])])
        comp = CompiledCorpus.from_cascades(cs)
        assert comp.n_infections == 2

    def test_empty(self):
        comp = CompiledCorpus.from_cascades([])
        assert comp.n_infections == 0

    def test_cascade_boundaries(self, small_corpus):
        comp = CompiledCorpus.from_cascades(small_corpus)
        # boundaries are non-overlapping and ordered
        assert np.all(comp.cascade_begin <= comp.starts)
        assert np.all(comp.ends <= comp.cascade_end)

    def test_valid_flags(self):
        cs = CascadeSet(4, [Cascade([0, 1, 2], [0.0, 0.0, 1.0])])
        comp = CompiledCorpus.from_cascades(cs)
        # the two t=0 infections have no strict predecessor
        assert comp.valid.tolist() == [False, False, True]


class TestEquivalenceWithPerCascadePath:
    def _check(self, model, corpus):
        gA1 = np.zeros_like(model.A)
        gB1 = np.zeros_like(model.B)
        ll1 = sum(
            accumulate_gradients(model.A, model.B, c, gA1, gB1) for c in corpus
        )
        comp = CompiledCorpus.from_cascades(corpus)
        gA2 = np.zeros_like(model.A)
        gB2 = np.zeros_like(model.B)
        ll2 = corpus_gradients(model.A, model.B, comp, gA2, gB2)
        assert ll1 == pytest.approx(ll2, abs=1e-9)
        assert np.allclose(gA1, gA2, atol=1e-12)
        assert np.allclose(gB1, gB2, atol=1e-12)

    def test_small_corpus(self, small_model, small_corpus):
        self._check(small_model, small_corpus)

    def test_corpus_with_ties(self, small_model):
        cs = CascadeSet(6)
        cs.append(Cascade([0, 1, 2], [0.0, 1.0, 1.0]))
        cs.append(Cascade([3, 4, 5], [0.5, 0.5, 0.5]))
        cs.append(Cascade([5, 0], [0.0, 2.0]))
        self._check(small_model, cs)

    def test_random_corpus(self):
        rng = np.random.default_rng(0)
        n = 20
        m = EmbeddingModel.random(n, 4, seed=1)
        cs = CascadeSet(n)
        for _ in range(15):
            size = int(rng.integers(2, 10))
            nodes = rng.permutation(n)[:size]
            times = np.round(rng.uniform(0, 3, size=size), 1)  # induces ties
            cs.append(Cascade(nodes, times))
        self._check(m, cs)

    def test_node_repeats_across_cascades(self, small_model):
        cs = CascadeSet(6)
        cs.append(Cascade([0, 1], [0.0, 1.0]))
        cs.append(Cascade([0, 1], [0.0, 2.0]))
        cs.append(Cascade([1, 0], [0.0, 0.5]))
        self._check(small_model, cs)

    def test_empty_corpus_zero(self, small_model):
        comp = CompiledCorpus.from_cascades([])
        gA = np.zeros_like(small_model.A)
        gB = np.zeros_like(small_model.B)
        assert corpus_gradients(small_model.A, small_model.B, comp, gA, gB) == 0.0


class TestFromArena:
    """``from_arena`` must be bit-compatible with ``from_cascades``."""

    FIELDS = ("nodes", "times", "starts", "ends", "cascade_begin", "cascade_end", "valid")

    def _assert_same(self, a: CompiledCorpus, b: CompiledCorpus):
        for f in self.FIELDS:
            x, y = getattr(a, f), getattr(b, f)
            assert x.dtype == y.dtype, f
            assert np.array_equal(x, y), f

    def _flat(self, cascades):
        if not cascades:
            e = np.empty(0, dtype=np.int64)
            return e, np.empty(0, dtype=np.float64), np.zeros(1, dtype=np.int64)
        nodes = np.concatenate([c.nodes for c in cascades])
        times = np.concatenate([c.times for c in cascades])
        offsets = np.zeros(len(cascades) + 1, dtype=np.int64)
        np.cumsum([c.size for c in cascades], out=offsets[1:])
        return nodes, times, offsets

    def test_small_corpus(self, small_corpus):
        cascades = list(small_corpus)
        self._assert_same(
            CompiledCorpus.from_cascades(cascades),
            CompiledCorpus.from_arena(*self._flat(cascades)),
        )

    def test_ties(self, tied_cascade):
        self._assert_same(
            CompiledCorpus.from_cascades([tied_cascade]),
            CompiledCorpus.from_arena(*self._flat([tied_cascade])),
        )

    def test_skips_small_subcascades(self):
        cascades = [
            Cascade([0], [0.0]),
            Cascade([1, 2], [0.0, 1.0]),
            Cascade([3], [0.5]),
        ]
        compiled = CompiledCorpus.from_arena(*self._flat(cascades))
        self._assert_same(CompiledCorpus.from_cascades(cascades), compiled)
        assert compiled.n_infections == 2

    def test_empty(self):
        self._assert_same(
            CompiledCorpus.from_cascades([]),
            CompiledCorpus.from_arena(*self._flat([])),
        )

    def test_randomized(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            cascades = []
            for _ in range(int(rng.integers(1, 8))):
                size = int(rng.integers(1, 9))
                nodes = rng.permutation(20)[:size]
                times = np.sort(np.round(rng.uniform(0, 3, size), 1))  # ties likely
                cascades.append(Cascade(nodes, times))
            self._assert_same(
                CompiledCorpus.from_cascades(cascades),
                CompiledCorpus.from_arena(*self._flat(cascades)),
            )

    def test_gradients_match_object_path(self, small_model, small_corpus):
        cascades = list(small_corpus)
        a = CompiledCorpus.from_cascades(cascades)
        b = CompiledCorpus.from_arena(*self._flat(cascades))
        gA1, gB1 = np.zeros_like(small_model.A), np.zeros_like(small_model.B)
        gA2, gB2 = np.zeros_like(small_model.A), np.zeros_like(small_model.B)
        ll1 = corpus_gradients(small_model.A, small_model.B, a, gA1, gB1)
        ll2 = corpus_gradients(small_model.A, small_model.B, b, gA2, gB2)
        assert ll1 == ll2
        assert np.array_equal(gA1, gA2)
        assert np.array_equal(gB1, gB2)
