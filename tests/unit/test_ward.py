"""Unit tests for Ward agglomerative clustering (scipy as oracle)."""

import numpy as np
import pytest
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.clustering.ward import Dendrogram, ward_linkage


def random_distance_matrix(n, seed):
    """Euclidean distances of random points (guarantees Ward validity)."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 3))
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt((diff**2).sum(-1))


class TestWardLinkage:
    def test_merge_count(self):
        D = random_distance_matrix(10, 0)
        d = ward_linkage(D)
        assert d.Z.shape == (9, 4)
        assert d.n_leaves == 10

    def test_heights_match_scipy(self):
        D = random_distance_matrix(25, 1)
        ours = np.sort(ward_linkage(D).heights())
        theirs = np.sort(linkage(squareform(D, checks=False), method="ward")[:, 2])
        assert np.allclose(ours, theirs, atol=1e-8)

    def test_heights_monotone_after_sorting_by_merge(self):
        # Ward is reducible: the sequence of merge heights found by
        # NN-chain, once sorted, equals the true agglomeration order.
        D = random_distance_matrix(30, 2)
        h = np.sort(ward_linkage(D).heights())
        assert np.all(np.diff(h) >= -1e-12)

    def test_cut_matches_scipy_clusters(self):
        D = random_distance_matrix(20, 3)
        ours = ward_linkage(D).cut(4)
        Z = linkage(squareform(D, checks=False), method="ward")
        theirs = fcluster(Z, t=4, criterion="maxclust")
        # compare partitions up to relabeling via pair agreement
        from repro.community.partition import Partition

        assert Partition(ours).agreement(Partition(theirs)) == 1.0

    def test_two_obvious_clusters(self):
        # points at 0 and at 100: clean 2-cut
        pts = np.array([0.0, 0.1, 0.2, 100.0, 100.1, 100.2])
        D = np.abs(pts[:, None] - pts[None, :])
        d = ward_linkage(D)
        labels = d.cut(2)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_final_merge_count_is_n(self):
        D = random_distance_matrix(12, 4)
        d = ward_linkage(D)
        assert int(d.Z[-1, 3]) == 12

    def test_trivial_inputs(self):
        assert ward_linkage(np.zeros((1, 1))).n_leaves == 1
        assert ward_linkage(np.zeros((0, 0))).n_leaves == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            ward_linkage(np.zeros((2, 3)))
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            ward_linkage(bad)
        bad_diag = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            ward_linkage(bad_diag)


class TestDendrogram:
    def test_cut_extremes(self):
        D = random_distance_matrix(8, 5)
        d = ward_linkage(D)
        assert np.unique(d.cut(1)).size == 1
        assert np.unique(d.cut(8)).size == 8

    def test_cut_validation(self):
        d = ward_linkage(random_distance_matrix(5, 6))
        with pytest.raises(ValueError):
            d.cut(0)
        with pytest.raises(ValueError):
            d.cut(6)

    def test_cut_height_zero_gives_leaves(self):
        d = ward_linkage(random_distance_matrix(6, 7))
        labels = d.cut_height(-1.0)
        assert np.unique(labels).size == 6

    def test_cut_height_huge_gives_one(self):
        d = ward_linkage(random_distance_matrix(6, 8))
        assert np.unique(d.cut_height(1e9)).size == 1

    def test_top_merges_sorted(self):
        d = ward_linkage(random_distance_matrix(15, 9))
        tm = d.top_merges(5)
        heights = [h for h, _ in tm]
        assert heights == sorted(heights, reverse=True)
        assert tm[0][1] == 15  # root merge contains all leaves

    def test_render_text_contains_root(self):
        d = ward_linkage(random_distance_matrix(6, 10))
        text = d.render_text(max_depth=2)
        assert ", 6]" in text

    def test_render_single_leaf(self):
        d = ward_linkage(np.zeros((1, 1)))
        assert "leaf" in d.render_text()

    def test_bad_Z_shape(self):
        with pytest.raises(ValueError):
            Dendrogram(np.zeros((3, 2)), 4)
        with pytest.raises(ValueError):
            Dendrogram(np.zeros((2, 4)), 4)
