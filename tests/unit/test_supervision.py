"""Unit tests for the supervised dispatch loop (fake host, no processes).

A fake host lets every supervision path — retry ladder, fault accounting,
timeouts, crashes, exhaustion — run deterministically in-process.  The
real-pool behaviour (actual kills, hangs, respawns) is exercised by
``tests/integration/test_fault_tolerance.py``.
"""

import pytest

from repro.parallel.supervision import (
    DispatchOutcome,
    FaultLogEntry,
    InjectedFault,
    SupervisedDispatcher,
    SupervisionConfig,
    TaskFailedError,
    _FaultPlan,
    inject_fault,
)


# --------------------------------------------------------------------- #
# Config / fault-plan plumbing
# --------------------------------------------------------------------- #


class TestSupervisionConfig:
    def test_defaults_valid(self):
        cfg = SupervisionConfig()
        assert cfg.max_retries == 3 and cfg.task_timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"task_timeout": 0.0},
            {"task_timeout": -1.0},
            {"timeout_factor": 0.0},
            {"timeout_floor": -1.0},
            {"backoff_seconds": -0.1},
            {"poll_interval": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionConfig(**kwargs)


class TestFaultPlan:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            _FaultPlan(task_idx=0, action="explode")

    def test_spec_matches_task_and_attempt(self):
        plan = _FaultPlan(task_idx=2, action="raise", attempts=(0, 1))
        assert plan.spec_for(2, 0) == ("raise", 3600.0)
        assert plan.spec_for(2, 1) is not None
        assert plan.spec_for(2, 2) is None
        assert plan.spec_for(1, 0) is None

    def test_inject_none_is_noop(self):
        inject_fault(None)  # must not raise

    def test_inject_raise(self):
        with pytest.raises(InjectedFault):
            inject_fault(("raise", 0.0))


# --------------------------------------------------------------------- #
# Fake host
# --------------------------------------------------------------------- #


class FakeResult:
    """Duck-typed AsyncResult: immediately ready unless told otherwise."""

    def __init__(self, fn, ready=True):
        self._fn = fn
        self._ready = ready

    def ready(self):
        return self._ready

    def get(self):
        return self._fn()

    def wait(self, timeout):
        pass


def _record(idx):
    return (idx, 100 + idx, 1, -1.0, 0.001, 5)


class FakeHost:
    """Host protocol stub: configurable failures, no real processes."""

    def __init__(self, fail=None, rungs=("arena", "legacy", "serial"),
                 deadlines=None, never_ready=()):
        self.fail = fail or {}  # idx -> attempts that raise in the "worker"
        self.rungs = tuple(rungs)
        self.deadlines = deadlines or {}
        self.never_ready = set(never_ready)  # (idx, attempt) that hang
        self.damaged = False
        self.reseeds = []
        self.respawns = 0
        self.serial_runs = []
        self.submissions = []  # (idx, attempt, rung)

    def submit_attempt(self, idx, attempt, rung):
        self.submissions.append((idx, attempt, rung))

        def fn():
            if attempt in self.fail.get(idx, ()):
                raise RuntimeError(f"boom {idx}@{attempt}")
            return _record(idx)

        return FakeResult(fn, ready=(idx, attempt) not in self.never_ready)

    def run_serial_fallback(self, idx):
        self.serial_runs.append(idx)
        return _record(idx)

    def reseed_tasks(self, indices):
        self.reseeds.append(tuple(indices))

    def respawn_pool(self):
        self.respawns += 1
        self.damaged = False

    def pool_damaged(self):
        return self.damaged

    def task_deadline(self, idx):
        return self.deadlines.get(idx)

    def task_rungs(self, idx):
        return self.rungs

    def task_community(self, idx):
        return 100 + idx


def _dispatch(host, n_tasks, **cfg_kwargs):
    cfg_kwargs.setdefault("backoff_seconds", 0.0)
    cfg_kwargs.setdefault("poll_interval", 0.001)
    cfg = SupervisionConfig(**cfg_kwargs)
    return SupervisedDispatcher(host, cfg, n_workers=2).run(range(n_tasks))


# --------------------------------------------------------------------- #
# Dispatch behaviour
# --------------------------------------------------------------------- #


class TestCleanDispatch:
    def test_all_tasks_recorded_once(self):
        host = FakeHost()
        out = _dispatch(host, 5)
        assert sorted(out.records) == [0, 1, 2, 3, 4]
        assert out.fault_log == [] and out.n_retries == 0 and out.n_respawns == 0
        # one submission per task, all at attempt 0 on the first rung
        assert sorted(host.submissions) == [(i, 0, "arena") for i in range(5)]

    def test_empty_order(self):
        out = _dispatch(FakeHost(), 0)
        assert out.records == {} and isinstance(out, DispatchOutcome)


class TestRetryLadder:
    def test_rung_escalation(self):
        d = SupervisedDispatcher(FakeHost(), SupervisionConfig(max_retries=3), 2)
        assert d._rung_for(0, 0) == "arena"
        assert d._rung_for(0, 1) == "legacy"
        assert d._rung_for(0, 2) == "serial"
        # final permitted attempt is always serial, whatever the ladder says
        assert d._rung_for(0, 3) == "serial"

    def test_short_ladder_final_attempt_serial(self):
        host = FakeHost(rungs=("legacy", "serial"))
        d = SupervisedDispatcher(host, SupervisionConfig(max_retries=3), 2)
        assert d._rung_for(0, 0) == "legacy"
        assert d._rung_for(0, 1) == "serial"
        assert d._rung_for(0, 3) == "serial"

    def test_zero_retries_runs_straight_to_last_rung(self):
        host = FakeHost()
        d = SupervisedDispatcher(host, SupervisionConfig(max_retries=0), 2)
        assert d._rung_for(0, 0) == "serial"

    def test_exception_walks_the_ladder(self):
        # task 1 raises at attempts 0 and 1 -> arena, legacy fail; serial wins
        host = FakeHost(fail={1: (0, 1)})
        out = _dispatch(host, 3, max_retries=3)
        assert sorted(out.records) == [0, 1, 2]
        assert out.n_retries == 2
        assert [(e.attempt, e.cause, e.fallback) for e in out.fault_log] == [
            (0, "exception", "legacy"),
            (1, "exception", "serial"),
        ]
        assert host.serial_runs == [1]
        # seed rows restored before every retry
        assert host.reseeds == [(1,), (1,)]

    def test_faulty_task_counted_once(self):
        host = FakeHost(fail={0: (0,)})
        out = _dispatch(host, 4, max_retries=2)
        assert len(out.records) == 4
        assert all(out.records[i][0] == i for i in range(4))

    def test_exhaustion_raises_with_history(self):
        # ladder that never reaches an unkillable rung: exhausting the
        # budget must raise, carrying every attempt's cause
        host = FakeHost(fail={0: (0, 1)}, rungs=("legacy",))
        with pytest.raises(TaskFailedError) as exc_info:
            _dispatch(host, 1, max_retries=1)
        err = exc_info.value
        assert err.task_idx == 0 and err.community_id == 100
        assert [e.attempt for e in err.entries] == [0, 1]
        assert "attempt 1: exception" in str(err)


class TestTimeouts:
    def test_hung_task_times_out_and_degrades(self):
        # attempt 0 never completes; deadline expires, respawn, retry
        host = FakeHost(deadlines={0: 0.01}, never_ready={(0, 0)},
                        rungs=("legacy", "serial"))
        out = _dispatch(host, 1, max_retries=3)
        assert out.records[0] == _record(0)
        assert out.n_respawns == 1 and out.n_retries == 1
        (entry,) = out.fault_log
        assert entry.cause == "timeout" and entry.fallback == "serial"
        assert entry.elapsed_seconds >= 0.01
        assert host.serial_runs == [0]

    def test_innocent_survivor_keeps_attempt_number(self):
        # task 0 hangs past its deadline; task 1 is in flight in the same
        # generation with no deadline -> requeued at the SAME attempt with
        # no fault entry of its own
        host = FakeHost(deadlines={0: 0.01},
                        never_ready={(0, 0), (1, 0)},
                        rungs=("legacy", "serial"))

        # second submission of task 1 completes
        orig_submit = host.submit_attempt

        def submit(idx, attempt, rung):
            if idx == 1 and len([s for s in host.submissions if s[0] == 1]) >= 1:
                host.submissions.append((idx, attempt, rung))
                return FakeResult(lambda: _record(1), ready=True)
            return orig_submit(idx, attempt, rung)

        host.submit_attempt = submit
        out = _dispatch(host, 2, max_retries=3)
        assert sorted(out.records) == [0, 1]
        task1_faults = [e for e in out.fault_log if e.task_idx == 1]
        assert task1_faults == []
        task1_subs = [s for s in host.submissions if s[0] == 1]
        assert [a for _, a, _ in task1_subs] == [0, 0]  # attempt not burned


class TestCrashes:
    def test_dead_generation_burns_an_attempt(self):
        host = FakeHost(never_ready={(0, 0)}, rungs=("legacy", "serial"))
        host.damaged = True  # a worker is already dead when dispatch starts
        out = _dispatch(host, 1, max_retries=3)
        assert out.records[0] == _record(0)
        assert out.n_respawns == 1
        (entry,) = out.fault_log
        assert entry.cause == "crash" and entry.attempt == 0
        assert host.respawns == 1


class TestAccounting:
    """DispatchOutcome invariants under retries (satellite coverage)."""

    def test_retries_equal_fault_entries_with_fallback(self):
        host = FakeHost(fail={0: (0,), 2: (0, 1)})
        out = _dispatch(host, 3, max_retries=3)
        retried = [e for e in out.fault_log if e.fallback is not None]
        assert out.n_retries == len(retried) == 3
        assert len(out.records) == 3  # every task exactly once

    def test_attempts_recorded_in_order_per_task(self):
        host = FakeHost(fail={1: (0, 1)})
        out = _dispatch(host, 2, max_retries=3)
        attempts = [e.attempt for e in out.fault_log if e.task_idx == 1]
        assert attempts == [0, 1]

    def test_community_ids_attributed(self):
        host = FakeHost(fail={1: (0,)})
        out = _dispatch(host, 2, max_retries=1)
        (entry,) = out.fault_log
        assert isinstance(entry, FaultLogEntry)
        assert entry.community_id == 101
