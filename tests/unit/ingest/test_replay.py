"""Unit tests for the rate-controlled replay engine."""

import time

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel
from repro.ingest.recorder import StreamWriter
from repro.ingest.replay import (
    ReplayConfig,
    ReplayOverloadError,
    SLOMeter,
    TokenBucket,
    replay_recording,
)
from repro.ingest.sources import EventBatch, batches_from_cascades
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.batching import BatchPolicy, QueueFullError
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService
from repro.serving.tracker import StoreConfig

N = 30


def make_model(seed):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (N, 3)), rng.uniform(0, 1, (N, 3)))


def make_predictor(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 3))
    sizes = np.where(X[:, 0] > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=seed).fit(ds)


def make_service(seed=0, capacity=100_000):
    reg = ModelRegistry()
    reg.publish(make_model(seed), predictor=make_predictor(seed))
    return ScoringService(
        reg,
        store_config=StoreConfig(capacity=capacity),
        policy=BatchPolicy(max_batch=64, max_delay=0.0),
    )


def make_stream_batches(seed=0, n_events=120, n_cascades=9, chunk=16):
    """An interleaved multi-cascade stream (dups allowed), chunked."""
    rng = np.random.default_rng(seed)
    cids = [f"c{int(rng.integers(n_cascades))}" for _ in range(n_events)]
    nodes = rng.integers(0, N, n_events)
    times = np.sort(rng.uniform(0, 4.0, n_events))
    from repro.ingest.sources import chunk_columns

    return list(chunk_columns(cids, nodes, times, chunk))


def record(tmp_path, batches, name="s.evs"):
    path = tmp_path / name
    with StreamWriter(path) as w:
        for b in batches:
            w.write_batch(b)
    return path


class ListSource:
    def __init__(self, batches):
        self.batches = batches

    async def __aiter__(self):
        for b in self.batches:
            yield b


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestTokenBucket:
    def test_pacing_math_with_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(speed=2.0, burst_s=0.0, clock=clock)
        assert bucket.delay_for(0.0) == 0.0  # anchors t0 at first call
        # stream offset 4s at speed 2 is due 2 wall-seconds in
        assert bucket.delay_for(4.0) == pytest.approx(2.0)
        clock.t += 1.0
        assert bucket.delay_for(4.0) == pytest.approx(1.0)
        clock.t += 1.0
        assert bucket.delay_for(4.0) == 0.0

    def test_burst_allowance(self):
        clock = FakeClock()
        bucket = TokenBucket(speed=1.0, burst_s=0.5, clock=clock)
        assert bucket.delay_for(0.4) == 0.0
        assert bucket.delay_for(1.5) == pytest.approx(1.0)

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            TokenBucket(speed=0.0)


class TestReplayConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"speed": 0.0},
            {"speed": -1.0},
            {"chunk_events": 0},
            {"max_inflight": 0},
            {"max_retries": -1},
            {"overload": "panic"},
            {"score_every": 0},
            {"window_s": 0.0},
            {"slo_p99_ms": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReplayConfig(**kwargs)

    def test_speed_none_means_flat_out(self):
        assert ReplayConfig(speed=None).speed is None


class TestReplayParity:
    def test_flat_out_replay_is_bit_identical_to_direct_ingest(self, tmp_path):
        batches = make_stream_batches(seed=1)
        path = record(tmp_path, batches)
        replayed = make_service(seed=1)
        report = replay_recording(
            path, replayed, ReplayConfig(speed=None)
        )
        direct = make_service(seed=1)
        for b in batches:
            direct.ingest_columns(list(b.cascade_ids), b.nodes, b.times)
        assert report.events == sum(len(b) for b in batches)
        assert replayed.state_fingerprint() == direct.state_fingerprint()
        cids = sorted({c for b in batches for c in b.cascade_ids})
        got = replayed.score_columns(cids, include_features=True)
        want = direct.score_columns(cids, include_features=True)
        assert np.array_equal(got.scores, want.scores)
        assert np.array_equal(got.features, want.features)

    @pytest.mark.parametrize("chunk", [1, 7, 200])
    def test_rechunking_does_not_change_state(self, tmp_path, chunk):
        batches = make_stream_batches(seed=2)
        path = record(tmp_path, batches)
        a = make_service(seed=2)
        replay_recording(path, a, ReplayConfig(speed=None))
        b = make_service(seed=2)
        replay_recording(
            path, b, ReplayConfig(speed=None, chunk_events=chunk)
        )
        assert a.state_fingerprint() == b.state_fingerprint()

    def test_eviction_matches_direct_ingest(self, tmp_path):
        batches = make_stream_batches(seed=3, n_cascades=12)
        path = record(tmp_path, batches)
        replayed = make_service(seed=3, capacity=3)
        replay_recording(path, replayed, ReplayConfig(speed=None, chunk_events=5))
        direct = make_service(seed=3, capacity=3)
        for b in batches:
            direct.ingest_columns(list(b.cascade_ids), b.nodes, b.times)
        assert replayed.state_fingerprint() == direct.state_fingerprint()
        assert (
            replayed.store.stats.evictions == direct.store.stats.evictions > 0
        )

    def test_source_accepted_directly(self):
        batches = make_stream_batches(seed=4)
        service = make_service(seed=4)
        report = replay_recording(
            ListSource(batches), service, ReplayConfig(speed=None)
        )
        assert report.events == sum(len(b) for b in batches)


class TestPacing:
    def test_paced_replay_takes_about_span_over_speed(self):
        # 2 recorded seconds at 10x must take >= ~0.2 wall seconds
        # (minus the burst allowance), and the report must say so
        batches = [
            EventBatch(["a"], [1], [0.0]),
            EventBatch(["b"], [2], [1.0]),
            EventBatch(["c"], [3], [2.0]),
        ]
        service = make_service()
        t0 = time.perf_counter()
        report = replay_recording(
            ListSource(batches),
            service,
            ReplayConfig(speed=10.0, burst_s=0.0),
        )
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.15
        assert report.achieved_speed is not None
        assert report.achieved_speed == pytest.approx(10.0, rel=0.35)
        assert report.target_speed == 10.0

    def test_flat_out_reports_no_speed(self):
        service = make_service()
        report = replay_recording(
            ListSource(make_stream_batches()), service, ReplayConfig(speed=None)
        )
        assert report.achieved_speed is None and report.target_speed is None


class FlakyTarget:
    """Rejects the first *n_rejects* ingest calls, then accepts."""

    def __init__(self, n_rejects):
        self.n_rejects = n_rejects
        self.calls = 0
        self.applied = 0

    def ingest_columns(self, cids, nodes, times):
        self.calls += 1
        if self.calls <= self.n_rejects:
            raise QueueFullError("pending queue full (fake)")
        self.applied += len(cids)
        return len(cids)


class TestBackpressure:
    def test_retry_ladder_recovers(self):
        target = FlakyTarget(n_rejects=3)
        report = replay_recording(
            ListSource([EventBatch(["a", "b"], [1, 2], [0.0, 0.1])]),
            target,
            ReplayConfig(speed=None, max_retries=5, backoff_base_s=1e-4),
        )
        assert target.applied == 2
        assert report.retries == 3
        assert report.dropped_events == 0

    def test_block_policy_raises_past_the_budget(self):
        target = FlakyTarget(n_rejects=100)
        with pytest.raises(ReplayOverloadError):
            replay_recording(
                ListSource([EventBatch(["a"], [1], [0.0])]),
                target,
                ReplayConfig(
                    speed=None,
                    max_retries=2,
                    backoff_base_s=1e-4,
                    overload="block",
                ),
            )

    def test_shed_policy_drops_and_continues(self):
        target = FlakyTarget(n_rejects=3)  # first burst exhausts retries
        batches = [
            EventBatch(["a", "b"], [1, 2], [0.0, 0.1]),
            EventBatch(["c"], [3], [0.2]),
        ]
        report = replay_recording(
            ListSource(batches),
            target,
            ReplayConfig(
                speed=None, max_retries=2, backoff_base_s=1e-4, overload="shed"
            ),
        )
        assert report.dropped_events == 2 and report.dropped_bursts == 1
        assert target.applied == 1  # the second burst landed
        assert report.events == 1


class TestScoringAndProgress:
    def test_score_every_feeds_the_meter(self):
        service = make_service()
        report = replay_recording(
            ListSource(make_stream_batches(chunk=10)),
            service,
            ReplayConfig(speed=None, score_every=2),
        )
        assert report.scored > 0
        assert report.score_p99_ms >= report.score_p50_ms >= 0.0

    def test_progress_hook_sees_every_burst(self):
        seen = []
        service = make_service()
        batches = make_stream_batches(chunk=10)
        replay_recording(
            ListSource(batches),
            service,
            ReplayConfig(speed=None),
            progress=lambda p: seen.append((p.bursts, p.applied)),
        )
        assert len(seen) == len(batches)
        assert seen[-1][0] == len(batches)
        assert [b for b, _ in seen] == sorted(b for b, _ in seen)

    def test_mid_replay_hot_swap_via_progress_hook(self):
        # swap after burst 3: the replayed service must equal a direct
        # service that ingests, swaps at the same boundary, and ingests
        batches = make_stream_batches(seed=5, chunk=10)
        swap_at = 3
        replayed = make_service(seed=5)
        model2, predictor2 = make_model(99), make_predictor(99)

        def hook(p):
            if p.bursts == swap_at:
                replayed.publish(model2, predictor=predictor2, source="swap")

        replay_recording(
            ListSource(batches), replayed, ReplayConfig(speed=None), progress=hook
        )
        direct = make_service(seed=5)
        for i, b in enumerate(batches):
            if i == swap_at:
                direct.publish(model2, predictor=predictor2, source="swap")
            direct.ingest_columns(list(b.cascade_ids), b.nodes, b.times)
        assert replayed.state_fingerprint() == direct.state_fingerprint()
        cids = sorted({c for b in batches for c in b.cascade_ids})
        got = replayed.score_columns(cids)
        want = direct.score_columns(cids)
        assert np.array_equal(got.scores, want.scores)
        assert got.model_version == want.model_version


class TestSLOReport:
    def test_report_fields_and_gate(self):
        meter = SLOMeter(window_s=0.5)
        meter.record_burst(10, 0.001)
        meter.record_burst(5, 0.002)
        meter.record_score(3, 0.004)
        meter.record_stall(0.05)
        meter.record_retry()
        meter.record_drop(2)
        report = meter.finish(1.0, 2.0, slo_p99_ms=100.0)
        assert report.events == 15 and report.bursts == 2
        assert report.stalls == 1 and report.retries == 1
        assert report.dropped_events == 2 and report.dropped_bursts == 1
        assert report.scored == 3
        assert report.ok
        d = report.to_dict()
        assert d["ok"] and d["events"] == 15
        assert any("stalls" in line for line in report.format_lines())

    def test_gate_fails_on_slow_p99(self):
        meter = SLOMeter()
        meter.record_burst(1, 0.5)  # 500 ms
        report = meter.finish(0.0, None, slo_p99_ms=1.0)
        assert not report.ok
        assert any("FAIL" in line for line in report.format_lines())
