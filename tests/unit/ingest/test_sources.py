"""Unit tests for the event-source layer (EventBatch + connectors)."""

import asyncio
import json

import numpy as np
import pytest

from repro.cascades.types import Cascade
from repro.datasets.gdelt import GDELTConfig
from repro.ingest.sources import (
    CascadeFileSource,
    EventBatch,
    EventSource,
    RecordedSource,
    SyntheticGDELTSource,
    batches_from_cascades,
    chunk_columns,
)


def collect(source):
    async def drain():
        return [b async for b in source]

    return asyncio.run(drain())


def make_cascades(seed=0, n=6, n_nodes=40):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        size = int(rng.integers(2, 9))
        nodes = rng.choice(n_nodes, size=size, replace=False)
        times = np.sort(rng.uniform(0, 5, size=size))
        out.append(Cascade(nodes, times))
    return out


class TestEventBatch:
    def test_coerces_and_freezes_columns(self):
        b = EventBatch(["a", "b"], [1, 2], [0.5, 1.5])
        assert b.nodes.dtype == np.int64 and b.times.dtype == np.float64
        assert not b.nodes.flags.writeable and not b.times.flags.writeable
        assert len(b) == 2
        assert b.t_first == 0.5 and b.t_last == 1.5

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            EventBatch(["a"], [1, 2], [0.1, 0.2])

    def test_rejects_unordered_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            EventBatch(["a", "b"], [1, 2], [1.0, 0.5])

    def test_rejects_non_finite_times(self):
        with pytest.raises(ValueError, match="finite"):
            EventBatch(["a"], [1], [np.inf])

    def test_equality_and_hash(self):
        a = EventBatch(["x"], [3], [0.25])
        b = EventBatch(["x"], [3], [0.25])
        c = EventBatch(["y"], [3], [0.25])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_empty_batch_allowed(self):
        assert len(EventBatch([], [], [])) == 0


class TestChunkColumns:
    def test_slices_preserve_all_events(self):
        cids = [f"c{i}" for i in range(10)]
        nodes = np.arange(10, dtype=np.int64)
        times = np.linspace(0, 1, 10)
        chunks = list(chunk_columns(cids, nodes, times, 3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert [c for ch in chunks for c in ch.cascade_ids] == cids
        assert np.array_equal(
            np.concatenate([c.nodes for c in chunks]), nodes
        )

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            list(chunk_columns(["a"], np.array([1]), np.array([0.0]), 0))


class TestBatchesFromCascades:
    def test_stream_is_globally_time_ordered(self):
        batches = batches_from_cascades(
            make_cascades(), span_s=30.0, chunk=7, seed=1
        )
        times = np.concatenate([b.times for b in batches])
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0.0 and times[-1] <= 30.0

    def test_deterministic_for_a_seed(self):
        a = batches_from_cascades(make_cascades(), span_s=20.0, seed=5)
        b = batches_from_cascades(make_cascades(), span_s=20.0, seed=5)
        assert a == b
        c = batches_from_cascades(make_cascades(), span_s=20.0, seed=6)
        assert a != c

    def test_preserves_every_event(self):
        cascades = make_cascades(seed=2)
        total = sum(len(c) for c in cascades)
        batches = batches_from_cascades(cascades, chunk=5)
        assert sum(len(b) for b in batches) == total
        # every cascade keeps its internal event order on the stream
        per_cascade = {}
        for b in batches:
            for cid, node in zip(b.cascade_ids, b.nodes):
                per_cascade.setdefault(cid, []).append(int(node))
        for i, c in enumerate(cascades):
            assert per_cascade[f"event-{i}"] == list(c.nodes)

    def test_empty_corpus(self):
        assert batches_from_cascades([]) == []

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            batches_from_cascades(make_cascades(), span_s=0.0)


class TestSyntheticGDELTSource:
    def test_streams_the_sampled_corpus(self):
        source = SyntheticGDELTSource(
            8,
            config=GDELTConfig(n_sites=300),
            seed=3,
            span_s=15.0,
            chunk=50,
        )
        assert isinstance(source, EventSource)
        batches = collect(source)
        assert batches and all(len(b) <= 50 for b in batches)
        times = np.concatenate([b.times for b in batches])
        assert np.all(np.diff(times) >= 0) and times[-1] <= 15.0
        # cached: a second pass yields the identical stream
        assert collect(source) == batches
        assert source.materialize() == batches


class TestCascadeFileSource:
    def test_reads_jsonl_corpus(self, tmp_path):
        cascades = make_cascades(seed=4, n=4)
        path = tmp_path / "corpus.jsonl"
        with path.open("w") as fh:
            for c in cascades:
                fh.write(
                    json.dumps(
                        {"nodes": c.nodes.tolist(), "times": c.times.tolist()}
                    )
                    + "\n"
                )
        source = CascadeFileSource(path, span_s=10.0, chunk=9, seed=0)
        batches = collect(source)
        assert sum(len(b) for b in batches) == sum(len(c) for c in cascades)
        assert batches == batches_from_cascades(
            cascades, span_s=10.0, chunk=9, seed=0
        )

    def test_reads_headered_corpus(self, tmp_path):
        # the save_cascades_jsonl layout (repro simulate-sbm / gdelt
        # --out): a header line, then cascade records
        from repro.cascades.io import save_cascades_jsonl
        from repro.cascades.types import CascadeSet

        cascades = make_cascades(seed=5, n=3)
        path = tmp_path / "corpus.jsonl"
        save_cascades_jsonl(CascadeSet(40, cascades), path)
        batches = collect(CascadeFileSource(path, span_s=10.0, seed=1))
        assert sum(len(b) for b in batches) == sum(len(c) for c in cascades)

    def test_bad_record_is_a_clean_error(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text('{"sizes": [1, 2]}\n')
        with pytest.raises(ValueError, match="corpus.jsonl:1"):
            CascadeFileSource(path).materialize()


class TestRecordedSource:
    def test_round_trips_through_a_recording(self, tmp_path):
        from repro.ingest.recorder import StreamWriter

        batches = batches_from_cascades(make_cascades(), chunk=11, seed=9)
        path = tmp_path / "stream.evs"
        with StreamWriter(path) as w:
            for b in batches:
                w.write_batch(b)
        assert collect(RecordedSource(path)) == batches
