"""Chaos tests for the replay engine (the ingest leg of ``make chaos``).

Three failure modes, one invariant: whatever breaks mid-replay — a
consumer that cannot keep up, a scoring server that dies and comes
back, a SIGKILLed shard — the replayed state must end up equal to a
direct, uninterrupted ingest of the same recorded stream.
"""

import asyncio
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel
from repro.ingest.recorder import StreamWriter
from repro.ingest.replay import ReplayConfig, replay_recording
from repro.ingest.sources import chunk_columns
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.batching import BatchPolicy
from repro.serving.client import TCPScoringClient
from repro.serving.durability import EventJournal, JournalConfig, recover_service
from repro.serving.registry import ModelRegistry
from repro.serving.server import ScoringServer
from repro.serving.service import ScoringService
from repro.serving.sharding import ShardedScoringService

N = 30


def make_model(seed):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (N, 3)), rng.uniform(0, 1, (N, 3)))


def make_predictor(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 3))
    sizes = np.where(X[:, 0] > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=seed).fit(ds)


def make_service(seed=0):
    reg = ModelRegistry()
    reg.publish(make_model(seed), predictor=make_predictor(seed))
    service = ScoringService(
        reg, policy=BatchPolicy(max_batch=64, max_delay=0.0)
    )
    service.begin_serving()
    return service


def make_stream_batches(seed=0, n_events=120, n_cascades=9, chunk=12):
    rng = np.random.default_rng(seed)
    cids = [f"c{int(rng.integers(n_cascades))}" for _ in range(n_events)]
    nodes = rng.integers(0, N, n_events)
    times = np.sort(rng.uniform(0, 2.0, n_events))
    return list(chunk_columns(cids, nodes, times, chunk))


def record(tmp_path, batches, name="chaos.evs"):
    path = tmp_path / name
    with StreamWriter(path) as w:
        for b in batches:
            w.write_batch(b)
    return path


def direct_ingest(batches, seed=0):
    service = make_service(seed)
    for b in batches:
        service.ingest_columns(list(b.cascade_ids), b.nodes, b.times)
    return service


def all_cids(batches):
    return sorted({c for b in batches for c in b.cascade_ids})


class ServerHarness:
    """A :class:`ScoringServer` on a daemon thread (see test_tcp_client)."""

    def __init__(self, service, port=0):
        self.service = service
        self.port = port
        self._ready = threading.Event()
        self._loop = None
        self._stop_event = None
        self._thread = None
        self._error = None

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10.0):
            raise RuntimeError("server thread did not start")
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            server = ScoringServer(self.service, port=self.port)
            try:
                await server.start()
            except Exception as exc:  # pragma: no cover - startup failure
                self._error = exc
                self._ready.set()
                return
            self.port = server.port
            self._ready.set()
            await self._stop_event.wait()
            await server.stop()

        asyncio.run(main())

    def stop(self):
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(10.0)


class SlowTarget:
    """Delegates ingest to a real service, slowly."""

    wants_executor_offload = True  # sleep off the event loop

    def __init__(self, service, delay_s):
        self.service = service
        self.delay_s = delay_s

    def ingest_columns(self, cids, nodes, times):
        time.sleep(self.delay_s)
        return self.service.ingest_columns(cids, nodes, times)


class TestSlowConsumer:
    def test_backpressure_stalls_but_state_is_identical(self, tmp_path):
        batches = make_stream_batches(seed=1)
        path = record(tmp_path, batches)
        service = make_service(seed=1)
        report = replay_recording(
            path,
            SlowTarget(service, delay_s=0.01),
            ReplayConfig(speed=None, max_inflight=1),
        )
        # the producer outruns the 10ms-per-burst consumer: the bounded
        # queue must fill (stalls) without dropping or reordering
        assert report.stalls > 0 and report.stall_s > 0.0
        assert report.dropped_events == 0
        assert report.events == sum(len(b) for b in batches)
        direct = direct_ingest(batches, seed=1)
        assert service.state_fingerprint() == direct.state_fingerprint()
        cids = all_cids(batches)
        assert np.array_equal(
            service.score_columns(cids).scores,
            direct.score_columns(cids).scores,
        )


class TestServerRestartMidReplay:
    def test_replay_survives_one_restart(self, tmp_path):
        batches = make_stream_batches(seed=2)
        path = record(tmp_path, batches)

        config = JournalConfig(directory=tmp_path / "wal")
        service = ScoringService(
            ModelRegistry(), policy=BatchPolicy(max_batch=64, max_delay=0.0)
        )
        service.attach_journal(EventJournal(config))
        # publish *after* attach so the swap record lands in the journal
        service.publish(make_model(2), predictor=make_predictor(2), source="seed")
        service.begin_serving()
        harness = ServerHarness(service)
        harness.start()
        port = harness.port
        state = {"harness": harness, "service": service, "restarted": False}

        def kill_and_recover(progress):
            if progress.bursts != 4 or state["restarted"]:
                return
            state["restarted"] = True
            state["harness"].stop()
            state["service"].seal_journal()
            recovered, _ = recover_service(config)
            recovered.begin_serving()
            state["service"] = recovered
            state["harness"] = ServerHarness(recovered, port=port).start()

        client = TCPScoringClient(
            "127.0.0.1",
            port,
            max_reconnects=20,
            reconnect_backoff=0.02,
        )
        try:
            report = replay_recording(
                path,
                client,
                ReplayConfig(speed=None),
                progress=kill_and_recover,
            )
        finally:
            client.close()
            state["harness"].stop()

        assert state["restarted"]
        assert report.bursts == len(batches)
        assert report.dropped_events == 0
        # at-least-once delivery: the burst in flight at the restart may
        # be re-sent, so compare scores (dup-filtered), not ack counts
        direct = direct_ingest(batches, seed=2)
        cids = all_cids(batches)
        got = state["service"].score_columns(cids, include_features=True)
        want = direct.score_columns(cids, include_features=True)
        assert np.array_equal(got.scores, want.scores)
        assert np.array_equal(got.features, want.features)


class TestShardSigkillMidReplay:
    def test_replay_survives_a_shard_crash(self, tmp_path):
        batches = make_stream_batches(seed=3)
        path = record(tmp_path, batches)

        sharded = ShardedScoringService(
            n_shards=2, journal_dir=tmp_path / "shards"
        )
        sharded.publish(make_model(3), predictor=make_predictor(3))
        sharded.begin_serving()
        killed = {"done": False}

        def kill_shard(progress):
            if progress.bursts != 3 or killed["done"]:
                return
            killed["done"] = True
            process = sharded._handles[1].process
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=10)

        try:
            report = replay_recording(
                path,
                sharded,
                ReplayConfig(speed=None),
                progress=kill_shard,
            )
            assert killed["done"]
            assert report.events == sum(len(b) for b in batches)
            # the watchdog restarted shard 1 from its journal and the
            # interrupted fan-out retried transparently
            assert sharded.stats()["shard_restarts"] == 1
            direct = direct_ingest(batches, seed=3)
            cids = all_cids(batches)
            got = sharded.score_columns(cids, include_features=True)
            want = direct.score_columns(cids, include_features=True)
            assert np.array_equal(got.scores, want.scores)
            assert np.array_equal(got.features, want.features)
        finally:
            sharded.close()
