"""Unit tests for the crc-framed recording format."""

import struct

import numpy as np
import pytest

from repro.ingest.recorder import (
    RecordingCorruptError,
    RecordingError,
    StreamWriter,
    iter_batches,
    record_source,
    stream_info,
)
from repro.ingest.sources import EventBatch


def make_batches(n=4, events_per=5):
    rng = np.random.default_rng(0)
    out = []
    t = 0.0
    for i in range(n):
        times = np.sort(t + rng.uniform(0, 1, events_per))
        out.append(
            EventBatch(
                [f"c{j % 3}" for j in range(events_per)],
                rng.integers(0, 50, events_per),
                times,
            )
        )
        t = float(times[-1])
    return out


def write_all(path, batches):
    with StreamWriter(path) as w:
        for b in batches:
            w.write_batch(b)
    return w


class TestRoundTrip:
    def test_batches_come_back_bit_identical(self, tmp_path):
        batches = make_batches()
        path = tmp_path / "s.evs"
        w = write_all(path, batches)
        assert w.n_records == len(batches)
        assert w.n_events == sum(len(b) for b in batches)
        got = list(iter_batches(path))
        assert got == batches
        for g, b in zip(got, batches):
            assert g.nodes.dtype == np.int64 and g.times.dtype == np.float64

    def test_write_columns_convenience(self, tmp_path):
        path = tmp_path / "s.evs"
        with StreamWriter(path) as w:
            w.write_columns(["a", "b"], [1, 2], [0.1, 0.2])
        (got,) = iter_batches(path)
        assert got == EventBatch(["a", "b"], [1, 2], [0.1, 0.2])

    def test_empty_batches_are_skipped(self, tmp_path):
        path = tmp_path / "s.evs"
        with StreamWriter(path) as w:
            w.write_batch(EventBatch([], [], []))
            w.write_columns(["a"], [1], [0.5])
        assert w.n_records == 1

    def test_stream_info_summarises(self, tmp_path):
        batches = make_batches()
        path = tmp_path / "s.evs"
        write_all(path, batches)
        info = stream_info(path)
        assert info.n_records == len(batches)
        assert info.n_events == sum(len(b) for b in batches)
        assert info.n_cascades == 3
        assert info.t_first == batches[0].t_first
        assert info.t_last == batches[-1].t_last
        assert info.duration_s == pytest.approx(info.t_last - info.t_first)
        assert info.to_dict()["n_events"] == info.n_events

    def test_empty_recording(self, tmp_path):
        path = tmp_path / "s.evs"
        write_all(path, [])
        assert list(iter_batches(path)) == []
        info = stream_info(path)
        assert info.n_events == 0 and info.duration_s == 0.0

    def test_record_source_drains_async_source(self, tmp_path):
        batches = make_batches()

        class ListSource:
            async def __aiter__(self):
                for b in batches:
                    yield b

        seen = []
        path = tmp_path / "s.evs"
        info = record_source(
            ListSource(), path, progress=lambda r, e: seen.append((r, e))
        )
        assert info.n_records == len(batches)
        assert seen[-1] == (info.n_records, info.n_events)
        assert list(iter_batches(path)) == batches


class TestStreamContract:
    def test_rejects_out_of_order_batches(self, tmp_path):
        path = tmp_path / "s.evs"
        with StreamWriter(path) as w:
            w.write_columns(["a"], [1], [5.0])
            with pytest.raises(RecordingError, match="out-of-order"):
                w.write_columns(["b"], [2], [1.0])

    def test_closed_writer_refuses_writes(self, tmp_path):
        w = StreamWriter(tmp_path / "s.evs")
        w.close()
        with pytest.raises(RecordingError, match="closed"):
            w.write_columns(["a"], [1], [0.0])


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "s.evs"
        path.write_bytes(b"NOPE" + b"\x00" * 4)
        with pytest.raises(RecordingCorruptError, match="bad magic"):
            list(iter_batches(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "s.evs"
        path.write_bytes(struct.pack("<4sHH", b"REVS", 99, 0))
        with pytest.raises(RecordingCorruptError, match="version"):
            list(iter_batches(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "s.evs"
        path.write_bytes(b"REV")
        with pytest.raises(RecordingCorruptError, match="truncated header"):
            list(iter_batches(path))

    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        path = tmp_path / "s.evs"
        write_all(path, make_batches(2))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(RecordingCorruptError, match="crc mismatch"):
            list(iter_batches(path))

    def test_truncated_tail_is_an_error_not_a_repair(self, tmp_path):
        # unlike the serving journal, a recording is an offline corpus:
        # a torn tail means the artifact is bad, not that a crash needs
        # absorbing — fail loudly
        path = tmp_path / "s.evs"
        write_all(path, make_batches(2))
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        with pytest.raises(RecordingCorruptError, match="truncated payload"):
            list(iter_batches(path))

    def test_truncated_frame_header(self, tmp_path):
        path = tmp_path / "s.evs"
        write_all(path, make_batches(1))
        blob = path.read_bytes()
        path.write_bytes(blob + b"\x01\x02")
        with pytest.raises(RecordingCorruptError, match="truncated frame"):
            list(iter_batches(path))
