"""Engine-level lint behavior: suppressions, JSON schema, CLI exit codes."""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint.cli import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    main,
)
from repro.devtools.lint.engine import lint_source, parse_suppressions
from repro.devtools.lint.rules import DEFAULT_RULES

BAD_RNG = "import random\nv = random.random()\n"


class TestSuppressions:
    def test_valid_suppression_silences_rule(self):
        src = (
            "import random\n"
            "v = random.random()  # repro: noqa[REP001] seeding handled upstream\n"
        )
        violations, n_suppressed = lint_source("m.py", src, DEFAULT_RULES)
        assert violations == []
        assert n_suppressed == 1

    def test_suppression_for_other_rule_does_not_apply(self):
        src = (
            "import random\n"
            "v = random.random()  # repro: noqa[REP006] wrong rule cited\n"
        )
        violations, n_suppressed = lint_source("m.py", src, DEFAULT_RULES)
        assert [v.rule for v in violations] == ["REP001"]
        assert n_suppressed == 0

    def test_missing_reason_is_rep000(self):
        src = "import random\nv = random.random()  # repro: noqa[REP001]\n"
        violations, _ = lint_source("m.py", src, DEFAULT_RULES)
        assert {v.rule for v in violations} == {"REP000", "REP001"}

    def test_blanket_noqa_rejected(self):
        src = "x = 1  # repro: noqa[] because I said so\n"
        violations, _ = lint_source("m.py", src, DEFAULT_RULES)
        assert [v.rule for v in violations] == ["REP000"]

    def test_malformed_marker_is_rep000(self):
        src = "x = 1  # repro: noqa REP001 missing brackets\n"
        violations, _ = lint_source("m.py", src, DEFAULT_RULES)
        assert [v.rule for v in violations] == ["REP000"]

    def test_rep000_not_suppressible(self):
        # A malformed suppression cannot be silenced by another
        # suppression on the same line.
        src = "x = 1  # repro: noqa[REP000] trying to silence the engine\n"
        suppressions, bad = parse_suppressions("m.py", src)
        assert 1 in suppressions  # grammar-valid...
        violations, _ = lint_source(
            "m.py",
            "import random\n"
            "v = random.random()  # repro: noqa[bogus] nope\n",
            DEFAULT_RULES,
        )
        # ...but engine violations always survive filtering.
        assert "REP000" in [v.rule for v in violations]

    def test_docstring_mention_not_a_suppression(self):
        src = '"""Explains the # repro: noqa[REP001] marker."""\nx = 1\n'
        suppressions, bad = parse_suppressions("m.py", src)
        assert suppressions == {}
        assert bad == []

    def test_multi_rule_suppression(self):
        src = (
            "import random, time\n"
            "v = random.random() + time.time()"
            "  # repro: noqa[REP001,REP002] fixture exercising both\n"
        )
        violations, n_suppressed = lint_source("m.py", src, DEFAULT_RULES)
        assert violations == []
        assert n_suppressed == 2

    def test_syntax_error_is_rep000(self):
        violations, _ = lint_source("m.py", "def f(:\n", DEFAULT_RULES)
        assert [v.rule for v in violations] == ["REP000"]
        assert "parse" in violations[0].message


class TestCLI:
    def test_clean_file_exits_zero(self, tmp_path):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        out = io.StringIO()
        assert main([str(f)], out=out) == EXIT_CLEAN
        assert "0 violation(s)" in out.getvalue()

    def test_violating_file_exits_one_with_rule_id(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(BAD_RNG)
        out = io.StringIO()
        assert main([str(f)], out=out) == EXIT_VIOLATIONS
        assert "REP001" in out.getvalue()

    def test_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope")], out=io.StringIO()) == EXIT_ERROR

    def test_unknown_rule_id_exits_two(self, tmp_path):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        code = main([str(f), "--select", "REP999"], out=io.StringIO())
        assert code == EXIT_ERROR

    def test_select_restricts_rules(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(BAD_RNG)
        out = io.StringIO()
        # Only REP006 selected: the REP001 hit must not fire.
        assert main([str(f), "--select", "REP006"], out=out) == EXIT_CLEAN

    def test_json_schema(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(BAD_RNG)
        out = io.StringIO()
        assert main([str(f), "--format", "json"], out=out) == EXIT_VIOLATIONS
        payload = json.loads(out.getvalue())
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert payload["files_scanned"] == 1
        assert payload["n_violations"] == 1
        assert payload["counts"] == {"REP001": 1}
        (v,) = payload["violations"]
        assert set(v) == {"rule", "path", "line", "col", "message"}
        assert v["rule"] == "REP001"
        assert v["line"] == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert main(["--list-rules"], out=out) == EXIT_CLEAN
        text = out.getvalue()
        for rid in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rid in text

    def test_module_entry_point(self, tmp_path):
        """``python -m repro.devtools.lint`` honors the exit-code contract."""
        f = tmp_path / "bad.py"
        f.write_text(BAD_RNG)
        repo_src = Path(__file__).resolve().parents[3] / "src"
        env = dict(os.environ, PYTHONPATH=str(repo_src))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", str(f)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == EXIT_VIOLATIONS
        assert "REP001" in proc.stdout
