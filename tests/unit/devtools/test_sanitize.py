"""Write-disjointness sanitizer: ledger semantics, injected violations,
exemption handling, and bit-identity of sanitized runs."""

import numpy as np
import pytest

from repro.cascades.simulate import simulate_corpus
from repro.community.mergetree import MergeTree
from repro.community.partition import Partition
from repro.devtools import sanitize
from repro.devtools.sanitize import (
    DisjointnessViolation,
    WriteLedger,
    assert_exempt,
    verify_selection,
)
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig
from repro.graphs.generators import stochastic_block_model
from repro.parallel.arena import LevelSelection
from repro.parallel.backends import Backend, BlockResult, SerialBackend
from repro.parallel.hierarchical import HierarchicalInference


@pytest.fixture(scope="module")
def small_world():
    graph, membership = stochastic_block_model(
        60, 20, p_in=0.4, p_out=0.01, seed=0
    )
    cascades = simulate_corpus(graph, 40, window=0.5, seed=1, min_size=2)
    return cascades, Partition(membership)


class TestEnabled:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        assert not sanitize.enabled()

    @pytest.mark.parametrize("value", ["0", "false", "No", "off", ""])
    def test_falsey_values(self, monkeypatch, value):
        monkeypatch.setenv(sanitize.ENV_VAR, value)
        assert not sanitize.enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(sanitize.ENV_VAR, value)
        assert sanitize.enabled()


class TestAssertExempt:
    def test_hogwild_is_exempt(self):
        assert_exempt("repro.parallel.hogwild")  # must not raise

    def test_unknown_module_rejected(self):
        with pytest.raises(RuntimeError, match="exemption"):
            assert_exempt("repro.parallel.backends")


class TestWriteLedger:
    def test_disjoint_blocks_pass(self):
        ledger = WriteLedger(level=0)
        ledger.assign(0, np.array([0, 1, 2]))
        ledger.assign(1, np.array([3, 4]))
        ledger.record_write(0, np.array([0, 1, 2]))
        ledger.record_write(1, np.array([3, 4]))
        ledger.verify()
        assert ledger.n_blocks == 2
        assert ledger.n_rows_written == 5

    def test_overlap_raises_with_structure(self):
        ledger = WriteLedger(level=3)
        ledger.assign(7, np.array([0, 1, 2]))
        ledger.assign(9, np.array([2, 3]))
        ledger.record_write(7, np.array([0, 1, 2]))
        ledger.record_write(9, np.array([2, 3]))
        with pytest.raises(DisjointnessViolation) as exc_info:
            ledger.verify()
        err = exc_info.value
        assert err.level == 3
        assert err.kind == "overlap"
        assert err.communities == (7, 9)
        assert err.rows.tolist() == [2]
        assert "level 3" in str(err)

    def test_stray_row_is_coverage_violation(self):
        ledger = WriteLedger(level=1)
        ledger.assign(4, np.array([10, 11]))
        ledger.record_write(4, np.array([10, 11, 12]))
        with pytest.raises(DisjointnessViolation) as exc_info:
            ledger.verify()
        err = exc_info.value
        assert err.kind == "coverage"
        assert err.communities == (4,)
        assert 12 in err.rows.tolist()

    def test_missing_row_is_coverage_violation(self):
        ledger = WriteLedger(level=1)
        ledger.assign(4, np.array([10, 11]))
        ledger.record_write(4, np.array([10]))
        with pytest.raises(DisjointnessViolation, match="coverage"):
            ledger.verify()

    def test_unassigned_writer_rejected(self):
        ledger = WriteLedger(level=0)
        ledger.record_write(5, np.array([0]))
        with pytest.raises(DisjointnessViolation, match="never assigned"):
            ledger.verify()

    def test_assigned_but_unwritten_is_legal(self):
        # Empty sub-corpus at a level: the driver skips the task and the
        # rows legitimately keep their seed values.
        ledger = WriteLedger(level=0)
        ledger.assign(0, np.array([0, 1]))
        ledger.verify()

    def test_double_assign_rejected(self):
        ledger = WriteLedger(level=0)
        ledger.assign(0, np.array([0]))
        with pytest.raises(ValueError, match="assigned twice"):
            ledger.assign(0, np.array([1]))


class TestVerifySelection:
    def _publish(self, members_per_task):
        sel = LevelSelection()
        members = np.concatenate(
            [np.asarray(m, dtype=np.int64) for m in members_per_task]
        )
        sel.update(
            positions=np.arange(members.size, dtype=np.int64),
            sub_offsets=np.array([0, members.size], dtype=np.int64),
            members=members,
        )
        ranges = []
        lo = 0
        for m in members_per_task:
            ranges.append((lo, lo + len(m)))
            lo += len(m)
        return sel, ranges

    def test_consistent_selection_passes(self):
        assigned = [np.array([0, 1, 2]), np.array([3, 4])]
        sel, ranges = self._publish(assigned)
        try:
            _, _, mem_v = sel.resident_views()
            verify_selection(0, [0, 1], assigned, mem_v, ranges)
            del mem_v
        finally:
            sel.close()

    def test_injected_overlap_raises(self):
        # Splitting bug simulation: two tasks assigned (and published
        # with) an overlapping row range.
        assigned = [np.array([0, 1, 2]), np.array([2, 3])]
        sel, ranges = self._publish(assigned)
        try:
            _, _, mem_v = sel.resident_views()
            with pytest.raises(DisjointnessViolation) as exc_info:
                verify_selection(5, [10, 11], assigned, mem_v, ranges)
            del mem_v
        finally:
            sel.close()
        err = exc_info.value
        assert err.level == 5
        assert err.kind == "overlap"
        assert err.communities == (10, 11)
        assert err.rows.tolist() == [2]

    def test_stale_selection_block_raises(self):
        # The published shared-memory content disagrees with the task
        # assignment (stale digest-reuse / corrupt write simulation).
        assigned = [np.array([0, 1, 2]), np.array([3, 4])]
        sel, ranges = self._publish(assigned)
        try:
            _, _, mem_v = sel.resident_views()
            mem_v[3] = 1  # corrupt task 1's published slice in place
            with pytest.raises(DisjointnessViolation) as exc_info:
                verify_selection(2, [0, 1], assigned, mem_v, ranges)
            del mem_v
        finally:
            sel.close()
        err = exc_info.value
        assert err.kind == "selection"
        assert err.communities == (1,)

    def test_misaligned_arguments_rejected(self):
        with pytest.raises(ValueError, match="align"):
            verify_selection(0, [0], [], np.empty(0, dtype=np.int64), [])


class _TamperingBackend(Backend):
    """Delegates to SerialBackend, then widens one result's row set —
    simulating a block that scatters outside its community."""

    def __init__(self):
        self._inner = SerialBackend()

    def run_level(self, tasks):
        results = self._inner.run_level(tasks)
        if len(results) > 1:
            bad = results[0]
            extra = int(results[1].nodes[0])
            results[0] = BlockResult(
                community_id=bad.community_id,
                nodes=np.append(bad.nodes, extra),
                A_rows=np.vstack([bad.A_rows, bad.A_rows[:1]]),
                B_rows=np.vstack([bad.B_rows, bad.B_rows[:1]]),
                n_iters=bad.n_iters,
                final_loglik=bad.final_loglik,
                wall_seconds=bad.wall_seconds,
                work_units=bad.work_units,
            )
        return results


class TestDriverIntegration:
    def test_tampered_result_caught_before_merge(self, small_world, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        cascades, part = small_world
        model = EmbeddingModel.random(60, 3, seed=5)
        engine = HierarchicalInference(
            MergeTree(part, stop_at=1),
            OptimizerConfig(max_iters=3),
            backend=_TamperingBackend(),
        )
        with pytest.raises(DisjointnessViolation) as exc_info:
            engine.fit(model, cascades)
        assert exc_info.value.kind == "coverage"

    def test_sanitized_serial_fit_bit_identical(self, small_world, monkeypatch):
        cascades, part = small_world
        tree = MergeTree(part, stop_at=1)
        cfg = OptimizerConfig(max_iters=10)

        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        plain = EmbeddingModel.random(60, 3, seed=6)
        HierarchicalInference(tree, cfg).fit(plain, cascades)

        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        sanitized = EmbeddingModel.random(60, 3, seed=6)
        HierarchicalInference(tree, cfg).fit(sanitized, cascades)

        assert np.array_equal(plain.A, sanitized.A)
        assert np.array_equal(plain.B, sanitized.B)

    @pytest.mark.slow
    def test_sanitized_multiprocess_fit_bit_identical(
        self, small_world, monkeypatch
    ):
        from repro.parallel.backends import MultiprocessBackend

        cascades, part = small_world
        tree = MergeTree(part, stop_at=1)
        cfg = OptimizerConfig(max_iters=10)

        def fit(sanitized):
            if sanitized:
                monkeypatch.setenv(sanitize.ENV_VAR, "1")
            else:
                monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
            model = EmbeddingModel.random(60, 3, seed=6)
            with MultiprocessBackend(n_workers=2) as backend:
                HierarchicalInference(tree, cfg, backend=backend).fit(
                    model, cascades
                )
            return model

        plain = fit(False)
        checked = fit(True)
        serial = EmbeddingModel.random(60, 3, seed=6)
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        HierarchicalInference(tree, cfg).fit(serial, cascades)

        assert np.array_equal(plain.A, checked.A)
        assert np.array_equal(plain.B, checked.B)
        assert np.array_equal(serial.A, checked.A)

    def test_hogwild_runs_under_sanitizer(self, small_world, monkeypatch):
        # Hogwild is exempt: a sanitized single-worker run must succeed
        # (and stay deterministic).
        from repro.parallel.hogwild import HogwildConfig, hogwild_fit

        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        cascades, _ = small_world
        model = EmbeddingModel.random(60, 3, seed=8)
        hogwild_fit(
            model,
            cascades,
            HogwildConfig(n_epochs=1, n_workers=1),
            seed=3,
        )
