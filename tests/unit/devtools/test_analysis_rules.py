"""Analyzer fixtures: each REP10x catches its seeded bug, stays silent
on the disciplined twin, and honors the suppression grammar."""

import textwrap

from repro.devtools.analysis import analyze_sources


def _src(text):
    return textwrap.dedent(text).lstrip("\n")


def _rules(report):
    return [v.rule for v in report.violations]


class TestRep101GuardedBy:
    BAD = _src(
        """
        import threading

        class Svc:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock

            def bump(self):
                self.count += 1
        """
    )
    GOOD = _src(
        """
        import threading

        class Svc:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self.count += 1
        """
    )

    def test_unguarded_access_flagged(self):
        report = analyze_sources([("pkg/bad.py", self.BAD)])
        assert _rules(report) == ["REP101"]
        v = report.violations[0]
        assert "Svc.count" in v.message
        assert "_lock" in v.message

    def test_guarded_access_clean(self):
        report = analyze_sources([("pkg/good.py", self.GOOD)])
        assert report.clean

    def test_init_publication_exempt(self):
        # __init__ writes the guarded attribute without the lock — that
        # is construction, not a race (happens-before publication).
        report = analyze_sources([("pkg/good.py", self.GOOD)])
        assert report.clean

    def test_two_calls_deep_interprocedural(self):
        src = _src(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def entry(self):
                    self._step()

                def _step(self):
                    self._leaf()

                def _leaf(self):
                    self.count += 1
            """
        )
        report = analyze_sources([("pkg/deep.py", src)])
        assert _rules(report) == ["REP101"]
        msg = report.violations[0].message
        # The finding carries the witness call path from the entry point.
        assert "call path" in msg
        assert "pkg.deep.Svc.entry" in msg

    def test_two_calls_deep_with_lock_at_entry_clean(self):
        src = _src(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def entry(self):
                    with self._lock:
                        self._step()

                def _step(self):
                    self._leaf()

                def _leaf(self):
                    self.count += 1
            """
        )
        report = analyze_sources([("pkg/deep.py", src)])
        assert report.clean

    def test_guarded_global_via_module_registry(self):
        src = _src(
            """
            import threading

            _MU = threading.Lock()
            _GUARDED_BY = {"_STATE": "_MU"}
            _STATE = {}

            def bad():
                _STATE["k"] = 1

            def good():
                with _MU:
                    _STATE["k"] = 1
            """
        )
        report = analyze_sources([("pkg/g.py", src)])
        assert _rules(report) == ["REP101"]
        assert report.violations[0].line == 8


class TestRep102LockOrder:
    def test_inversion_within_module_flagged(self):
        src = _src(
            """
            import threading

            _A = threading.Lock()
            _B = threading.Lock()

            def forward():
                with _A:
                    with _B:
                        pass

            def backward():
                with _B:
                    with _A:
                        pass
            """
        )
        report = analyze_sources([("pkg/o.py", src)])
        assert _rules(report) == ["REP102"]
        msg = report.violations[0].message
        assert "pkg.o._A" in msg and "pkg.o._B" in msg

    def test_consistent_order_clean(self):
        src = _src(
            """
            import threading

            _A = threading.Lock()
            _B = threading.Lock()

            def one():
                with _A:
                    with _B:
                        pass

            def two():
                with _A:
                    with _B:
                        pass
            """
        )
        report = analyze_sources([("pkg/o.py", src)])
        assert report.clean

    def test_cycle_spanning_two_modules(self):
        first = _src(
            """
            import threading
            from pkg.second import grab_b_then_a

            _A = threading.Lock()

            def grab_a_then_b():
                from pkg.second import _B
                with _A:
                    with _B:
                        pass
            """
        )
        second = _src(
            """
            import threading
            from pkg.first import _A

            _B = threading.Lock()

            def grab_b_then_a():
                with _B:
                    with _A:
                        pass
            """
        )
        report = analyze_sources(
            [("pkg/first.py", first), ("pkg/second.py", second)]
        )
        assert _rules(report) == ["REP102"]
        msg = report.violations[0].message
        assert "pkg.first._A" in msg and "pkg.second._B" in msg

    def test_interprocedural_order_through_callee(self):
        # forward() holds A and calls a helper that takes B; backward()
        # takes them the other way — the cycle only exists across calls.
        src = _src(
            """
            import threading

            _A = threading.Lock()
            _B = threading.Lock()

            def _take_b():
                with _B:
                    pass

            def forward():
                with _A:
                    _take_b()

            def backward():
                with _B:
                    with _A:
                        pass
            """
        )
        report = analyze_sources([("pkg/o.py", src)])
        assert _rules(report) == ["REP102"]

    def test_reentrant_reacquisition_records_no_edge(self):
        src = _src(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """
        )
        report = analyze_sources([("pkg/r.py", src)])
        assert report.clean


class TestRep103BlockingUnderLock:
    def test_sleep_under_lock_flagged(self):
        src = _src(
            """
            import threading
            import time

            _MU = threading.Lock()

            def slow():
                with _MU:
                    time.sleep(1.0)
            """
        )
        report = analyze_sources([("pkg/s.py", src)])
        assert _rules(report) == ["REP103"]
        assert "time.sleep" in report.violations[0].message

    def test_sleep_outside_lock_clean(self):
        src = _src(
            """
            import threading
            import time

            _MU = threading.Lock()

            def fine():
                with _MU:
                    pass
                time.sleep(1.0)
            """
        )
        report = analyze_sources([("pkg/s.py", src)])
        assert report.clean

    def test_await_under_threading_lock_flagged(self):
        src = _src(
            """
            import threading

            _MU = threading.Lock()

            async def starve(fut):
                with _MU:
                    await fut
            """
        )
        report = analyze_sources([("pkg/a.py", src)])
        assert _rules(report) == ["REP103"]
        assert "await" in report.violations[0].message

    def test_blocking_call_reached_through_helper(self):
        src = _src(
            """
            import threading
            import time

            _MU = threading.Lock()

            def _io():
                time.sleep(0.5)

            def entry():
                with _MU:
                    _io()
            """
        )
        report = analyze_sources([("pkg/h.py", src)])
        assert _rules(report) == ["REP103"]
        assert "call path" in report.violations[0].message


class TestRep104ForkSafety:
    def test_lock_in_process_args_flagged(self):
        src = _src(
            """
            import threading
            from multiprocessing import Process

            _MU = threading.Lock()

            def spawn():
                p = Process(target=print, args=(_MU,))
                return p
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert _rules(report) == ["REP104"]

    def test_plain_data_args_clean(self):
        src = _src(
            """
            from multiprocessing import Process

            def spawn(payload):
                p = Process(target=print, args=(payload, 3))
                return p
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert report.clean

    def test_file_handle_in_submit_flagged(self):
        src = _src(
            """
            from concurrent.futures import ProcessPoolExecutor

            def spawn(path):
                fh = open(path)
                pool = ProcessPoolExecutor(2)
                pool.submit(print, fh)
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert _rules(report) == ["REP104"]

    def test_transitively_unsafe_object_flagged(self):
        # Carrier has no lock itself, but holds a Svc that does.
        src = _src(
            """
            import threading
            from multiprocessing import Process

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()

            class Carrier:
                def __init__(self):
                    self.svc = Svc()

            def spawn():
                c = Carrier()
                return Process(target=print, args=(c,))
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert _rules(report) == ["REP104"]

    def test_bound_method_target_checks_receiver(self):
        src = _src(
            """
            import threading
            from multiprocessing import Process

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    pass

            def spawn():
                s = Svc()
                return Process(target=s.work)
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert _rules(report) == ["REP104"]

    def test_unknown_type_is_not_flagged(self):
        src = _src(
            """
            from multiprocessing import Process

            def spawn(mystery):
                return Process(target=print, args=(mystery,))
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert report.clean

    def test_shm_handle_in_process_args_flagged(self):
        src = _src(
            """
            from multiprocessing import Process
            from repro.parallel._shm import create_segment

            def spawn(nbytes):
                seg = create_segment(nbytes)
                return Process(target=print, args=(seg,))
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert _rules(report) == ["REP104"]
        assert "SharedMemory handle" in report.violations[0].message
        assert "segment *name*" in report.violations[0].message

    def test_raw_shared_memory_in_submit_flagged(self):
        src = _src(
            """
            from concurrent.futures import ProcessPoolExecutor
            from multiprocessing.shared_memory import SharedMemory

            def spawn(name):
                shm = SharedMemory(name=name)
                pool = ProcessPoolExecutor(2)
                pool.submit(print, shm)
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert _rules(report) == ["REP104"]

    def test_object_holding_shm_handle_flagged(self):
        # Carrier has no lock, but owns an attached segment handle.
        src = _src(
            """
            from multiprocessing import Process
            from repro.parallel._shm import attach_untracked

            class Carrier:
                def __init__(self, name):
                    self._seg = attach_untracked(name)

            def spawn(name):
                c = Carrier(name)
                return Process(target=print, args=(c,))
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert _rules(report) == ["REP104"]

    def test_segment_name_string_is_clean(self):
        # The sanctioned pattern: ship the name, attach in the child.
        src = _src(
            """
            from multiprocessing import Process
            from repro.parallel._shm import create_segment

            def spawn(nbytes):
                seg = create_segment(nbytes)
                return Process(target=print, args=(seg.name, nbytes))
            """
        )
        report = analyze_sources([("pkg/f.py", src)])
        assert report.clean


class TestSuppressionGrammar:
    BAD_LINE = (
        "        self.count += 1"
        "  # repro: noqa[REP101] single-threaded setup path\n"
    )

    def _with_comment(self, comment):
        return _src(
            """
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def bump(self):
                    self.count += 1{comment}
            """
        ).format(comment=comment)

    def test_reasoned_suppression_silences(self):
        src = self._with_comment(
            "  # repro: noqa[REP101] single-threaded setup path"
        )
        report = analyze_sources([("pkg/sup.py", src)])
        assert report.clean
        assert report.n_suppressed == 1

    def test_wrong_rule_id_does_not_apply(self):
        src = self._with_comment("  # repro: noqa[REP103] wrong rule cited")
        report = analyze_sources([("pkg/sup.py", src)])
        assert _rules(report) == ["REP101"]
        assert report.n_suppressed == 0

    def test_parse_error_is_rep000(self):
        report = analyze_sources([("pkg/broken.py", "def broken(:\n")])
        assert _rules(report) == ["REP000"]

    def test_parse_error_silenced_when_lint_pass_owns_it(self):
        report = analyze_sources(
            [("pkg/broken.py", "def broken(:\n")], report_engine_errors=False
        )
        assert report.clean

    def test_select_restricts_rules(self):
        src = _src(
            """
            import threading
            import time

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def bump(self):
                    self.count += 1
                    with self._lock:
                        time.sleep(1.0)
            """
        )
        both = analyze_sources([("pkg/sel.py", src)])
        assert sorted(_rules(both)) == ["REP101", "REP103"]
        only = analyze_sources([("pkg/sel.py", src)], select=["REP103"])
        assert _rules(only) == ["REP103"]
