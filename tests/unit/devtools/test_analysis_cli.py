"""CLI integration for the analyzers: flags, SARIF, budget, clean tree."""

import io
import json
import time
from pathlib import Path

import pytest

import repro.devtools.analysis as analysis
from repro.devtools.analysis import analyze_paths
from repro.devtools.lint import cli
from repro.devtools.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_VIOLATIONS, main
from repro.devtools.lint.engine import LintReport, Violation
from repro.devtools.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    report_to_sarif,
)

REPO_SRC = str(Path(__file__).resolve().parents[3] / "src")

BAD_GUARD = (
    "import threading\n"
    "\n"
    "class Svc:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.count = 0  # guarded-by: _lock\n"
    "\n"
    "    def bump(self):\n"
    "        self.count += 1\n"
)

BAD_RNG = "import random\nv = random.random()\n"


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestSelectIgnoreFlags:
    def test_analysis_only_select_flags_rep101(self, tmp_path):
        f = tmp_path / "svc.py"
        f.write_text(BAD_GUARD)
        code, out = _run(["--select", "REP101", str(f)])
        assert code == EXIT_VIOLATIONS
        assert "REP101" in out

    def test_ignoring_analysis_rules_runs_lint_only(self, tmp_path):
        f = tmp_path / "svc.py"
        f.write_text(BAD_GUARD)
        code, out = _run(
            ["--ignore", "REP101,REP102,REP103,REP104", str(f)]
        )
        assert code == EXIT_CLEAN
        assert "REP101" not in out

    def test_syntactic_and_analysis_findings_merge(self, tmp_path):
        f = tmp_path / "both.py"
        f.write_text(BAD_RNG + BAD_GUARD)
        code, out = _run([str(f)])
        assert code == EXIT_VIOLATIONS
        assert "REP001" in out and "REP101" in out

    def test_unknown_id_in_ignore_is_usage_error(self, tmp_path):
        code, _ = _run(["--ignore", "REP999", str(tmp_path)])
        assert code == EXIT_ERROR

    def test_cli_mirror_of_rule_ids_matches_package(self):
        # cli.py cannot import the analysis package at module scope
        # (import cycle); this pins the mirrored constant to the truth.
        assert tuple(cli.ANALYSIS_RULE_IDS) == tuple(
            analysis.ANALYSIS_RULE_IDS
        )

    def test_list_rules_includes_analyzers(self):
        code, out = _run(["--list-rules"])
        assert code == EXIT_CLEAN
        for rid in ("REP001", "REP101", "REP102", "REP103", "REP104"):
            assert rid in out


class TestSarifOutput:
    def test_sarif_schema_shape(self, tmp_path):
        f = tmp_path / "svc.py"
        f.write_text(BAD_GUARD)
        code, out = _run(["--format", "sarif", "--select", "REP101", str(f)])
        assert code == EXIT_VIOLATIONS
        doc = json.loads(out)
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert doc["version"] == SARIF_VERSION
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"REP001", "REP101", "REP102", "REP103", "REP104"} <= rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
        (result,) = run["results"]
        assert result["ruleId"] == "REP101"
        assert result["level"] == "error"
        assert result["message"]["text"]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("svc.py")
        assert loc["region"]["startLine"] == 9

    def test_sarif_columns_are_one_based(self):
        report = LintReport(
            violations=[
                Violation(
                    rule="REP101", path="x.py", line=3, col=0, message="m"
                )
            ],
            files_scanned=1,
        )
        doc = report_to_sarif(report)
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startColumn"] == 1

    def test_clean_tree_sarif_has_no_results(self, tmp_path):
        f = tmp_path / "ok.py"
        f.write_text("x = 1\n")
        code, out = _run(["--format", "sarif", str(f)])
        assert code == EXIT_CLEAN
        assert json.loads(out)["runs"][0]["results"] == []


class TestShippedTree:
    def test_shipped_tree_analyzes_clean(self):
        code, out = _run(
            ["--select", "REP101,REP102,REP103,REP104", REPO_SRC]
        )
        assert code == EXIT_CLEAN, out

    @pytest.mark.slow
    def test_analysis_runtime_budget(self):
        # The interprocedural pass must stay cheap enough for `make
        # check` on every run: < 5 s over the full src/ tree.
        start = time.perf_counter()
        report = analyze_paths([REPO_SRC])
        elapsed = time.perf_counter() - start
        assert report.files_scanned > 50
        assert elapsed < 5.0, f"analysis took {elapsed:.2f}s over src/"
