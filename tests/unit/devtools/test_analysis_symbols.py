"""Symbol table construction: locks, guards, MRO, registries, types."""

import textwrap

from repro.devtools.analysis import PackageIndex, build_index
from repro.devtools.analysis.symbols import module_name_for_path


def _index(*mods):
    index, errors = build_index(list(mods))
    assert errors == []
    return index


def _src(text):
    return textwrap.dedent(text).lstrip("\n")


class TestModuleNames:
    def test_src_anchored(self):
        assert (
            module_name_for_path("src/repro/serving/service.py")
            == "repro.serving.service"
        )

    def test_absolute_src_anchored(self):
        assert (
            module_name_for_path("/root/repo/src/repro/parallel/_shm.py")
            == "repro.parallel._shm"
        )

    def test_fixture_relative(self):
        assert module_name_for_path("pkg/mod.py") == "pkg.mod"

    def test_init_is_the_package(self):
        assert module_name_for_path("src/repro/serving/__init__.py") == (
            "repro.serving"
        )


class TestClassFacts:
    SRC = _src(
        """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock
                self.store = Store()

        class Store:
            pass
        """
    )

    def test_lock_attr_detected(self):
        index = _index(("pkg/svc.py", self.SRC))
        cls = index.lookup_class("pkg.svc.Service")
        assert index.lock_kind(cls, "_lock") == "threading"

    def test_guard_comment_binds_attr(self):
        index = _index(("pkg/svc.py", self.SRC))
        cls = index.lookup_class("pkg.svc.Service")
        assert index.guard_for(cls, "count") == ("pkg.svc.Service", "_lock")
        assert index.guard_for(cls, "store") is None

    def test_attr_type_inferred_from_init(self):
        index = _index(("pkg/svc.py", self.SRC))
        cls = index.lookup_class("pkg.svc.Service")
        assert index.attr_type(cls, "store") == "pkg.svc.Store"


class TestGuardedByRegistry:
    def test_class_registry(self):
        src = _src(
            """
            import threading

            class S:
                _GUARDED_BY = {"items": "_mu"}

                def __init__(self):
                    self._mu = threading.Lock()
                    self.items = []
            """
        )
        index = _index(("pkg/m.py", src))
        cls = index.lookup_class("pkg.m.S")
        assert index.guard_for(cls, "items") == ("pkg.m.S", "_mu")

    def test_module_registry_dotted_key_kept_verbatim(self):
        src = _src(
            """
            import threading

            _PATCH_LOCK = threading.Lock()
            _GUARDED_BY = {"other.module.target": "_PATCH_LOCK"}
            """
        )
        index = _index(("pkg/m.py", src))
        assert index.guarded_globals["other.module.target"] == (
            "pkg.m._PATCH_LOCK"
        )

    def test_module_registry_bare_key_prefixed(self):
        src = _src(
            """
            import threading

            _MU = threading.Lock()
            _GUARDED_BY = {"_STATE": "_MU"}
            _STATE = {}
            """
        )
        index = _index(("pkg/m.py", src))
        assert index.guarded_globals["pkg.m._STATE"] == "pkg.m._MU"


class TestInheritance:
    SRC = _src(
        """
        import threading

        class Base:
            def __init__(self):
                self._lock = threading.RLock()
                self.state = "idle"  # guarded-by: _lock

        class Child(Base):
            def poke(self):
                return self.state
        """
    )

    def test_guard_named_after_declaring_class(self):
        index = _index(("pkg/h.py", self.SRC))
        child = index.lookup_class("pkg.h.Child")
        # The token is owned by the *declaring* class, so Base and Child
        # instances share one discipline.
        assert index.guard_for(child, "state") == ("pkg.h.Base", "_lock")
        assert index.lock_kind(child, "_lock") == "threading"

    def test_find_method_walks_mro(self):
        index = _index(("pkg/h.py", self.SRC))
        child = index.lookup_class("pkg.h.Child")
        assert index.find_method(child, "__init__").qualname == (
            "pkg.h.Base.__init__"
        )
        assert index.find_method(child, "poke").qualname == "pkg.h.Child.poke"
        assert index.find_method(child, "missing") is None


class TestBuildIndexErrors:
    def test_syntax_error_collected_not_raised(self):
        index, errors = build_index(
            [("pkg/ok.py", "x = 1\n"), ("pkg/bad.py", "def broken(:\n")]
        )
        assert isinstance(index, PackageIndex)
        assert "pkg.ok" in index.modules
        assert [path for path, _ in errors] == ["pkg/bad.py"]

    def test_sanitize_factories_count_as_locks(self):
        src = _src(
            """
            from repro.devtools.sanitize import guarded_lock

            class S:
                def __init__(self):
                    self._lock = guarded_lock("S._lock")
                    self.n = 0  # guarded-by: _lock
            """
        )
        index = _index(("pkg/s.py", src))
        cls = index.lookup_class("pkg.s.S")
        assert index.lock_kind(cls, "_lock") == "threading"
