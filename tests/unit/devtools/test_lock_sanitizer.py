"""Runtime lock-order sanitizer: edge recording, inversion detection,
reentrancy, factory arming, and the serving tier under REPRO_SANITIZE=1."""

import threading

import pytest

from repro.devtools.sanitize import (
    ENV_VAR,
    LockOrderViolation,
    TrackedLock,
    guarded_lock,
    guarded_rlock,
    lock_order_edges,
    reset_lock_order,
)


@pytest.fixture(autouse=True)
def _fresh_graph():
    reset_lock_order()
    yield
    reset_lock_order()


def _make_model(seed, n=8, k=2):
    import numpy as np

    from repro.embedding.model import EmbeddingModel

    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (n, k)), rng.uniform(0, 1, (n, k)))


def _tracked(name):
    return TrackedLock(threading.Lock(), name)


def _tracked_r(name):
    return TrackedLock(threading.RLock(), name)


class TestOrderGraph:
    def test_nested_acquisition_records_edge(self):
        a, b = _tracked("A"), _tracked("B")
        with a:
            with b:
                pass
        assert lock_order_edges() == {"A": ("B",)}

    def test_consistent_order_never_raises(self):
        a, b = _tracked("A"), _tracked("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert lock_order_edges() == {"A": ("B",)}

    def test_inversion_raises_before_blocking(self):
        a, b = _tracked("A"), _tracked("B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation) as exc_info:
                a.acquire()
        assert exc_info.value.cycle == ("A", "B", "A")
        assert "deadlock" in str(exc_info.value)

    def test_inversion_detected_across_threads(self):
        # Thread 1 establishes A -> B; the main thread then tries
        # B -> A.  No actual deadlock is needed: the graph is global,
        # so the second order raises immediately.
        a, b = _tracked("A"), _tracked("B")

        def forward():
            with a:
                with b:
                    pass

        t = threading.Thread(target=forward)
        t.start()
        t.join()
        with b:
            with pytest.raises(LockOrderViolation):
                with a:
                    pass

    def test_three_lock_cycle(self):
        a, b, c = _tracked("A"), _tracked("B"), _tracked("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderViolation) as exc_info:
                a.acquire()
        assert exc_info.value.cycle == ("A", "B", "C", "A")

    def test_failed_acquire_not_pushed(self):
        a = _tracked("A")
        assert a.acquire() is True
        assert a.acquire(blocking=False) is False
        a.release()
        b = _tracked("B")
        with b:  # held stack must be empty: no bogus A -> B edge
            pass
        assert lock_order_edges() == {}


class TestReentrancy:
    def test_reentrant_reacquisition_records_no_edge(self):
        r = _tracked_r("R")
        with r:
            with r:
                pass
        assert lock_order_edges() == {}

    def test_reentrant_hold_still_orders_other_locks(self):
        r, b = _tracked_r("R"), _tracked("B")
        with r:
            with r:
                with b:
                    pass
        assert lock_order_edges() == {"R": ("B",)}

    def test_release_pops_most_recent_occurrence(self):
        r = _tracked_r("R")
        r.acquire()
        r.acquire()
        r.release()
        # still held once: a nested acquisition of B records R -> B
        b = _tracked("B")
        with b:
            pass
        assert lock_order_edges() == {"R": ("B",)}
        r.release()


class TestFactories:
    def test_disabled_factory_returns_plain_lock(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        lock = guarded_lock("plain")
        assert not isinstance(lock, TrackedLock)
        with lock:
            pass
        assert lock_order_edges() == {}

    def test_armed_factory_returns_tracked_lock(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        lock = guarded_lock("armed")
        rlock = guarded_rlock("armed-r")
        assert isinstance(lock, TrackedLock)
        assert isinstance(rlock, TrackedLock)
        with lock:
            with rlock:
                pass
        assert lock_order_edges() == {"armed": ("armed-r",)}

    def test_falsey_values_disarm(self, monkeypatch):
        for value in ("", "0", "false", "no", "off"):
            monkeypatch.setenv(ENV_VAR, value)
            assert not isinstance(guarded_lock("x"), TrackedLock)


class TestServingTierIntegration:
    def test_service_locks_are_tracked_when_armed(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        from repro.serving.registry import ModelRegistry
        from repro.serving.service import ScoringService

        service = ScoringService(ModelRegistry())
        assert isinstance(service._lock, TrackedLock)
        assert isinstance(service.registry._lock, TrackedLock)

    def test_injected_inversion_is_detected(self, monkeypatch):
        # Simulate a registry method that grabs the service lock: the
        # shipped order is service -> registry (publish under swap), so
        # the injected registry -> service order must raise.
        monkeypatch.setenv(ENV_VAR, "1")
        from repro.serving.registry import ModelRegistry
        from repro.serving.service import ScoringService

        service = ScoringService(ModelRegistry())
        with service._lock:  # the shipped order: service, then registry
            service.registry.publish(_make_model(0))
        with pytest.raises(LockOrderViolation):
            with service.registry._lock:  # injected inversion
                with service._lock:
                    pass

    def test_service_normal_operation_clean_when_armed(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        from repro.serving.registry import ModelRegistry
        from repro.serving.service import ScoringService

        registry = ModelRegistry()
        service = ScoringService(registry)
        registry.publish(_make_model(0))
        service.ingest("c1", 0, 0.0)
        service.ingest("c1", 1, 1.0)
        service.stats()
        service.health_snapshot()
        assert service.registry.n_published == 1
