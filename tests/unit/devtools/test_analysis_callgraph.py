"""Call resolution and type inference: dispatch, recursion, unknowns."""

import ast
import textwrap

from repro.devtools.analysis import analyze_sources, build_index
from repro.devtools.analysis.callgraph import (
    POOL_TYPE,
    called_qualnames,
    infer_expr_type,
    infer_locals,
    resolve_call,
)


def _src(text):
    return textwrap.dedent(text).lstrip("\n")


def _index(*mods):
    index, errors = build_index(list(mods))
    assert errors == []
    return index


def _first_call(fn):
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            return node
    raise AssertionError("no call in function")


def _resolve_in(index, qualname):
    fn = index.lookup_function(qualname)
    mod = index.modules[fn.module]
    locals_ = infer_locals(index, mod, fn)
    return resolve_call(index, mod, fn, _first_call(fn), locals_)


class TestResolution:
    SRC = _src(
        """
        class Svc:
            def work(self):
                return self.step()

            def step(self):
                return 1

        def helper():
            return 2

        def top():
            return helper()

        def build():
            return Svc()
        """
    )

    def test_self_method(self):
        index = _index(("pkg/a.py", self.SRC))
        assert _resolve_in(index, "pkg.a.Svc.work").qualname == "pkg.a.Svc.step"

    def test_module_function(self):
        index = _index(("pkg/a.py", self.SRC))
        assert _resolve_in(index, "pkg.a.top").qualname == "pkg.a.helper"

    def test_cross_module_import(self):
        other = _src(
            """
            from pkg.a import helper

            def entry():
                return helper()
            """
        )
        index = _index(("pkg/a.py", self.SRC), ("pkg/b.py", other))
        assert _resolve_in(index, "pkg.b.entry").qualname == "pkg.a.helper"

    def test_called_qualnames_marks_internal_targets(self):
        index = _index(("pkg/a.py", self.SRC))
        called = called_qualnames(index)
        assert "pkg.a.Svc.step" in called
        assert "pkg.a.helper" in called
        # top() has no internal caller: it is an analysis entry point.
        assert "pkg.a.top" not in called


class TestUnknownDispatch:
    def test_untyped_receiver_resolves_to_none(self):
        src = _src(
            """
            def entry(thing):
                return thing.work()
            """
        )
        index = _index(("pkg/d.py", src))
        assert _resolve_in(index, "pkg.d.entry") is None

    def test_dynamic_dispatch_is_not_a_false_positive(self):
        # A guarded attribute touched behind an *unresolvable* callable
        # must not be reported: the analyzer stays silent on unknowns.
        src = _src(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0  # guarded-by: _lock

                def run(self, fn):
                    return fn(self)
            """
        )
        report = analyze_sources([("pkg/e.py", src)])
        assert report.clean

    def test_recursion_terminates_without_findings(self):
        src = _src(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0  # guarded-by: _lock

                def spin(self, k):
                    with self._lock:
                        self.n += 1
                    if k:
                        self.spin(k - 1)
            """
        )
        report = analyze_sources([("pkg/r.py", src)])
        assert report.clean

    def test_mutual_recursion_terminates(self):
        src = _src(
            """
            def ping(k):
                if k:
                    pong(k - 1)

            def pong(k):
                if k:
                    ping(k - 1)
            """
        )
        report = analyze_sources([("pkg/m.py", src)])
        assert report.clean


class TestTypeInference:
    def test_annotated_parameter(self):
        src = _src(
            """
            class Store:
                def get(self):
                    return 1

            def use(store: Store):
                return store.get()
            """
        )
        index = _index(("pkg/t.py", src))
        assert _resolve_in(index, "pkg.t.use").qualname == "pkg.t.Store.get"

    def test_constructor_assignment(self):
        src = _src(
            """
            class Store:
                def get(self):
                    return 1

            def use():
                s = Store()
                return s.get()
            """
        )
        index = _index(("pkg/t.py", src))
        fn = index.lookup_function("pkg.t.use")
        mod = index.modules["pkg.t"]
        assert infer_locals(index, mod, fn)["s"] == "pkg.t.Store"

    def test_pool_constructor_types_as_pool(self):
        src = _src(
            """
            from concurrent.futures import ProcessPoolExecutor

            def use():
                pool = ProcessPoolExecutor(2)
                return pool
            """
        )
        index = _index(("pkg/p.py", src))
        fn = index.lookup_function("pkg.p.use")
        mod = index.modules["pkg.p"]
        assert infer_locals(index, mod, fn)["pool"] == POOL_TYPE

    def test_self_attribute_lock_type(self):
        src = _src(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                def peek(self):
                    return self._lock
            """
        )
        index = _index(("pkg/q.py", src))
        fn = index.lookup_function("pkg.q.S.peek")
        mod = index.modules["pkg.q"]
        locals_ = infer_locals(index, mod, fn)
        expr = ast.parse("self._lock", mode="eval").body
        assert infer_expr_type(index, mod, locals_, expr) == "lock:threading"
