"""Per-rule good/bad fixtures for the REP001–REP009 lint rules.

Each rule gets a bad snippet (must fire, with the right rule id) and a
good snippet (must stay silent), exercised through ``lint_source`` so the
full engine path — parsing, import resolution, allow-lists — is covered.
"""

import textwrap

import pytest

from repro.devtools.lint.engine import lint_source
from repro.devtools.lint.rules import DEFAULT_RULES, rule_table


def run_lint(source, path="src/repro/somewhere/mod.py"):
    violations, n_suppressed = lint_source(
        path, textwrap.dedent(source), DEFAULT_RULES
    )
    return violations, n_suppressed


def rule_ids(violations):
    return [v.rule for v in violations]


class TestRuleTable:
    def test_all_rules_registered(self):
        ids = [r.id for r in DEFAULT_RULES]
        assert ids == sorted(ids)
        assert set(ids) == {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007", "REP008", "REP009",
        }

    def test_rule_table_schema(self):
        for row in rule_table():
            assert set(row) == {"id", "name", "description", "allowed_in"}
            assert row["id"].startswith("REP")
            assert row["description"]


class TestREP001UnseededRandom:
    def test_numpy_global_rng_flagged(self):
        bad = """
        import numpy as np
        x = np.random.rand(3)
        np.random.seed(0)
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP001", "REP001"]

    def test_stdlib_random_flagged(self):
        bad = """
        import random
        v = random.random()
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP001"]

    def test_from_import_of_global_fn_flagged(self):
        bad = """
        from random import shuffle
        from numpy.random import randint
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP001", "REP001"]

    def test_generator_api_allowed(self):
        good = """
        import numpy as np
        rng = np.random.default_rng(7)
        x = rng.normal(size=3)
        g = np.random.Generator(np.random.PCG64(1))
        """
        violations, _ = run_lint(good)
        assert violations == []

    def test_sanctioned_in_rng_module(self):
        bad = "import random\nv = random.random()\n"
        violations, _ = run_lint(bad, path="src/repro/utils/rng.py")
        assert violations == []

    def test_local_variable_named_random_not_flagged(self):
        good = """
        def f(random):
            return random.random()
        """
        violations, _ = run_lint(good)
        assert violations == []


class TestREP002WallClock:
    def test_time_time_flagged(self):
        bad = """
        import time
        t = time.time()
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP002"]

    def test_datetime_now_flagged(self):
        bad = """
        from datetime import datetime
        stamp = datetime.now()
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP002"]

    def test_monotonic_clocks_allowed(self):
        good = """
        import time
        t0 = time.perf_counter()
        t1 = time.monotonic()
        """
        violations, _ = run_lint(good)
        assert violations == []

    def test_sanctioned_in_timing_module(self):
        bad = "import time\nt = time.time()\n"
        violations, _ = run_lint(bad, path="src/repro/utils/timing.py")
        assert violations == []


class TestREP003RawSharedMemory:
    def test_direct_constructor_flagged(self):
        bad = """
        from multiprocessing import shared_memory
        seg = shared_memory.SharedMemory(create=True, size=64)
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP003"]

    def test_fully_qualified_flagged(self):
        bad = """
        import multiprocessing.shared_memory as sm
        seg = sm.SharedMemory(create=True, size=64)
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP003"]

    def test_sanctioned_in_shm_module(self):
        bad = """
        from multiprocessing import shared_memory
        seg = shared_memory.SharedMemory(create=True, size=64)
        """
        violations, _ = run_lint(bad, path="src/repro/parallel/_shm.py")
        assert violations == []

    def test_helper_usage_allowed(self):
        good = """
        from repro.parallel._shm import attach_untracked, create_segment
        seg = create_segment(64)
        view = attach_untracked(seg.name)
        """
        violations, _ = run_lint(good)
        assert violations == []


class TestREP004BareMultiprocessing:
    def test_pool_flagged(self):
        bad = """
        import multiprocessing as mp
        pool = mp.Pool(4)
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP004"]

    def test_context_pool_flagged(self):
        bad = """
        import multiprocessing as mp
        ctx = mp.get_context("fork")
        p = ctx.Process(target=print)
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP004"]

    def test_sanctioned_in_backends(self):
        bad = "import multiprocessing as mp\npool = mp.Pool(2)\n"
        violations, _ = run_lint(
            bad, path="src/repro/parallel/backends.py"
        )
        assert violations == []

    def test_sanctioned_in_hogwild(self):
        bad = "import multiprocessing as mp\np = mp.Process(target=print)\n"
        violations, _ = run_lint(bad, path="src/repro/parallel/hogwild.py")
        assert violations == []


class TestREP005FloatEquality:
    def test_nonzero_literal_comparison_flagged(self):
        bad = """
        def f(x):
            return x == 0.5
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP005"]

    def test_not_equal_flagged(self):
        bad = """
        def f(x):
            return 1.5 != x
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP005"]

    def test_zero_guard_allowed(self):
        # The audited guards (modularity.py m == 0.0, regression.py
        # ss_tot == 0.0) compare sums that are identically zero in the
        # degenerate case — exact comparison is correct there.
        good = """
        def f(m):
            if m == 0.0:
                return 0.0
            return 1.0 / m
        """
        violations, _ = run_lint(good)
        assert violations == []

    def test_literal_vs_literal_allowed(self):
        violations, _ = run_lint("ok = 0.1 == 0.1\n")
        assert violations == []

    def test_nonliteral_comparison_not_flagged(self):
        violations, _ = run_lint("def f(a, b):\n    return a == b\n")
        assert violations == []


class TestREP006MutableDefault:
    def test_list_default_flagged(self):
        violations, _ = run_lint("def f(xs=[]):\n    return xs\n")
        assert rule_ids(violations) == ["REP006"]

    def test_dict_and_set_defaults_flagged(self):
        violations, _ = run_lint("def f(a={}, b=set()):\n    return a, b\n")
        assert rule_ids(violations) == ["REP006", "REP006"]

    def test_kwonly_default_flagged(self):
        violations, _ = run_lint("def f(*, xs=list()):\n    return xs\n")
        assert rule_ids(violations) == ["REP006"]

    def test_defaultdict_flagged(self):
        bad = """
        import collections
        def f(acc=collections.defaultdict(list)):
            return acc
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP006"]

    def test_none_and_tuple_defaults_allowed(self):
        violations, _ = run_lint(
            "def f(a=None, b=(), c=0, d='x'):\n    return a, b, c, d\n"
        )
        assert violations == []


class TestREP007UfuncAtScatter:
    def test_add_at_flagged(self):
        bad = """
        import numpy as np
        np.add.at(grad, idx, contrib)
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP007"]

    def test_other_ufunc_at_flagged(self):
        bad = """
        import numpy as np
        np.subtract.at(acc, idx, vals)
        np.maximum.at(acc, idx, vals)
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP007", "REP007"]

    def test_import_alias_resolved(self):
        bad = """
        import numpy
        numpy.add.at(grad, idx, contrib)
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP007"]

    def test_fancy_indexing_allowed(self):
        good = """
        import numpy as np
        def f(grad, idx, contrib):
            grad[idx] += contrib
        """
        violations, _ = run_lint(good)
        assert violations == []

    def test_non_numpy_at_not_flagged(self):
        good = """
        def f(frame, key):
            return frame.at[key]
        """
        violations, _ = run_lint(good)
        assert violations == []

    def test_sanctioned_modules_allowed(self):
        bad = "import numpy as np\nnp.add.at(acc, idx, w)\n"
        for path in (
            "src/repro/community/modularity.py",
            "src/repro/graphs/graph.py",
            "src/repro/cascades/kempe.py",
            "src/repro/analysis/reconstruction.py",
            "src/repro/embedding/linkmodel.py",
        ):
            violations, _ = run_lint(bad, path=path)
            assert violations == [], path

    def test_hot_kernel_module_not_sanctioned(self):
        bad = "import numpy as np\nnp.add.at(acc, idx, w)\n"
        violations, _ = run_lint(bad, path="src/repro/embedding/compiled.py")
        assert rule_ids(violations) == ["REP007"]

    def test_noqa_suppression_counts(self):
        src = (
            "import numpy as np\n"
            "np.add.at(acc, idx, w)  # repro: noqa[REP007] oracle scatter\n"
        )
        violations, n_suppressed = run_lint(src)
        assert violations == []
        assert n_suppressed == 1


class TestREP008BlockingCallInAsync:
    def test_time_sleep_in_async_flagged(self):
        bad = """
        import time
        async def handler():
            time.sleep(0.1)
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP008"]

    def test_subprocess_and_socket_flagged(self):
        bad = """
        import socket
        import subprocess
        async def handler():
            subprocess.run(["ls"])
            socket.create_connection(("localhost", 80))
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP008", "REP008"]

    def test_non_awaited_wait_flagged(self):
        bad = """
        async def handler(ev):
            ev.wait()
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP008"]

    def test_wait_under_await_expression_allowed(self):
        good = """
        import asyncio
        async def handler(ev):
            await asyncio.wait_for(ev.wait(), timeout=0.5)
            await asyncio.sleep(0.1)
        """
        violations, _ = run_lint(good)
        assert violations == []

    def test_asyncio_wait_not_flagged(self):
        good = """
        import asyncio
        async def handler(tasks):
            done, pending = await asyncio.wait(tasks)
        """
        violations, _ = run_lint(good)
        assert violations == []

    def test_sync_function_not_flagged(self):
        good = """
        import time
        def retry_backoff():
            time.sleep(0.1)
        """
        violations, _ = run_lint(good)
        assert violations == []

    def test_nested_sync_def_is_executor_target(self):
        good = """
        import time
        async def handler(loop):
            def blocking_io():
                time.sleep(1.0)
            await loop.run_in_executor(None, blocking_io)
        """
        violations, _ = run_lint(good)
        assert violations == []

    def test_nested_async_def_still_checked(self):
        bad = """
        import time
        async def outer():
            async def inner():
                time.sleep(0.1)
            await inner()
        """
        violations, _ = run_lint(bad)
        assert rule_ids(violations) == ["REP008"]

    def test_bench_modules_sanctioned(self):
        bad = "import time\nasync def drive():\n    time.sleep(0.5)\n"
        violations, _ = run_lint(bad, path="src/repro/bench/async_driver.py")
        assert violations == []

    def test_noqa_suppression(self):
        src = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.1)  # repro: noqa[REP008] simulated stall\n"
        )
        violations, n_suppressed = run_lint(src)
        assert violations == []
        assert n_suppressed == 1


class TestREP009UnsyncedDurableWrite:
    """REP009 applies *only* in durability-intent modules (the inverse
    of the allow-list grammar): a rename-install there must pair with an
    fsync in the same function."""

    DURABLE = "src/repro/serving/durability.py"

    def test_replace_without_fsync_flagged(self):
        bad = """
        import os
        def install(tmp, final):
            os.replace(tmp, final)
        """
        violations, _ = run_lint(bad, path=self.DURABLE)
        assert rule_ids(violations) == ["REP009"]
        assert "fsync" in violations[0].message

    def test_rename_and_shutil_move_flagged(self):
        bad = """
        import os
        import shutil
        def install(tmp, final):
            os.rename(tmp, final)
            shutil.move(tmp, final)
        """
        violations, _ = run_lint(bad, path="src/repro/parallel/checkpoint.py")
        assert rule_ids(violations) == ["REP009", "REP009"]

    def test_fsync_in_same_function_pairs(self):
        good = """
        import os
        def install(fh, tmp, final):
            fh.flush()
            os.fsync(fh.fileno())
            os.replace(tmp, final)
        """
        violations, _ = run_lint(good, path=self.DURABLE)
        assert violations == []

    def test_fsync_helper_recognized(self):
        good = """
        import os
        def _fsync_dir(path):
            fd = os.open(path, os.O_RDONLY)
            os.fsync(fd)
        def install(tmp, final):
            os.replace(tmp, final)
            _fsync_dir(final)
        """
        violations, _ = run_lint(good, path=self.DURABLE)
        assert violations == []

    def test_closure_scope_does_not_borrow_outer_fsync(self):
        """A rename inside a nested def must find its fsync *there* —
        pairing across scope boundaries proves nothing about ordering."""
        bad = """
        import os
        def outer(fh, tmp, final):
            os.fsync(fh.fileno())
            def deferred():
                os.replace(tmp, final)
            return deferred
        """
        violations, _ = run_lint(bad, path=self.DURABLE)
        assert rule_ids(violations) == ["REP009"]

    def test_module_scope_checked(self):
        bad = "import os\nos.replace('a', 'b')\n"
        violations, _ = run_lint(bad, path=self.DURABLE)
        assert rule_ids(violations) == ["REP009"]

    def test_outside_durable_modules_not_flagged(self):
        src = """
        import os
        def move_artifact(tmp, final):
            os.replace(tmp, final)
        """
        violations, _ = run_lint(src)  # default path: not durability-intent
        assert violations == []
        violations, _ = run_lint(src, path="src/repro/devtools/cleanup.py")
        assert violations == []

    def test_noqa_suppression(self):
        src = (
            "import os\n"
            "def install(tmp, final):\n"
            "    os.replace(tmp, final)  # repro: noqa[REP009] tmpfs only\n"
        )
        violations, n_suppressed = run_lint(src, path=self.DURABLE)
        assert violations == []
        assert n_suppressed == 1

    def test_path_matches_grammar(self):
        from repro.devtools.lint.engine import Rule

        patterns = ("repro/serving/durability.py", "wal/")
        assert Rule.path_matches("src/repro/serving/durability.py", patterns)
        assert Rule.path_matches("repro/serving/durability.py", patterns)
        assert not Rule.path_matches("src/repro/serving/server.py", patterns)
        assert not Rule.path_matches("src/repro/serving/xdurability.py", patterns)
        assert Rule.path_matches("src/wal/writer.py", patterns)
        assert not Rule.path_matches("src/walrus/writer.py", patterns)

    def test_rule_table_shows_inverse_scope(self):
        (row,) = [r for r in rule_table() if r["id"] == "REP009"]
        assert row["allowed_in"].startswith("only in:")
        assert "durability.py" in row["allowed_in"]


class TestShippedTreeIsClean:
    def test_src_has_no_violations(self):
        from pathlib import Path

        from repro.devtools.lint.engine import lint_paths

        src = Path(__file__).resolve().parents[3] / "src"
        report = lint_paths([str(src)], DEFAULT_RULES)
        assert report.clean, "\n".join(v.render() for v in report.violations)
        assert report.files_scanned > 50
