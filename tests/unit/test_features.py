"""Unit tests for early-adopter feature extraction (Eq. 17-19)."""

import numpy as np
import pytest

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel
from repro.prediction.features import (
    EXTENDED_FEATURES,
    PAPER_FEATURES,
    FeatureExtractor,
    IncrementalFeatures,
    extract_features,
)


@pytest.fixture
def model():
    A = np.array(
        [[1.0, 0.0], [0.0, 2.0], [3.0, 4.0], [0.5, 0.5]]
    )
    B = A[::-1].copy()
    return EmbeddingModel(A, B)


class TestPaperFeatures:
    def test_diverA_max_pairwise_distance(self, model):
        early = Cascade([0, 1, 2], [0.0, 0.1, 0.2])
        f = extract_features(model, early, ["diverA"])
        # pairs: |A0-A1|=sqrt(5), |A0-A2|=sqrt(4+16)=sqrt(20), |A1-A2|=sqrt(13)
        assert f[0] == pytest.approx(np.sqrt(20))

    def test_normA(self, model):
        early = Cascade([0, 1], [0.0, 0.1])
        f = extract_features(model, early, ["normA"])
        assert f[0] == pytest.approx(np.sqrt(1 + 4))

    def test_maxA(self, model):
        early = Cascade([0, 2], [0.0, 0.1])
        f = extract_features(model, early, ["maxA"])
        assert f[0] == pytest.approx(4.0)  # sum = (4, 4) -> max 4

    def test_single_adopter_diver_zero(self, model):
        f = extract_features(model, Cascade([2], [0.0]), ["diverA"])
        assert f[0] == 0.0

    def test_empty_prefix_all_zero(self, model):
        f = extract_features(model, Cascade([], []), PAPER_FEATURES)
        assert np.all(f == 0)

    def test_empty_prefix_extended_all_zero(self, model):
        f = extract_features(model, Cascade([], []), EXTENDED_FEATURES)
        assert f.shape == (len(EXTENDED_FEATURES),)
        assert f.dtype == np.float64
        assert np.all(f == 0)

    def test_singleton_prefix_paper_features(self, model):
        """m=1: pairwise diversities are 0 by convention, aggregates are
        the single adopter's own row."""
        f = extract_features(model, Cascade([2], [0.0]), PAPER_FEATURES)
        named = dict(zip(PAPER_FEATURES, f))
        assert named["diverA"] == 0.0
        assert named["normA"] == pytest.approx(np.linalg.norm(model.A[2]))
        assert named["maxA"] == pytest.approx(model.A[2].max())

    def test_singleton_prefix_extended_features(self, model):
        f = extract_features(model, Cascade([2], [0.0]), EXTENDED_FEATURES)
        named = dict(zip(EXTENDED_FEATURES, f))
        # pairwise / structural quantities are identically zero at m=1
        assert named["diverA"] == 0.0
        assert named["diverB"] == 0.0
        assert named["sviral"] == 0.0
        assert named["depth"] == 0.0  # the root sits at depth 0
        assert named["breadth"] == 1.0  # one node at depth 0
        assert named["normB"] == pytest.approx(np.linalg.norm(model.B[2]))
        assert named["maxB"] == pytest.approx(model.B[2].max())

    def test_feature_order_matches_request(self, model):
        early = Cascade([0, 1], [0.0, 0.1])
        f1 = extract_features(model, early, ["normA", "maxA"])
        f2 = extract_features(model, early, ["maxA", "normA"])
        assert f1[0] == f2[1] and f1[1] == f2[0]

    def test_unknown_feature(self, model):
        with pytest.raises(ValueError, match="unknown feature"):
            extract_features(model, Cascade([0], [0.0]), ["bogus"])


class TestExtendedFeatures:
    def test_b_features(self, model):
        early = Cascade([0, 1], [0.0, 0.1])
        f = extract_features(model, early, ["diverB", "normB", "maxB"])
        sumB = model.B[0] + model.B[1]
        assert f[1] == pytest.approx(np.linalg.norm(sumB))
        assert f[2] == pytest.approx(sumB.max())

    def test_n_early(self, model):
        f = extract_features(model, Cascade([0, 1, 3], [0, 1, 2]), ["n_early"])
        assert f[0] == 3.0


class TestFeatureExtractor:
    def test_transform_shape(self, model):
        fx = FeatureExtractor(model)
        X = fx.transform([Cascade([0], [0.0]), Cascade([1, 2], [0.0, 0.1])])
        assert X.shape == (2, 3)

    def test_matches_extract_features(self, model):
        prefixes = [Cascade([0, 2], [0.0, 0.1])]
        fx = FeatureExtractor(model, EXTENDED_FEATURES)
        X = fx.transform(prefixes)
        direct = extract_features(model, prefixes[0], EXTENDED_FEATURES)
        assert np.allclose(X[0], direct)

    def test_invalid_feature_at_construction(self, model):
        with pytest.raises(ValueError):
            FeatureExtractor(model, ["nope"])

    def test_diver_consistency_with_bruteforce(self):
        rng = np.random.default_rng(0)
        m = EmbeddingModel(rng.uniform(0, 1, (8, 4)), rng.uniform(0, 1, (8, 4)))
        early = Cascade(np.arange(8), np.arange(8.0))
        f = extract_features(m, early, ["diverA"])
        brute = max(
            np.linalg.norm(m.A[i] - m.A[j])
            for i in range(8)
            for j in range(8)
        )
        assert f[0] == pytest.approx(brute)


class TestUpdateMany:
    """Batched folding: `update_many` must be bit-identical to `update`."""

    def test_empty_burst(self, model):
        inc = IncrementalFeatures(model, EXTENDED_FEATURES)
        assert inc.update_many([], []) == 0
        assert inc.n_events == 0
        assert np.all(inc.features() == 0)

    def test_single_event_burst(self, model):
        inc = IncrementalFeatures(model, EXTENDED_FEATURES)
        assert inc.update_many([2], [0.5]) == 1
        batch = extract_features(model, Cascade([2], [0.5]), EXTENDED_FEATURES)
        assert np.array_equal(inc.features(), batch)

    def test_burst_bit_identical_to_scalar_updates(self, model):
        one = IncrementalFeatures(model, EXTENDED_FEATURES)
        many = IncrementalFeatures(model, EXTENDED_FEATURES)
        nodes, times = [0, 2, 1, 3], [0.0, 0.1, 0.4, 0.9]
        for n, t in zip(nodes, times):
            one.update(n, t)
        assert many.update_many(nodes, times) == 4
        assert np.array_equal(one.features(), many.features())

    def test_burst_with_duplicates_and_out_of_order_times(self, model):
        inc = IncrementalFeatures(model, EXTENDED_FEATURES)
        inc.update(1, 0.8)
        # duplicate vs prior state, duplicate within burst, time reversal
        assert inc.update_many([0, 1, 2, 0], [0.5, 0.9, 0.1, 0.2]) == 2
        batch = extract_features(
            model, Cascade([1, 0, 2], [0.8, 0.5, 0.1]), EXTENDED_FEATURES
        )
        assert np.array_equal(inc.features(), batch)

    def test_length_mismatch_raises(self, model):
        inc = IncrementalFeatures(model, PAPER_FEATURES)
        with pytest.raises(ValueError, match="same length"):
            inc.update_many([1, 2], [0.0])

    def test_burst_validated_atomically(self, model):
        inc = IncrementalFeatures(model, PAPER_FEATURES)
        inc.update(0, 0.0)
        with pytest.raises(ValueError, match="outside the model universe"):
            inc.update_many([1, 99], [0.1, 0.2])
        with pytest.raises(ValueError, match="finite"):
            inc.update_many([1, 2], [0.1, float("inf")])
        assert inc.n_events == 1  # engine untouched by the failed bursts

    def test_reset_recycles_for_fresh_stream(self, model):
        inc = IncrementalFeatures(model, EXTENDED_FEATURES)
        inc.update_many([0, 1, 2], [0.0, 0.1, 0.2])
        inc.reset()
        assert inc.n_events == 0
        assert np.all(inc.features() == 0)
        inc.update_many([3, 1], [0.5, 0.7])
        batch = extract_features(
            model, Cascade([3, 1], [0.5, 0.7]), EXTENDED_FEATURES
        )
        assert np.array_equal(inc.features(), batch)
