"""Unit tests for EmbeddingModel."""

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel


class TestConstruction:
    def test_shapes(self):
        m = EmbeddingModel.random(5, 3, seed=0)
        assert m.n_nodes == 5 and m.n_topics == 3

    def test_random_in_scale(self):
        m = EmbeddingModel.random(100, 4, scale=0.5, seed=1)
        assert m.A.min() >= 0 and m.A.max() <= 0.5
        assert m.B.min() >= 0 and m.B.max() <= 0.5

    def test_random_deterministic(self):
        a = EmbeddingModel.random(5, 2, seed=3)
        b = EmbeddingModel.random(5, 2, seed=3)
        assert a == b

    def test_zeros(self):
        m = EmbeddingModel.zeros(3, 2)
        assert np.all(m.A == 0) and np.all(m.B == 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingModel(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EmbeddingModel(-np.ones((2, 2)), np.ones((2, 2)))

    def test_matrices_not_copied(self):
        A = np.ones((2, 2))
        B = np.ones((2, 2))
        m = EmbeddingModel(A, B)
        assert m.A is A  # aliasing is intentional (shared memory backend)


class TestHazardSurvival:
    def test_hazard_rate_is_inner_product(self):
        m = EmbeddingModel(np.array([[1.0, 2.0]]), np.array([[3.0, 4.0]]))
        assert m.hazard_rate(0, 0) == pytest.approx(11.0)

    def test_hazard_constant_in_dt(self, small_model):
        assert small_model.hazard(0, 1, 0.1) == small_model.hazard(0, 1, 5.0)

    def test_hazard_negative_dt_rejected(self, small_model):
        with pytest.raises(ValueError):
            small_model.hazard(0, 1, -0.1)

    def test_survival_exponential(self, small_model):
        rate = small_model.hazard_rate(0, 1)
        assert small_model.survival(0, 1, 2.0) == pytest.approx(np.exp(-2 * rate))

    def test_survival_at_zero_is_one(self, small_model):
        assert small_model.survival(2, 3, 0.0) == 1.0

    def test_survival_hazard_consistency(self, small_model):
        """S(dt) = exp(-∫h) for the constant hazard (Eq. 6-7)."""
        dt = 1.7
        u, v = 1, 4
        h = small_model.hazard(u, v, dt)
        assert small_model.survival(u, v, dt) == pytest.approx(np.exp(-h * dt))

    def test_rate_matrix(self, small_model):
        R = small_model.rate_matrix()
        assert R.shape == (6, 6)
        assert R[1, 2] == pytest.approx(small_model.hazard_rate(1, 2))


class TestOperations:
    def test_project_clips(self):
        m = EmbeddingModel(np.ones((2, 2)), np.ones((2, 2)))
        m.A -= 5.0
        m.project()
        assert np.all(m.A == 0.0)

    def test_project_min_value(self):
        m = EmbeddingModel.zeros(2, 2)
        m.project(min_value=0.1)
        assert np.all(m.A == 0.1)

    def test_copy_is_deep(self, small_model):
        c = small_model.copy()
        c.A[0, 0] += 1.0
        assert small_model.A[0, 0] != c.A[0, 0]

    def test_frobenius_distance(self):
        a = EmbeddingModel.zeros(2, 2)
        b = EmbeddingModel(np.ones((2, 2)), np.zeros((2, 2)))
        assert a.frobenius_distance(b) == pytest.approx(2.0)

    def test_frobenius_shape_mismatch(self, small_model):
        with pytest.raises(ValueError):
            small_model.frobenius_distance(EmbeddingModel.zeros(2, 2))
