"""Unit tests for bench table formatting."""

import pytest

from repro.bench.tables import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "metric"], [[1, 2.5], [100, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # all rows equal display width
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456789]])
        assert "0.1235" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out


class TestFormatSeries:
    def test_structure(self):
        out = format_series("speedup", [1, 2], [1.0, 1.9])
        lines = out.splitlines()
        assert lines[0] == "# series: speedup"
        assert lines[1] == "1\t1"
        assert lines[2] == "2\t1.9"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1, 2])
