"""Unit tests for the per-link baseline model."""

import numpy as np
import pytest

from repro.cascades.simulate import simulate_corpus
from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.linkmodel import LinkRateModel
from repro.graphs.graph import Graph


@pytest.fixture
def corpus():
    cs = CascadeSet(4)
    cs.append(Cascade([0, 1], [0.0, 0.5]))
    cs.append(Cascade([0, 1, 2], [0.0, 0.4, 1.0]))
    cs.append(Cascade([2, 3], [0.0, 0.2]))
    return cs


class TestCandidates:
    def test_candidate_pairs(self, corpus):
        m = LinkRateModel(4)
        m.fit(corpus, max_iters=1)
        pairs = set(zip(m.pair_src.tolist(), m.pair_dst.tolist()))
        assert (0, 1) in pairs and (0, 2) in pairs and (1, 2) in pairs
        assert (2, 3) in pairs
        assert (1, 0) not in pairs

    def test_n_parameters(self, corpus):
        m = LinkRateModel(4)
        m.fit(corpus, max_iters=1)
        assert m.n_parameters == 4

    def test_rate_of_unknown_pair_is_zero(self, corpus):
        m = LinkRateModel(4)
        m.fit(corpus, max_iters=1)
        assert m.rate(3, 0) == 0.0


class TestFitting:
    def test_loglik_increases(self, corpus):
        m = LinkRateModel(4)
        history = m.fit(corpus, max_iters=50, seed=0)
        assert history[-1] > history[0]
        assert np.all(np.diff(history) >= -1e-9)

    def test_rates_nonnegative(self, corpus):
        m = LinkRateModel(4)
        m.fit(corpus, max_iters=50, seed=0)
        assert np.all(m.rates >= 0)

    def test_single_link_mle(self):
        """One edge observed repeatedly: MLE rate = 1/mean(delay)."""
        cs = CascadeSet(2)
        delays = [0.5, 1.0, 1.5, 2.0]
        for d in delays:
            cs.append(Cascade([0, 1], [0.0, d]))
        m = LinkRateModel(2)
        m.fit(cs, max_iters=400, learning_rate=0.1, seed=0)
        assert m.rate(0, 1) == pytest.approx(1.0 / np.mean(delays), rel=0.05)

    def test_universe_mismatch(self, corpus):
        with pytest.raises(ValueError):
            LinkRateModel(3).fit(corpus)

    def test_log_likelihood_on_unseen_pairs(self, corpus):
        m = LinkRateModel(4)
        m.fit(corpus, max_iters=5, seed=0)
        unseen = CascadeSet(4, [Cascade([3, 0], [0.0, 1.0])])
        # pair (3,0) untrained: rate 0, contributes nothing
        assert m.log_likelihood(unseen) == 0.0

    def test_recovers_strong_vs_weak_edge(self):
        """Rates should separate a fast edge from a slow one."""
        g = Graph(3, [0, 0], [1, 2], [5.0, 0.5])
        corpus = simulate_corpus(g, 150, window=3.0, seed=1, min_size=2)
        m = LinkRateModel(3)
        m.fit(corpus, max_iters=200, learning_rate=0.05, seed=0)
        assert m.rate(0, 1) > m.rate(0, 2)
