"""Regression tests for the lock-discipline audit (REP101 fixes).

The interprocedural analyzer flagged several read paths that touched
guarded service/registry state without the lock; the fixes routed them
through locked accessors.  Each test here pins one fixed path."""

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel
from repro.serving.registry import ModelRegistry, SnapshotLoadError
from repro.serving.server import build_service
from repro.serving.service import ScoringService


def make_model(seed, n=20, k=3):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (n, k)), rng.uniform(0, 1, (n, k)))


def save_model(tmp_path, seed=0):
    path = tmp_path / "model.npz"
    make_model(seed).save(path)
    return str(path)


@pytest.fixture
def service():
    registry = ModelRegistry()
    registry.publish(make_model(0))
    return ScoringService(registry)


class TestRegistryAccessors:
    def test_n_published_is_a_locked_property(self):
        registry = ModelRegistry()
        assert registry.n_published == 0
        registry.publish(make_model(0))
        assert registry.n_published == 1

    def test_load_failure_count_tracks_failed_publishes(self, tmp_path):
        registry = ModelRegistry()
        assert registry.load_failure_count() == 0
        with pytest.raises(SnapshotLoadError):
            registry.publish_path(tmp_path / "missing.npz")
        assert registry.load_failure_count() == 1

    def test_stats_reports_load_failures_via_accessor(self, service, tmp_path):
        with pytest.raises(SnapshotLoadError):
            service.swap_path(str(tmp_path / "missing.npz"))
        assert service.stats()["load_failures"] == 1


class TestHealthFrontDoor:
    def test_lifecycle_transitions_through_locked_methods(self, service):
        service.begin_recovery()
        assert service.health_snapshot()["state"] == "recovering"
        service.begin_serving()
        snap = service.health_snapshot()
        assert snap["state"] == "serving"
        assert snap["ready"] is True
        service.begin_draining()
        assert service.health_snapshot()["state"] == "draining"

    def test_record_fault_lands_in_snapshot(self, service):
        service.begin_serving()
        service.record_fault("task_dead", "sweeper died")
        snap = service.health_snapshot()
        assert snap["faults_total"] == 1
        assert snap["recent_faults"][0]["kind"] == "task_dead"

    def test_degrade_surfaces_reason(self, service):
        service.begin_serving()
        service.degrade("task:flusher", "restart budget exhausted")
        snap = service.health_snapshot()
        assert snap["state"] == "degraded"
        assert "task:flusher" in snap["degraded_reasons"]

    def test_stats_and_health_agree_on_state(self, service):
        service.begin_serving()
        assert service.stats()["state"] == "serving"


class TestSwapPathHealthBookkeeping:
    def test_failed_swap_counts_publish_failure(self, service, tmp_path):
        with pytest.raises(SnapshotLoadError):
            service.swap_path(str(tmp_path / "nope.npz"))
        snap = service.health_snapshot()
        assert snap["publish_failures"] == 1
        # Scoring state is pinned, not torn down.
        assert service.registry.current().version == 1

    def test_successful_swap_retracts_staleness(self, service, tmp_path):
        with pytest.raises(SnapshotLoadError):
            service.swap_path(str(tmp_path / "nope.npz"))
        snapshot = service.swap_path(save_model(tmp_path, seed=1))
        assert snapshot.version == 2
        snap = service.health_snapshot()
        # The failure count is a cumulative trail; what the success
        # clears is the model-staleness condition.
        assert snap["publish_failures"] == 1
        assert "model_stale" not in snap["degraded_reasons"]


class TestServerRouting:
    def test_build_service_starts_serving(self, tmp_path):
        service = build_service(save_model(tmp_path))
        snap = service.health_snapshot()
        assert snap["state"] == "serving"
        assert snap["healthy"] is True

    def test_ttl_enabled_reflects_store_config(self, tmp_path):
        assert build_service(save_model(tmp_path)).ttl_enabled() is False
        assert (
            build_service(save_model(tmp_path), ttl=60.0).ttl_enabled()
            is True
        )

    def test_journal_property_is_locked_and_none_by_default(self, service):
        assert service.journal is None
