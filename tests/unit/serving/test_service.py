"""Unit tests for the scoring service core and the in-process client.

Includes the concurrency acceptance test: scoring threads race against
a publisher storm and every result must be attributable to exactly one
published model version, with the score matching that version's
predictor output on the cascade's features.
"""

import threading

import numpy as np
import pytest

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel
from repro.prediction.features import PAPER_FEATURES, extract_features
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.batching import BatchPolicy, QueueFullError
from repro.serving.client import ScoringClient
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService
from repro.serving.tracker import StoreConfig


def make_model(seed, n=30, k=3):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (n, k)), rng.uniform(0, 1, (n, k)))


def make_predictor(seed=0, d=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, d))
    sizes = np.where(X[:, 0] + 0.3 * rng.normal(size=60) > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=seed).fit(ds)


@pytest.fixture
def service():
    reg = ModelRegistry()
    reg.publish(make_model(0), predictor=make_predictor())
    return ScoringService(reg, policy=BatchPolicy(max_batch=8, max_delay=0.001))


class TestIngestScore:
    def test_score_matches_direct_prediction(self, service):
        events = [(3, 0.0), (7, 0.2), (12, 0.5)]
        for node, t in events:
            service.ingest("c", node, t)
        result = service.score("c")
        assert result.ok and result.n_early == 3
        snap = service.registry.current()
        X = extract_features(
            snap.model,
            Cascade([n for n, _ in events], [t for _, t in events]),
            PAPER_FEATURES,
        )[None, :]
        expected = float(snap.predictor.decision_function(X)[0])
        assert result.score == expected
        assert result.label == (1 if expected >= 0 else -1)

    def test_unknown_cascade(self, service):
        result = service.score("never-seen")
        assert result.status == "unknown_cascade"
        assert result.score is None

    def test_include_features(self, service):
        service.ingest("c", 3, 0.0)
        result = service.score("c", include_features=True)
        assert result.features is not None
        assert result.features.shape == (len(PAPER_FEATURES),)

    def test_no_predictor_returns_features_only(self):
        reg = ModelRegistry()
        reg.publish(make_model(0))  # no predictor
        svc = ScoringService(reg)
        svc.ingest("c", 1, 0.0)
        result = svc.score("c")
        assert result.ok and result.score is None and result.label is None

    def test_latency_accounting(self, service):
        service.ingest("c", 3, 0.0)
        result = service.score("c")
        lat = result.latency
        assert lat is not None
        assert lat.queued_s >= 0 and lat.compute_s >= 0
        assert lat.batch_size == 1
        assert lat.total_s == pytest.approx(lat.queued_s + lat.compute_s)

    def test_flush_batches_requests(self, service):
        for cid in ("a", "b", "c"):
            service.ingest(cid, hash(cid) % 30, 0.0)
        requests = [service.submit(cid) for cid in ("a", "b", "c")]
        results = service.flush()
        assert len(results) == 3
        assert all(r.latency.batch_size == 3 for r in results)
        assert [r.request_id for r in results] == [r.request_id for r in requests]

    def test_flush_empty_queue(self, service):
        assert service.flush() == []

    def test_backpressure_reject_propagates(self):
        reg = ModelRegistry()
        reg.publish(make_model(0))
        svc = ScoringService(
            reg, policy=BatchPolicy(max_batch=1, max_pending=1, overflow="reject")
        )
        svc.ingest("c", 1, 0.0)
        svc.submit("c")
        with pytest.raises(QueueFullError):
            svc.submit("c")

    def test_stats_shape(self, service):
        service.ingest("c", 3, 0.0)
        service.score("c")
        stats = service.stats()
        assert stats["model_version"] == 1
        assert stats["tracked_cascades"] == 1
        assert stats["ingested"] == 1
        assert stats["scored"] == 1
        assert stats["batches"] >= 1

    def test_sweep_via_service(self):
        reg = ModelRegistry()
        reg.publish(make_model(0))
        clock = [0.0]
        svc = ScoringService(
            reg, store_config=StoreConfig(ttl=5.0), clock=lambda: clock[0]
        )
        svc.ingest("c", 1, 0.0)
        clock[0] = 10.0
        assert svc.sweep() == 1
        assert svc.score("c").status == "unknown_cascade"

    def test_swap_path_keeps_predictor(self, service, tmp_path):
        """Artifacts carry embeddings only; a swap must not silently
        stop scoring by dropping the published predictor."""
        service.ingest("c", 3, 0.0)
        assert service.score("c").score is not None
        path = tmp_path / "next.npz"
        make_model(1).save(path)
        snap = service.swap_path(str(path))
        assert snap.version == 2 and snap.predictor is not None
        result = service.score("c")
        assert result.model_version == 2 and result.score is not None


class TestIngestMany:
    def test_burst_matches_scalar_ingest(self, service):
        events = [("a", 3, 0.0), ("b", 7, 0.1), ("a", 12, 0.2), ("a", 3, 0.3)]
        assert service.ingest_many(events) == 3  # one duplicate
        assert service.stats()["ingested"] == 3
        twin = ScoringService(service.registry)
        for cid, node, t in events:
            twin.ingest(cid, node, t)
        snap = service.registry.current()
        for cid in ("a", "b"):
            assert np.array_equal(
                service.store.features(cid, snap), twin.store.features(cid, snap)
            )

    def test_empty_burst(self, service):
        assert service.ingest_many([]) == 0
        assert service.stats()["ingested"] == 0

    def test_burst_then_score(self, service):
        events = [("c", 3, 0.0), ("c", 7, 0.2), ("c", 12, 0.5)]
        service.ingest_many(events)
        result = service.score("c")
        assert result.ok and result.n_early == 3
        snap = service.registry.current()
        X = extract_features(
            snap.model,
            Cascade([n for _, n, _ in events], [t for _, _, t in events]),
            PAPER_FEATURES,
        )[None, :]
        assert result.score == float(snap.predictor.decision_function(X)[0])


class TestScoreFlushBitIdentity:
    def test_single_score_bit_identical_to_batched_flush(self, service):
        """The one-shot path and the micro-batched path share the same
        workspace/gather/predict code — same score, bit for bit."""
        for i, cid in enumerate(("a", "b", "c", "d")):
            service.ingest_many([(cid, (3 * i + j) % 30, 0.1 * j) for j in range(4)])
        singles = {cid: service.score(cid).score for cid in ("a", "b", "c", "d")}
        service.submit_many(["a", "b", "c", "d"])
        batched = service.flush()
        assert [r.latency.batch_size for r in batched] == [4] * 4
        for r in batched:
            assert r.score == singles[r.cascade_id]

    def test_include_features_copy_is_stable(self, service):
        """Features handed out of a flush must be detached from the
        workspace: a later flush cannot mutate them."""
        service.ingest("a", 3, 0.0)
        service.ingest("b", 7, 0.5)
        r1 = service.score("a", include_features=True)
        kept = r1.features.copy()
        service.score("b", include_features=True)  # reuses the workspace
        assert np.array_equal(r1.features, kept)
        with pytest.raises(ValueError):
            r1.features[0] = 99.0


class TestWorkspaceReuse:
    def test_flush_reuses_pooled_buffers(self, service):
        for i, cid in enumerate(("a", "b", "c")):
            service.ingest(cid, i, 0.0)
        service.submit_many(["a", "b", "c"])
        service.flush()
        before = {k: id(v) for k, v in service._ws._mats.items()}
        service.submit_many(["a", "b", "c"])
        service.flush()
        after = {k: id(v) for k, v in service._ws._mats.items()}
        assert after == before  # same pooled arrays, no reallocation


class TestSwapDuringScoring:
    def test_swap_storm_with_concurrent_scoring(self):
        """Every score produced while publishers storm the registry must
        be exactly the output of ONE published version's predictor on
        the cascade's features — a torn read (model from one version,
        predictor from another, or half-swapped matrices) cannot
        reproduce any single version's expected value."""
        versions = [
            (make_model(seed), make_predictor(seed)) for seed in range(4)
        ]
        events = [(3, 0.0), (7, 0.2), (12, 0.5), (1, 0.9)]
        cascade = Cascade([n for n, _ in events], [t for _, t in events])
        # version index -> the one legal score under that publish
        expected = {}
        for i, (model, pred) in enumerate(versions):
            X = extract_features(model, cascade, PAPER_FEATURES)[None, :]
            expected[i] = float(pred.decision_function(X)[0])

        reg = ModelRegistry()
        reg.publish(versions[0][0], predictor=versions[0][1])
        svc = ScoringService(reg, policy=BatchPolicy(max_batch=4, max_delay=0.0))
        for node, t in events:
            svc.ingest("c", node, t)

        stop = threading.Event()
        failures = []

        def scorer():
            while not stop.is_set():
                result = svc.score("c")
                if not result.ok:
                    failures.append(result.status)
                    return
                idx = (result.model_version - 1) % len(versions)
                if result.score != expected[idx]:
                    failures.append(
                        f"v{result.model_version}: {result.score} != {expected[idx]}"
                    )
                    return

        def publisher():
            for i in range(1, 40):
                model, pred = versions[i % len(versions)]
                reg.publish(model, predictor=pred)

        scorers = [threading.Thread(target=scorer) for _ in range(4)]
        pub = threading.Thread(target=publisher)
        for t in scorers:
            t.start()
        pub.start()
        pub.join()
        stop.set()
        for t in scorers:
            t.join()
        assert failures == []
        assert reg.n_published == 40


class TestScoringClient:
    def test_client_roundtrip(self, service):
        client = ScoringClient(service)
        n_new = client.ingest_many([("a", 3, 0.0), ("a", 7, 0.2), ("a", 3, 0.5)])
        assert n_new == 2  # duplicate adopter dropped
        result = client.score("a")
        assert result.ok and result.n_early == 2

    def test_score_many_batches(self, service):
        client = ScoringClient(service)
        for i, cid in enumerate(("a", "b", "c", "d")):
            client.ingest(cid, i, 0.0)
        results = client.score_many(["a", "b", "c", "d", "ghost"])
        assert [r.status for r in results] == ["ok"] * 4 + ["unknown_cascade"]
        assert all(r.latency.batch_size == 5 for r in results)

    def test_stats_passthrough(self, service):
        client = ScoringClient(service)
        assert client.stats()["model_version"] == 1
