"""Unit tests for the sharded multi-process serving tier.

The load-bearing contract: a :class:`ShardedScoringService` fed a
stream of events is **bit-identical** to one in-process
:class:`ScoringService` fed the same stream — scores, labels, early
counts, features, duplicate filtering — including after a shard is
SIGKILLed mid-session and the watchdog restarts it from its journal.
Model hot-swap must land the same version on every shard (one shared
segment, N attaches), and backpressure must be per hash range.

The SIGKILL crash tests double as the sharding leg of ``make chaos``.
"""

import os
import signal

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.batching import BatchPolicy, QueueFullError
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService
from repro.serving.sharding import (
    ShardedScoringService,
    ShardStartupError,
    shard_of,
)
from repro.serving.tracker import StoreConfig


def make_model(seed, n=30, k=3):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (n, k)), rng.uniform(0, 1, (n, k)))


def make_predictor(seed=0, d=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, d))
    sizes = np.where(X[:, 0] + 0.3 * rng.normal(size=60) > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=seed).fit(ds)


def make_stream(seed, n_cascades=12, n_events=60, n_nodes=30):
    """Arrival-ordered events interleaved across cascades (with dups)."""
    rng = np.random.default_rng(seed)
    cids = [f"c{i:03d}" for i in range(n_cascades)]
    events = []
    for j in range(n_events):
        cid = cids[int(rng.integers(n_cascades))]
        node = int(rng.integers(n_nodes))
        events.append((cid, node, float(j) * 0.01))
    return cids, events


def make_sharded(n_shards=3, seed=0, journal_dir=None, **kw):
    svc = ShardedScoringService(n_shards=n_shards, journal_dir=journal_dir, **kw)
    svc.publish(make_model(seed), predictor=make_predictor(seed))
    svc.begin_serving()
    return svc


def make_reference(seed=0):
    reg = ModelRegistry()
    reg.publish(make_model(seed), predictor=make_predictor(seed))
    return ScoringService(reg, policy=BatchPolicy(max_batch=64, max_delay=0.0))


def assert_columns_equal(got, want):
    assert np.array_equal(got.ok, want.ok)
    assert np.array_equal(got.n_early, want.n_early)
    for field in ("scores", "labels", "features"):
        g, w = getattr(got, field), getattr(want, field)
        if w is None:
            assert g is None
        else:
            assert g is not None and np.array_equal(g, w, equal_nan=True)


class TestShardOf:
    def test_pinned_golden_values(self):
        # crc32 routing must stay process- and version-stable: a changed
        # constant here silently reshards every journal on disk.
        assert shard_of("c000", 4) == 2
        assert shard_of("c001", 4) == 0
        assert shard_of("", 4) == 0

    def test_range_and_coverage(self):
        hits = {shard_of(f"id-{i}", 4) for i in range(200)}
        assert hits == {0, 1, 2, 3}

    def test_single_shard_is_always_zero(self):
        assert all(shard_of(f"id-{i}", 1) == 0 for i in range(50))


class TestConstruction:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ShardedScoringService(n_shards=0)

    def test_recover_without_journal_fails_cleanly(self, tmp_path):
        with pytest.raises(ShardStartupError) as exc_info:
            ShardedScoringService(
                n_shards=2, journal_dir=tmp_path / "nothing", recover=True
            )
        assert "shard 0" in str(exc_info.value)


class TestBitIdentity:
    def test_score_columns_matches_single_process(self):
        cids, events = make_stream(seed=1)
        sharded = make_sharded(n_shards=3, seed=1)
        try:
            reference = make_reference(seed=1)
            assert sharded.ingest_many(events) == reference.ingest_many(events)
            probe = cids + ["never-seen"]
            got = sharded.score_columns(probe, include_features=True)
            want = reference.score_columns(probe, include_features=True)
            assert_columns_equal(got, want)
            assert got.model_version == want.model_version == 1
        finally:
            sharded.close()

    def test_flush_path_matches_single_process(self):
        cids, events = make_stream(seed=2)
        sharded = make_sharded(n_shards=3, seed=2)
        try:
            reference = make_reference(seed=2)
            sharded.ingest_many(events)
            reference.ingest_many(events)
            sharded.submit_many(cids)
            reference.submit_many(cids)
            got = {r.cascade_id: r for r in sharded.flush()}
            want = {r.cascade_id: r for r in reference.flush()}
            assert set(got) == set(want) == set(cids)
            for cid in cids:
                g, w = got[cid], want[cid]
                assert (g.status, g.score, g.label, g.n_early) == (
                    w.status,
                    w.score,
                    w.label,
                    w.n_early,
                )
        finally:
            sharded.close()

    def test_duplicate_filtering_matches(self):
        sharded = make_sharded(n_shards=2)
        try:
            reference = make_reference()
            events = [("c", 3, 0.0), ("c", 3, 0.1), ("d", 3, 0.2), ("c", 4, 0.3)]
            assert sharded.ingest_many(events) == reference.ingest_many(events)
            assert (
                sharded.stats()["duplicates"]
                == reference.stats()["duplicates"]
                == 1
            )
        finally:
            sharded.close()

    def test_eviction_parity_per_shard(self):
        # A 3-cascade-capacity shard evicts exactly like a 3-capacity
        # single-process store fed only that shard's substream.
        n_shards, capacity = 2, 3
        cids, events = make_stream(seed=3, n_cascades=10, n_events=80)
        sharded = make_sharded(n_shards=n_shards, capacity=capacity)
        try:
            reg = ModelRegistry()
            reg.publish(make_model(0), predictor=make_predictor(0))
            reference = ScoringService(
                reg, store_config=StoreConfig(capacity=capacity)
            )
            substream = [e for e in events if shard_of(e[0], n_shards) == 0]
            sub_cids = [c for c in cids if shard_of(c, n_shards) == 0]
            assert substream, "stream must touch shard 0"
            sharded.ingest_many(events)
            reference.ingest_many(substream)
            got = sharded.score_columns(sub_cids, include_features=True)
            want = reference.score_columns(sub_cids, include_features=True)
            assert_columns_equal(got, want)
            assert (
                sharded.stats()["shards"][0]["evictions"]
                == reference.stats()["evictions"]
            )
        finally:
            sharded.close()


class TestPublish:
    def test_swap_storm_converges_everywhere(self):
        sharded = make_sharded(n_shards=3, seed=0)
        try:
            for seed in range(1, 6):
                sharded.publish(make_model(seed), predictor=make_predictor(seed))
            stats = sharded.stats()
            assert stats["model_version"] == 6
            assert all(s["model_version"] == 6 for s in stats["shards"])
            # every shard serves the final model, bit-identically
            reference = make_reference(seed=5)
            # advance the reference registry to the same version number
            for _ in range(5):
                reference.registry.publish(
                    make_model(5), predictor=make_predictor(5)
                )
            events = make_stream(seed=4)[1]
            sharded.ingest_many(events)
            reference.ingest_many(events)
            cids = sorted({e[0] for e in events})
            assert_columns_equal(
                sharded.score_columns(cids), reference.score_columns(cids)
            )
        finally:
            sharded.close()

    def test_bad_swap_artifact_pins_last_good_model(self, tmp_path):
        from repro.serving.registry import SnapshotLoadError

        sharded = make_sharded(n_shards=2)
        try:
            bad = tmp_path / "bad.npz"
            bad.write_bytes(b"this is not an npz archive")
            with pytest.raises(SnapshotLoadError):
                sharded.swap_path(bad)
            stats = sharded.stats()
            assert stats["model_version"] == 1
            assert stats["load_failures"] == 1
            sharded.ingest("c", 3, 0.0)
            assert sharded.score("c").ok
        finally:
            sharded.close()


class TestBackpressure:
    def test_rejection_is_per_shard(self):
        policy = BatchPolicy(max_batch=4, max_delay=60.0, max_pending=1024)
        sharded = make_sharded(n_shards=2, policy=policy, shard_backlog=4)
        try:
            on_zero = [f"z{i}" for i in range(200) if shard_of(f"z{i}", 2) == 0]
            on_one = [f"o{i}" for i in range(200) if shard_of(f"o{i}", 2) == 1]
            for cid in on_zero[:4]:
                sharded.submit(cid)
            with pytest.raises(QueueFullError):
                sharded.submit(on_zero[4])
            # the sibling's hash range is unaffected
            sharded.submit(on_one[0])
            assert sharded.stats()["rejected"] == 1
            assert sharded.pending() == 5
        finally:
            sharded.close()

    def test_backlog_below_batch_rejected_by_policy(self):
        with pytest.raises(ValueError):
            ShardedScoringService(
                n_shards=2,
                policy=BatchPolicy(max_batch=8, max_pending=1024),
                shard_backlog=4,
            )


class TestLifecycle:
    def test_health_aggregates_all_shards(self):
        sharded = make_sharded(n_shards=3)
        try:
            snap = sharded.health_snapshot()
            assert snap["ready"] and snap["healthy"]
            assert snap["state"] == "serving"
            assert snap["n_shards"] == 3
            assert len(snap["shards"]) == 3
            assert all(s["ready"] for s in snap["shards"])
        finally:
            sharded.close()

    def test_stats_aggregates_across_shards(self):
        cids, events = make_stream(seed=5)
        sharded = make_sharded(n_shards=3)
        try:
            applied = sharded.ingest_many(events)
            sharded.score_columns(cids)
            stats = sharded.stats()
            assert stats["n_shards"] == 3 and stats["shard_restarts"] == 0
            assert stats["ingested"] == applied
            assert stats["tracked_cascades"] == len(cids)
            assert sum(
                s["tracked_cascades"] for s in stats["shards"]
            ) == len(cids)
            assert stats["scored"] == len(cids)
        finally:
            sharded.close()

    def test_drain_flushes_then_stops(self):
        sharded = make_sharded(n_shards=2)
        try:
            sharded.ingest_many([("a", 3, 0.0), ("b", 5, 0.1)])
            sharded.submit_many(["a", "b"])
            assert sharded.drain() == 2
            assert sharded.health_snapshot()["state"] == "stopped"
        finally:
            sharded.close()


class TestCrashRecovery:
    """The chaos leg: SIGKILL a shard mid-session, expect bit-identity."""

    def _kill_shard(self, sharded, shard_id):
        process = sharded._handles[shard_id].process
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10)

    def test_sigkill_mid_burst_recovers_bit_identical(self, tmp_path):
        cids, events = make_stream(seed=6)
        sharded = make_sharded(n_shards=3, seed=6, journal_dir=tmp_path)
        try:
            reference = make_reference(seed=6)
            half = len(events) // 2
            sharded.ingest_many(events[:half])
            reference.ingest_many(events[:half])
            self._kill_shard(sharded, 1)
            # the next fan-out touching shard 1 triggers the watchdog:
            # restart, journal replay, transparent retry of the burst
            assert sharded.ingest_many(events[half:]) == reference.ingest_many(
                events[half:]
            )
            assert_columns_equal(
                sharded.score_columns(cids, include_features=True),
                reference.score_columns(cids, include_features=True),
            )
            assert sharded.stats()["shard_restarts"] == 1
            snap = sharded.health_snapshot()
            assert snap["ready"] and snap["state"] == "serving"
        finally:
            sharded.close()

    def test_swap_storm_survives_crash(self, tmp_path):
        sharded = make_sharded(n_shards=3, seed=0, journal_dir=tmp_path)
        try:
            sharded.ingest("c", 3, 0.0)
            self._kill_shard(sharded, 0)
            for seed in range(1, 4):
                sharded.publish(make_model(seed), predictor=make_predictor(seed))
            stats = sharded.stats()
            # version counters may skew on the restarted shard (journal
            # replay + re-broadcast both bump it); what must converge is
            # the model itself — one fingerprint everywhere.
            assert stats["shard_restarts"] == 1
            assert len({h.fingerprint for h in sharded._handles}) == 1
            sharded.ingest("d", 5, 0.1)
            reference = make_reference(seed=3)
            reference.ingest_many([("c", 3, 0.0), ("d", 5, 0.1)])
            got = sharded.score_columns(["c", "d"])
            want = reference.score_columns(["c", "d"])
            assert np.array_equal(got.scores, want.scores)
        finally:
            sharded.close()

    def test_unjournaled_shard_restarts_empty(self):
        # without a journal the watchdog still restarts the worker; its
        # hash range simply forgets (and reports unknown) — no hang.
        sharded = make_sharded(n_shards=2, seed=0)
        try:
            target = next(
                f"c{i}" for i in range(100) if shard_of(f"c{i}", 2) == 1
            )
            sharded.ingest(target, 3, 0.0)
            self._kill_shard(sharded, 1)
            result = sharded.score(target)
            assert result.status == "unknown_cascade"
            assert sharded.stats()["shard_restarts"] == 1
        finally:
            sharded.close()
