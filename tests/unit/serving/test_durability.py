"""Unit tests for the write-ahead event journal and crash recovery.

The acceptance gate is bit-identity: a service recovered from its
journal must expose the same tracked cascades, in the same LRU order,
with the same observed event logs, feature vectors, and scores as an
uninterrupted run over the journaled record stream.  The
hypothesis-driven crash matrix lives in
``tests/property/test_prop_durability.py``; these tests pin the
deterministic mechanics (framing, rotation, compaction, torn tails,
fsync policy, the chaos harness itself).
"""

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.batching import BatchPolicy
from repro.serving.durability import (
    EventJournal,
    EventsRecord,
    InjectedCrash,
    JournalConfig,
    JournalCorruptError,
    JournalError,
    SwapRecord,
    _ChaosPlan,
    _list_segments,
    _list_snapshots,
    iter_journal_events,
    recover_service,
    scan_journal,
)
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService
from repro.serving.tracker import StoreConfig


def make_model(seed, n=30, k=3):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (n, k)), rng.uniform(0, 1, (n, k)))


def make_predictor(seed=0, d=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, d))
    sizes = np.where(X[:, 0] + 0.3 * rng.normal(size=60) > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=seed).fit(ds)


def make_service(store_config=None):
    return ScoringService(
        ModelRegistry(),
        store_config=store_config,
        policy=BatchPolicy(max_batch=8, max_delay=0.001),
    )


def journaled_service(tmp_path, chaos=None, store_config=None, **cfg):
    """A freshly published service writing to ``tmp_path/wal``."""
    config = JournalConfig(directory=tmp_path / "wal", **cfg)
    service = make_service(store_config)
    service.attach_journal(EventJournal(config, _chaos=chaos))
    service.publish(make_model(0), predictor=make_predictor(), source="seed")
    service.health.begin_serving()
    return service, config


def sample_events(n=40, n_cascades=6, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (f"c{rng.integers(n_cascades)}", int(rng.integers(30)), float(i) * 0.1)
        for i, _ in enumerate(range(n))
    ]


def assert_bit_identical(recovered, reference):
    """Same cascades, same LRU order, same logs, same features + scores."""
    r_cids, r_off, r_nodes, r_times = recovered.store.export_state()
    e_cids, e_off, e_nodes, e_times = reference.store.export_state()
    assert r_cids == e_cids
    assert np.array_equal(r_off, e_off)
    assert np.array_equal(r_nodes, e_nodes)
    assert np.array_equal(r_times, e_times)
    for cid in e_cids:
        got = recovered.score(cid, include_features=True)
        want = reference.score(cid, include_features=True)
        assert got.status == want.status == "ok"
        assert got.score == want.score
        assert got.label == want.label
        assert np.array_equal(got.features, want.features)


class TestJournalConfig:
    def test_defaults_valid(self, tmp_path):
        cfg = JournalConfig(directory=tmp_path)
        assert cfg.fsync == "interval"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fsync": "sometimes"},
            {"fsync_interval": 0.0},
            {"fsync_interval": -1.0},
            {"rotate_bytes": 100},
            {"snapshot_bytes": 100},
        ],
    )
    def test_rejects_bad_policy(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            JournalConfig(directory=tmp_path, **kwargs)

    def test_chaos_plan_validation(self):
        with pytest.raises(ValueError, match="chaos action"):
            _ChaosPlan(at_append=0, action="explode")
        with pytest.raises(ValueError, match="chaos point"):
            _ChaosPlan(at_append=0, action="kill", point="sideways")
        with pytest.raises(ValueError, match="torn_bytes"):
            _ChaosPlan(at_append=0, action="torn", torn_bytes=0)


class TestRoundTrip:
    def test_recovery_is_bit_identical(self, tmp_path):
        service, config = journaled_service(tmp_path)
        events = sample_events()
        service.ingest_many(events[:15])
        service.publish(make_model(1), predictor=make_predictor(1), source="refit")
        for cid, node, t in events[15:25]:
            service.ingest(cid, node, t)
        service.ingest_columns(
            [e[0] for e in events[25:]],
            np.asarray([e[1] for e in events[25:]], dtype=np.int64),
            np.asarray([e[2] for e in events[25:]], dtype=np.float64),
        )
        service.seal_journal()

        reference = make_service()
        reference.registry.publish(
            make_model(0), predictor=make_predictor(), source="seed"
        )
        reference.ingest_many(events[:15])
        reference.registry.publish(
            make_model(1), predictor=make_predictor(1), source="refit"
        )
        reference.ingest_many(events[15:])

        recovered, report = recover_service(config)
        assert_bit_identical(recovered, reference)
        assert report.swaps_replayed == 2
        assert report.events_replayed == len(events)
        assert not report.snapshot_loaded
        assert not report.torn_tail_repaired
        assert recovered.health.phase == "serving"
        assert recovered.registry.current().source == "refit"

    def test_duplicate_bursts_replay_lru_touches(self, tmp_path):
        """A fully-duplicate burst applies zero events but still re-ranks
        LRU order — it must be journaled and replayed."""
        service, config = journaled_service(
            tmp_path, store_config=StoreConfig(capacity=2)
        )
        service.ingest("a", 1, 0.1)
        service.ingest("b", 2, 0.2)
        service.ingest("a", 1, 0.1)  # duplicate: applies 0, touches "a"
        service.ingest("c", 3, 0.3)  # capacity 2: evicts "b", not "a"
        service.seal_journal()
        recovered, _ = recover_service(config, store_config=StoreConfig(capacity=2))
        cids, _, _, _ = recovered.store.export_state()
        assert cids == ["a", "c"]

    def test_recovery_without_model_refuses(self, tmp_path):
        config = JournalConfig(directory=tmp_path / "wal")
        journal = EventJournal(config)
        journal.append_events(["c0"], np.asarray([1]), np.asarray([0.1]))
        journal.seal()
        with pytest.raises(JournalError, match="no model"):
            recover_service(config)

    def test_sealed_journal_refuses_appends(self, tmp_path):
        journal = EventJournal(JournalConfig(directory=tmp_path / "wal"))
        journal.seal()
        assert journal.closed
        journal.seal()  # idempotent
        with pytest.raises(JournalError, match="sealed"):
            journal.append_events(["c"], np.asarray([1]), np.asarray([0.1]))

    def test_iter_journal_events_flattens(self, tmp_path):
        service, config = journaled_service(tmp_path)
        events = sample_events(n=10)
        service.ingest_many(events)
        service.seal_journal()
        assert list(iter_journal_events(config.directory)) == events


class TestSegments:
    def test_writer_never_reuses_segments(self, tmp_path):
        config = JournalConfig(directory=tmp_path / "wal")
        first = EventJournal(config)
        assert first.seq == 1
        first.append_events(["c"], np.asarray([1]), np.asarray([0.1]))
        first.seal()
        second = EventJournal(config)
        assert second.seq == 2  # crashed writer's tail left untouched
        second.seal()
        assert [p.name for p in _list_segments(config.directory)] == [
            "wal-00000001.log",
            "wal-00000002.log",
        ]

    def test_rotation_replays_across_segments(self, tmp_path):
        service, config = journaled_service(tmp_path, rotate_bytes=4096)
        events = sample_events(n=60)
        for cid, node, t in events:
            service.ingest(cid, node, t)
        service.seal_journal()
        assert service.journal.stats.rotations >= 1
        assert len(_list_segments(config.directory)) >= 2

        reference = make_service()
        reference.registry.publish(
            make_model(0), predictor=make_predictor(), source="seed"
        )
        reference.ingest_many(events)
        recovered, report = recover_service(config)
        assert report.segments_replayed >= 2
        assert_bit_identical(recovered, reference)

    def test_interior_corruption_refuses_replay(self, tmp_path):
        service, config = journaled_service(tmp_path, rotate_bytes=4096)
        for cid, node, t in sample_events(n=60):
            service.ingest(cid, node, t)
        service.seal_journal()
        segments = _list_segments(config.directory)
        assert len(segments) >= 2
        blob = bytearray(segments[0].read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # corrupt a non-final segment
        segments[0].write_bytes(bytes(blob))
        with pytest.raises(JournalCorruptError, match="non-final"):
            scan_journal(config.directory)

    def test_truncated_final_record_is_tolerated(self, tmp_path):
        service, config = journaled_service(tmp_path)
        for cid, node, t in sample_events(n=10):
            service.ingest(cid, node, t)
        service.seal_journal()
        seg = _list_segments(config.directory)[-1]
        blob = seg.read_bytes()
        seg.write_bytes(blob[:-5])  # tear the last record mid-payload
        scan = scan_journal(config.directory)
        assert scan.torn is not None
        # 1 swap + 10 events written; the torn final event is dropped
        assert len(scan.records) == 10


class TestCompaction:
    def test_snapshot_prunes_and_recovers(self, tmp_path):
        service, config = journaled_service(tmp_path)
        events = sample_events(n=30)
        service.ingest_many(events[:20])
        assert service.compact()
        assert len(_list_snapshots(config.directory)) == 1
        # segments strictly before the snapshot's seq are gone
        snap_seq = service.journal.seq
        assert all(
            int(p.stem.split("-")[1]) >= snap_seq - 1
            for p in _list_segments(config.directory)
        )
        service.ingest_many(events[20:])  # journal tail past the snapshot
        service.seal_journal()

        reference = make_service()
        reference.registry.publish(
            make_model(0), predictor=make_predictor(), source="seed"
        )
        reference.ingest_many(events)
        recovered, report = recover_service(config, compact=False)
        assert report.snapshot_loaded
        # the snapshot holds the *observed* logs (duplicates deduped);
        # the tail record keeps its raw journaled row count
        assert 0 < report.snapshot_events <= 20
        assert report.events_replayed == 10
        assert_bit_identical(recovered, reference)

    def test_recover_compacts_by_default(self, tmp_path):
        service, config = journaled_service(tmp_path)
        service.ingest_many(sample_events(n=10))
        service.seal_journal()
        recovered, first = recover_service(config)
        recovered.seal_journal()
        assert not first.snapshot_loaded
        again, second = recover_service(config, compact=False)
        assert second.snapshot_loaded  # the first recovery left a snapshot
        assert second.records_replayed == 0
        assert_bit_identical(again, recovered)

    def test_corrupt_snapshot_falls_back(self, tmp_path):
        service, config = journaled_service(tmp_path)
        events = sample_events(n=12)
        service.ingest_many(events)
        assert service.compact()
        service.seal_journal()
        (snap,) = _list_snapshots(config.directory)
        snap.write_bytes(b"not a zip")
        # the snapshot is unreadable but all segments before it were
        # pruned: nothing to fall back to except... the journal refuses
        # only if no model survives.  Here the post-snapshot segment is
        # empty, so recovery must fail loudly rather than serve nothing.
        with pytest.raises(JournalError, match="no model"):
            recover_service(config)

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        """A half-written newer snapshot (crash mid-compaction) must not
        mask the older, loadable one."""
        service, config = journaled_service(tmp_path)
        events = sample_events(n=12)
        service.ingest_many(events[:6])
        assert service.compact()
        (good,) = _list_snapshots(config.directory)
        good_seq = int(good.stem.split("-")[1])
        service.ingest_many(events[6:])
        service.seal_journal()
        # a newer snapshot that never finished writing
        (config.directory / "snap-00000099.npz").write_bytes(b"garbage")
        scan = scan_journal(config.directory)
        assert scan.snapshot is not None
        assert scan.snapshot_seq == good_seq

        reference = make_service()
        reference.registry.publish(
            make_model(0), predictor=make_predictor(), source="seed"
        )
        reference.ingest_many(events)
        recovered, report = recover_service(config, compact=False)
        assert report.snapshot_loaded
        assert_bit_identical(recovered, reference)

    def test_auto_compaction_threshold(self, tmp_path):
        service, config = journaled_service(tmp_path, snapshot_bytes=4096)
        for cid, node, t in sample_events(n=200, n_cascades=4):
            service.ingest(cid, node, t)
        assert service.journal.stats.snapshots >= 1
        service.seal_journal()
        reference = make_service()
        reference.registry.publish(
            make_model(0), predictor=make_predictor(), source="seed"
        )
        reference.ingest_many(sample_events(n=200, n_cascades=4))
        recovered, _ = recover_service(config, compact=False)
        assert_bit_identical(recovered, reference)


class TestFsyncPolicy:
    def _journal(self, tmp_path, clock, **cfg):
        return EventJournal(
            JournalConfig(directory=tmp_path / "wal", **cfg), clock=clock
        )

    def test_always_fsyncs_every_append(self, tmp_path):
        journal = self._journal(tmp_path, clock=lambda: 0.0, fsync="always")
        for i in range(3):
            journal.append_events(["c"], np.asarray([i]), np.asarray([0.1]))
        assert journal.stats.fsyncs == 3

    def test_off_fsyncs_only_on_seal(self, tmp_path):
        journal = self._journal(tmp_path, clock=lambda: 0.0, fsync="off")
        for i in range(3):
            journal.append_events(["c"], np.asarray([i]), np.asarray([0.1]))
        assert journal.stats.fsyncs == 0
        journal.seal()
        assert journal.stats.fsyncs == 1

    def test_interval_batches_fsyncs(self, tmp_path):
        now = [0.0]
        journal = self._journal(
            tmp_path, clock=lambda: now[0], fsync="interval", fsync_interval=1.0
        )
        for i in range(5):
            journal.append_events(["c"], np.asarray([i]), np.asarray([0.1]))
        assert journal.stats.fsyncs == 0  # clock never advanced
        now[0] = 1.5
        journal.append_events(["c"], np.asarray([9]), np.asarray([0.9]))
        assert journal.stats.fsyncs == 1

    def test_tick_flushes_idle_stream(self, tmp_path):
        now = [0.0]
        journal = self._journal(
            tmp_path, clock=lambda: now[0], fsync="interval", fsync_interval=1.0
        )
        journal.append_events(["c"], np.asarray([1]), np.asarray([0.1]))
        journal.tick()
        assert journal.stats.fsyncs == 0  # interval not reached yet
        now[0] = 2.0
        journal.tick()
        assert journal.stats.fsyncs == 1


class TestChaos:
    def test_kill_before_loses_the_record(self, tmp_path):
        # append 0 is the seed swap; kill before event append 3
        chaos = _ChaosPlan(at_append=3, action="kill", point="before")
        service, config = journaled_service(tmp_path, chaos=chaos)
        events = sample_events(n=10)
        with pytest.raises(InjectedCrash):
            for cid, node, t in events:
                service.ingest(cid, node, t)
        scan = scan_journal(config.directory)
        assert scan.torn is None  # nothing reached the file
        assert sum(isinstance(r, EventsRecord) for r in scan.records) == 2

    def test_kill_after_keeps_the_record(self, tmp_path):
        chaos = _ChaosPlan(at_append=3, action="kill", point="after")
        service, config = journaled_service(tmp_path, chaos=chaos)
        with pytest.raises(InjectedCrash):
            for cid, node, t in sample_events(n=10):
                service.ingest(cid, node, t)
        scan = scan_journal(config.directory)
        assert sum(isinstance(r, EventsRecord) for r in scan.records) == 3

    def test_torn_write_repaired_and_bit_identical(self, tmp_path):
        chaos = _ChaosPlan(at_append=5, action="torn", torn_bytes=9)
        service, config = journaled_service(tmp_path, chaos=chaos)
        events = sample_events(n=10)
        survived = []
        with pytest.raises(InjectedCrash):
            for cid, node, t in events:
                service.ingest(cid, node, t)
                survived.append((cid, node, t))
        # appends 1..4 were events; append 5 tore mid-frame.  The store
        # had applied 5 events, but only 4 are journaled — recovery is
        # bit-identical to a run over the *journaled* stream.
        reference = make_service()
        reference.registry.publish(
            make_model(0), predictor=make_predictor(), source="seed"
        )
        reference.ingest_many(events[:4])

        recovered, report = recover_service(config)
        assert report.torn_tail_repaired
        assert report.faults  # the repair is reported
        assert_bit_identical(recovered, reference)
        # the tail was truncated in place: a second scan is clean
        assert scan_journal(config.directory).torn is None

    def test_ioerror_degrades_but_keeps_scoring(self, tmp_path):
        chaos = _ChaosPlan(at_append=2, action="ioerror")
        service, config = journaled_service(tmp_path, chaos=chaos)
        for cid, node, t in sample_events(n=10):
            service.ingest(cid, node, t)  # must not raise
        stats = service.stats()
        assert stats["state"] == "degraded"
        assert stats["journal_faults"] == 1
        assert stats["journal"]["suspended"] is True
        assert "journal" in service.health.reasons()
        assert service.score("c0").status == "ok"
        # reattaching a healthy journal clears the condition
        service.seal_journal()
        service.attach_journal(EventJournal(config))
        assert service.stats()["state"] == "serving"

    def test_slow_disk_still_writes(self, tmp_path):
        chaos = _ChaosPlan(at_append=1, action="slow", slow_s=0.01)
        service, config = journaled_service(tmp_path, chaos=chaos)
        service.ingest("c", 1, 0.1)
        service.seal_journal()
        scan = scan_journal(config.directory)
        assert sum(isinstance(r, EventsRecord) for r in scan.records) == 1

    def test_compact_failure_degrades(self, tmp_path, monkeypatch):
        service, config = journaled_service(tmp_path)
        service.ingest("c", 1, 0.1)
        monkeypatch.setattr(
            service.journal,
            "write_snapshot",
            lambda snapshot: (_ for _ in ()).throw(OSError("disk full")),
        )
        assert not service.compact()
        assert service.stats()["state"] == "degraded"
        assert service.score("c").status == "ok"


class TestSwapRecords:
    def test_swap_survives_roundtrip_with_predictor(self, tmp_path):
        service, config = journaled_service(tmp_path)
        service.seal_journal()
        scan = scan_journal(config.directory)
        (swap,) = [r for r in scan.records if isinstance(r, SwapRecord)]
        live = service.registry.current()
        assert swap.source == "seed"
        assert swap.fingerprint == live.fingerprint
        assert np.array_equal(swap.model.A, live.model.A)
        assert np.array_equal(swap.model.B, live.model.B)
        X = np.random.default_rng(0).normal(size=(5, 3))
        assert np.array_equal(
            swap.predictor.decision_function(X),
            live.predictor.decision_function(X),
        )

    def test_swap_without_predictor(self, tmp_path):
        config = JournalConfig(directory=tmp_path / "wal")
        service = make_service()
        service.attach_journal(EventJournal(config))
        service.publish(make_model(3), source="bare")
        service.seal_journal()
        scan = scan_journal(config.directory)
        (swap,) = scan.records
        assert isinstance(swap, SwapRecord)
        assert swap.predictor is None
