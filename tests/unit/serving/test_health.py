"""Unit tests for the lifecycle state machine and fault accounting."""

import pytest

from repro.serving.health import FaultRecord, HealthMonitor


@pytest.fixture
def clock():
    return [0.0]


@pytest.fixture
def monitor(clock):
    return HealthMonitor(clock=lambda: clock[0])


class TestPhases:
    def test_forward_progression(self, monitor):
        assert monitor.phase == "starting"
        monitor.begin_recovery()
        monitor.begin_serving()
        monitor.begin_draining()
        monitor.stopped()
        assert monitor.phase == "stopped"

    def test_recovery_leg_is_optional(self, monitor):
        monitor.begin_serving()
        assert monitor.phase == "serving"

    def test_same_phase_is_idempotent(self, monitor, clock):
        monitor.begin_serving()
        clock[0] = 5.0
        monitor.begin_serving()  # no-op: phase_since is not reset
        assert monitor.phase_since == 0.0

    def test_backwards_raises(self, monitor):
        monitor.begin_serving()
        with pytest.raises(RuntimeError, match="backwards"):
            monitor.begin_recovery()

    def test_phase_age_tracks_clock(self, monitor, clock):
        clock[0] = 2.0
        monitor.begin_serving()
        clock[0] = 7.5
        assert monitor.snapshot()["phase_age_s"] == pytest.approx(5.5)


class TestDegraded:
    def test_degrade_and_clear(self, monitor):
        monitor.begin_serving()
        assert monitor.state() == "serving"
        monitor.degrade("journal", "durability suspended")
        assert monitor.state() == "degraded"
        assert monitor.reasons() == {"journal": "durability suspended"}
        monitor.clear("journal")
        assert monitor.state() == "serving"
        monitor.clear("journal")  # unknown reason: no-op

    def test_degraded_is_not_a_phase(self, monitor):
        """Reasons raised outside `serving` don't rename the phase."""
        monitor.degrade("journal", "x")
        assert monitor.state() == "starting"
        monitor.begin_serving()
        assert monitor.state() == "degraded"
        monitor.begin_draining()
        assert monitor.state() == "draining"

    def test_ready_and_healthy(self, monitor):
        snap = monitor.snapshot()
        assert not snap["ready"] and not snap["healthy"]
        monitor.begin_serving()
        snap = monitor.snapshot()
        assert snap["ready"] and snap["healthy"]
        monitor.degrade("task:flusher", "restart budget exhausted")
        snap = monitor.snapshot()
        assert snap["ready"] and not snap["healthy"]


class TestFaults:
    def test_trail_is_bounded(self, monitor):
        for i in range(HealthMonitor.FAULT_LIMIT + 20):
            monitor.record_fault("journal_io", f"fault {i}")
        faults = monitor.faults()
        assert len(faults) == HealthMonitor.FAULT_LIMIT
        assert faults[-1].detail == f"fault {HealthMonitor.FAULT_LIMIT + 19}"
        assert monitor.faults_total == HealthMonitor.FAULT_LIMIT + 20

    def test_records_are_structured(self, monitor, clock):
        clock[0] = 3.0
        monitor.record_fault("torn_tail", "wal-00000001.log @ 88")
        (fault,) = monitor.faults()
        assert fault == FaultRecord(at=3.0, kind="torn_tail", detail="wal-00000001.log @ 88")

    def test_snapshot_shows_recent_tail(self, monitor):
        for i in range(12):
            monitor.record_fault("k", str(i))
        recent = monitor.snapshot()["recent_faults"]
        assert len(recent) == 8
        assert recent[-1]["detail"] == "11"


class TestPublishStaleness:
    def test_failure_inside_bound_is_quiet(self, monitor, clock):
        monitor.begin_serving()
        monitor.max_publish_staleness = 10.0
        monitor.publish_succeeded()
        clock[0] = 5.0
        monitor.publish_failed("corrupt artifact")
        assert monitor.state() == "serving"
        assert monitor.publish_failures == 1

    def test_failure_past_bound_degrades(self, monitor, clock):
        monitor.begin_serving()
        monitor.max_publish_staleness = 10.0
        monitor.publish_succeeded()
        monitor.publish_failed("corrupt artifact")
        clock[0] = 10.1
        assert "model_stale" in monitor.reasons()
        assert monitor.state() == "degraded"

    def test_success_retracts_without_polling(self, monitor, clock):
        monitor.begin_serving()
        monitor.max_publish_staleness = 10.0
        monitor.publish_succeeded()
        monitor.publish_failed("x")
        clock[0] = 20.0
        assert monitor.state() == "degraded"
        monitor.publish_succeeded()
        assert monitor.state() == "serving"

    def test_no_bound_no_staleness(self, monitor, clock):
        monitor.begin_serving()
        monitor.publish_succeeded()
        monitor.publish_failed("x")
        clock[0] = 1e6
        assert monitor.state() == "serving"

    def test_no_successful_publish_yet(self, monitor, clock):
        """Staleness measures age of the last *good* model; before any
        publish there is nothing to be stale relative to."""
        monitor.begin_serving()
        monitor.max_publish_staleness = 1.0
        monitor.publish_failed("x")
        clock[0] = 100.0
        assert "model_stale" not in monitor.reasons()
