"""Unit tests for the per-cascade incremental feature store."""

import numpy as np
import pytest

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel
from repro.prediction.features import EXTENDED_FEATURES, extract_features
from repro.serving.registry import ModelRegistry
from repro.serving.tracker import FeatureStore, StoreConfig
from repro.serving.workspace import ScoringWorkspace


@pytest.fixture
def registry():
    rng = np.random.default_rng(0)
    reg = ModelRegistry()
    reg.publish(EmbeddingModel(rng.uniform(0, 1, (40, 4)), rng.uniform(0, 1, (40, 4))))
    return reg


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestStoreConfig:
    def test_defaults_valid(self):
        StoreConfig()

    @pytest.mark.parametrize("kwargs", [{"capacity": 0}, {"ttl": 0.0}, {"ttl": -1.0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StoreConfig(**kwargs)


class TestIngestAndFeatures:
    def test_features_match_batch_extraction(self, registry):
        store = FeatureStore()
        snap = registry.current()
        events = [(3, 0.0), (7, 0.2), (12, 0.5), (1, 0.9)]
        for node, t in events:
            assert store.ingest("c", node, t, snap)
        vec = store.features("c", snap)
        batch = extract_features(
            snap.model,
            Cascade([n for n, _ in events], [t for _, t in events]),
        )
        assert np.array_equal(vec, batch)

    def test_unknown_cascade_returns_none(self, registry):
        store = FeatureStore()
        assert store.features("nope", registry.current()) is None

    def test_duplicate_adopter_ignored(self, registry):
        store = FeatureStore()
        snap = registry.current()
        assert store.ingest("c", 3, 0.0, snap)
        assert not store.ingest("c", 3, 0.7, snap)
        assert store.stats.duplicates == 1
        assert store.get("c").n_events == 1

    def test_cached_vector_invalidated_on_update(self, registry):
        store = FeatureStore()
        snap = registry.current()
        store.ingest("c", 3, 0.0, snap)
        v1 = store.features("c", snap)
        assert store.features("c", snap) is v1  # cached object reused
        store.ingest("c", 7, 0.2, snap)
        v2 = store.features("c", snap)
        assert v2 is not v1
        assert not np.array_equal(v1, v2)

    def test_feature_vector_read_only(self, registry):
        store = FeatureStore()
        snap = registry.current()
        store.ingest("c", 3, 0.0, snap)
        vec = store.features("c", snap)
        with pytest.raises(ValueError):
            vec[0] = 99.0


class TestLRUEviction:
    def test_capacity_bound_evicts_lru(self, registry):
        store = FeatureStore(config=StoreConfig(capacity=3))
        snap = registry.current()
        for i, cid in enumerate(["a", "b", "c"]):
            store.ingest(cid, i, 0.1 * i, snap)
        store.features("a", snap)  # touch "a": "b" becomes LRU
        store.ingest("d", 9, 1.0, snap)
        assert "b" not in store
        assert all(cid in store for cid in ("a", "c", "d"))
        assert store.stats.evictions == 1

    def test_readmission_starts_fresh(self, registry):
        store = FeatureStore(config=StoreConfig(capacity=1))
        snap = registry.current()
        store.ingest("a", 3, 0.0, snap)
        store.ingest("a", 7, 0.1, snap)
        store.ingest("b", 1, 0.2, snap)  # evicts "a"
        assert "a" not in store
        store.ingest("a", 5, 1.0, snap)  # re-admitted
        tracker = store.get("a")
        assert tracker.n_events == 1  # prior history is gone
        vec = store.features("a", snap)
        batch = extract_features(snap.model, Cascade([5], [1.0]))
        assert np.array_equal(vec, batch)


class TestTTLExpiry:
    def test_sweep_expires_idle_cascades(self, registry):
        clock = FakeClock()
        store = FeatureStore(config=StoreConfig(ttl=10.0), clock=clock)
        snap = registry.current()
        store.ingest("old", 1, 0.0, snap)
        clock.now = 8.0
        store.ingest("young", 2, 0.1, snap)
        clock.now = 15.0
        assert store.sweep() == 1
        assert "old" not in store and "young" in store
        assert store.stats.expirations == 1

    def test_sweep_without_ttl_is_noop(self, registry):
        store = FeatureStore()
        store.ingest("c", 1, 0.0, registry.current())
        assert store.sweep() == 0
        assert "c" in store

    def test_event_refreshes_ttl(self, registry):
        clock = FakeClock()
        store = FeatureStore(config=StoreConfig(ttl=10.0), clock=clock)
        snap = registry.current()
        store.ingest("c", 1, 0.0, snap)
        clock.now = 9.0
        store.ingest("c", 2, 0.5, snap)  # refreshes last_event_at
        clock.now = 15.0
        assert store.sweep() == 0
        assert "c" in store


class TestModelSwap:
    def test_lazy_rebuild_on_new_version(self, registry):
        store = FeatureStore()
        snap1 = registry.current()
        store.ingest("c", 3, 0.0, snap1)
        store.ingest("c", 7, 0.2, snap1)
        rng = np.random.default_rng(9)
        snap2 = registry.publish(
            EmbeddingModel(rng.uniform(0, 1, (40, 4)), rng.uniform(0, 1, (40, 4)))
        )
        vec = store.features("c", snap2)
        assert store.get("c").model_version == snap2.version
        batch = extract_features(snap2.model, Cascade([3, 7], [0.0, 0.2]))
        assert np.array_equal(vec, batch)
        assert store.stats.rebuilds == 1

    def test_extended_features_survive_swap(self, registry):
        store = FeatureStore(feature_set=EXTENDED_FEATURES)
        snap1 = registry.current()
        for node, t in [(3, 0.0), (7, 0.2), (12, 0.5)]:
            store.ingest("c", node, t, snap1)
        rng = np.random.default_rng(10)
        snap2 = registry.publish(
            EmbeddingModel(rng.uniform(0, 1, (40, 4)), rng.uniform(0, 1, (40, 4)))
        )
        store.ingest("c", 1, 0.9, snap2)  # swap applied mid-stream
        vec = store.features("c", snap2)
        batch = extract_features(
            snap2.model,
            Cascade([3, 7, 12, 1], [0.0, 0.2, 0.5, 0.9]),
            EXTENDED_FEATURES,
        )
        assert np.array_equal(vec, batch)


class TestDrop:
    def test_drop_forgets(self, registry):
        store = FeatureStore()
        store.ingest("c", 1, 0.0, registry.current())
        assert store.drop("c")
        assert "c" not in store
        assert not store.drop("c")

    def test_stale_view_raises_after_drop(self, registry):
        """A tracker view dies with its incarnation instead of silently
        reading whatever cascade recycled the slot."""
        store = FeatureStore()
        store.ingest("c", 1, 0.0, registry.current())
        view = store.get("c")
        store.drop("c")
        store.ingest("other", 2, 0.0, registry.current())  # recycles the slot
        with pytest.raises(LookupError, match="no longer tracked"):
            view.n_events


class TestIngestMany:
    def test_empty_burst_is_noop(self, registry):
        store = FeatureStore()
        assert store.ingest_many([], registry.current()) == 0
        assert len(store) == 0
        assert store.stats.events == 0 and store.stats.admissions == 0

    def test_single_event_burst_matches_scalar(self, registry):
        snap = registry.current()
        store = FeatureStore()
        assert store.ingest_many([("c", 3, 0.5)], snap) == 1
        vec = store.features("c", snap)
        batch = extract_features(snap.model, Cascade([3], [0.5]))
        assert np.array_equal(vec, batch)
        assert store.get("c").n_events == 1

    def test_duplicates_and_out_of_order_across_cascades(self, registry):
        """One burst interleaving two cascades, with duplicate adopters
        (within the burst and against prior state) and timestamps that
        run backwards per cascade."""
        snap = registry.current()
        store = FeatureStore()
        store.ingest("a", 1, 0.9, snap)  # pre-existing state for "a"
        burst = [
            ("a", 2, 0.5),  # out of order for "a" (0.5 < 0.9)
            ("b", 7, 0.8),
            ("a", 1, 1.0),  # duplicate vs prior state
            ("b", 9, 0.2),  # out of order for "b"
            ("b", 7, 0.3),  # duplicate within the burst
            ("a", 4, 0.1),
        ]
        assert store.ingest_many(burst, snap) == 4
        assert store.stats.duplicates == 2
        vec_a = store.features("a", snap)
        vec_b = store.features("b", snap)
        batch_a = extract_features(snap.model, Cascade([1, 2, 4], [0.9, 0.5, 0.1]))
        batch_b = extract_features(snap.model, Cascade([7, 9], [0.8, 0.2]))
        assert np.array_equal(vec_a, batch_a)
        assert np.array_equal(vec_b, batch_b)

    def test_mid_burst_eviction_discards_deferred_folds(self, registry):
        """A cascade with events earlier in the burst is LRU-evicted by
        an admission later in the same burst: its queued folds die with
        it, and a still-later event re-admits it from scratch —
        exactly the sequential semantics."""
        snap = registry.current()
        store = FeatureStore(config=StoreConfig(capacity=1))
        burst = [
            ("a", 1, 0.0),
            ("a", 2, 0.1),  # deferred fold for "a"
            ("b", 3, 0.2),  # admits "b": evicts "a" with folds pending
            ("a", 4, 0.3),  # re-admits "a": evicts "b"
        ]
        assert store.ingest_many(burst, snap) == 4
        assert "b" not in store and "a" in store
        assert store.stats.evictions == 2
        assert store.stats.admissions == 3
        tracker = store.get("a")
        assert tracker.n_events == 1  # pre-eviction history is gone
        vec = store.features("a", snap)
        assert np.array_equal(vec, extract_features(snap.model, Cascade([4], [0.3])))

    def test_burst_validated_atomically(self, registry):
        """An invalid event anywhere in the burst raises before any
        state changes (unlike the scalar path, which applies a prefix)."""
        snap = registry.current()
        store = FeatureStore()
        with pytest.raises(ValueError, match="outside the model universe"):
            store.ingest_many([("a", 1, 0.0), ("b", 999, 0.1)], snap)
        with pytest.raises(ValueError, match="finite"):
            store.ingest_many([("a", 1, 0.0), ("b", 2, float("nan"))], snap)
        assert len(store) == 0
        assert store.stats.events == 0 and store.stats.admissions == 0

    def test_burst_rebuilds_stale_cascade_once(self, registry):
        snap1 = registry.current()
        store = FeatureStore()
        store.ingest("c", 3, 0.0, snap1)
        rng = np.random.default_rng(11)
        snap2 = registry.publish(
            EmbeddingModel(rng.uniform(0, 1, (40, 4)), rng.uniform(0, 1, (40, 4)))
        )
        assert store.ingest_many([("c", 7, 0.2), ("c", 9, 0.4)], snap2) == 2
        assert store.stats.rebuilds == 1
        assert store.get("c").model_version == snap2.version
        vec = store.features("c", snap2)
        batch = extract_features(snap2.model, Cascade([3, 7, 9], [0.0, 0.2, 0.4]))
        assert np.array_equal(vec, batch)


class TestLazySweep:
    def test_idle_sweep_does_not_walk_trackers(self, registry):
        """Regression: a sweep over a large idle (nothing-expired) store
        must be O(1), not a scan of every tracker — the heap top is
        young, so the sweep performs zero heap operations."""
        clock = FakeClock()
        store = FeatureStore(config=StoreConfig(ttl=10.0), clock=clock)
        snap = registry.current()
        for i in range(500):
            store.ingest(f"c{i}", i % 40, 0.1 * i, snap)
        clock.now = 5.0  # nothing is close to expiring
        assert store.sweep() == 0
        assert store.stats.sweep_pops == 0

    def test_sweep_cost_tracks_expired_not_tracked(self, registry):
        """Expiring a handful of stale cascades out of many live ones
        pops O(expired) heap entries, not O(tracked)."""
        clock = FakeClock()
        store = FeatureStore(config=StoreConfig(ttl=10.0), clock=clock)
        snap = registry.current()
        for i in range(10):  # stale cohort, admitted at t=0
            store.ingest(f"old{i}", i, 0.0, snap)
        clock.now = 8.0
        for i in range(200):  # fresh cohort
            store.ingest(f"new{i}", (10 + i) % 40, 0.1, snap)
        clock.now = 15.0
        assert store.sweep() == 10
        assert store.stats.sweep_pops == 10
        assert len(store) == 200

    def test_refreshed_entry_requeued_not_expired(self, registry):
        clock = FakeClock()
        store = FeatureStore(config=StoreConfig(ttl=10.0), clock=clock)
        snap = registry.current()
        store.ingest("c", 1, 0.0, snap)
        clock.now = 9.0
        store.ingest("c", 2, 0.5, snap)  # refreshes the column only
        clock.now = 15.0
        assert store.sweep() == 0  # heap entry re-queued at t=9, not popped
        assert "c" in store
        assert store.stats.sweep_pops == 1  # one refresh re-queue, no scan
        clock.now = 25.0
        assert store.sweep() == 1  # and it does expire once truly stale

    def test_evicted_incarnation_entry_skipped_as_stale(self, registry):
        clock = FakeClock()
        store = FeatureStore(config=StoreConfig(capacity=1, ttl=10.0), clock=clock)
        snap = registry.current()
        store.ingest("a", 1, 0.0, snap)
        store.ingest("b", 2, 0.1, snap)  # evicts "a"; its heap entry is stale
        clock.now = 15.0
        assert store.sweep() == 1  # only "b" expires
        assert store.stats.expirations == 1


class TestGatherBatch:
    def test_gather_matches_per_id_features(self, registry):
        snap = registry.current()
        store = FeatureStore()
        for cid, node, t in [("a", 1, 0.0), ("b", 2, 0.1), ("a", 3, 0.2)]:
            store.ingest(cid, node, t, snap)
        ws = ScoringWorkspace()
        x, row_of, n_events = store.gather_batch(["b", "nope", "a"], snap, ws)
        assert x.shape == (2, len(store.feature_set))
        assert row_of.tolist() == [0, -1, 1]
        assert n_events.tolist() == [1, 0, 2]
        assert np.array_equal(x[0], store.features("b", snap))
        assert np.array_equal(x[1], store.features("a", snap))

    def test_gather_reuses_workspace_buffers(self, registry):
        snap = registry.current()
        store = FeatureStore()
        for i in range(8):
            store.ingest(f"c{i}", i, 0.1 * i, snap)
        ws = ScoringWorkspace()
        ids = [f"c{i}" for i in range(8)]
        x1, _, _ = store.gather_batch(ids, snap, ws)
        base1 = x1.base if x1.base is not None else x1
        x2, _, _ = store.gather_batch(ids, snap, ws)
        base2 = x2.base if x2.base is not None else x2
        assert base1 is base2  # same pooled buffer, no reallocation
