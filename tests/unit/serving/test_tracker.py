"""Unit tests for the per-cascade incremental feature store."""

import numpy as np
import pytest

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel
from repro.prediction.features import EXTENDED_FEATURES, extract_features
from repro.serving.registry import ModelRegistry
from repro.serving.tracker import FeatureStore, StoreConfig


@pytest.fixture
def registry():
    rng = np.random.default_rng(0)
    reg = ModelRegistry()
    reg.publish(EmbeddingModel(rng.uniform(0, 1, (40, 4)), rng.uniform(0, 1, (40, 4))))
    return reg


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestStoreConfig:
    def test_defaults_valid(self):
        StoreConfig()

    @pytest.mark.parametrize("kwargs", [{"capacity": 0}, {"ttl": 0.0}, {"ttl": -1.0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StoreConfig(**kwargs)


class TestIngestAndFeatures:
    def test_features_match_batch_extraction(self, registry):
        store = FeatureStore()
        snap = registry.current()
        events = [(3, 0.0), (7, 0.2), (12, 0.5), (1, 0.9)]
        for node, t in events:
            assert store.ingest("c", node, t, snap)
        vec = store.features("c", snap)
        batch = extract_features(
            snap.model,
            Cascade([n for n, _ in events], [t for _, t in events]),
        )
        assert np.array_equal(vec, batch)

    def test_unknown_cascade_returns_none(self, registry):
        store = FeatureStore()
        assert store.features("nope", registry.current()) is None

    def test_duplicate_adopter_ignored(self, registry):
        store = FeatureStore()
        snap = registry.current()
        assert store.ingest("c", 3, 0.0, snap)
        assert not store.ingest("c", 3, 0.7, snap)
        assert store.stats.duplicates == 1
        assert store.get("c").n_events == 1

    def test_cached_vector_invalidated_on_update(self, registry):
        store = FeatureStore()
        snap = registry.current()
        store.ingest("c", 3, 0.0, snap)
        v1 = store.features("c", snap)
        assert store.features("c", snap) is v1  # cached object reused
        store.ingest("c", 7, 0.2, snap)
        v2 = store.features("c", snap)
        assert v2 is not v1
        assert not np.array_equal(v1, v2)

    def test_feature_vector_read_only(self, registry):
        store = FeatureStore()
        snap = registry.current()
        store.ingest("c", 3, 0.0, snap)
        vec = store.features("c", snap)
        with pytest.raises(ValueError):
            vec[0] = 99.0


class TestLRUEviction:
    def test_capacity_bound_evicts_lru(self, registry):
        store = FeatureStore(config=StoreConfig(capacity=3))
        snap = registry.current()
        for i, cid in enumerate(["a", "b", "c"]):
            store.ingest(cid, i, 0.1 * i, snap)
        store.features("a", snap)  # touch "a": "b" becomes LRU
        store.ingest("d", 9, 1.0, snap)
        assert "b" not in store
        assert all(cid in store for cid in ("a", "c", "d"))
        assert store.stats.evictions == 1

    def test_readmission_starts_fresh(self, registry):
        store = FeatureStore(config=StoreConfig(capacity=1))
        snap = registry.current()
        store.ingest("a", 3, 0.0, snap)
        store.ingest("a", 7, 0.1, snap)
        store.ingest("b", 1, 0.2, snap)  # evicts "a"
        assert "a" not in store
        store.ingest("a", 5, 1.0, snap)  # re-admitted
        tracker = store.get("a")
        assert tracker.n_events == 1  # prior history is gone
        vec = store.features("a", snap)
        batch = extract_features(snap.model, Cascade([5], [1.0]))
        assert np.array_equal(vec, batch)


class TestTTLExpiry:
    def test_sweep_expires_idle_cascades(self, registry):
        clock = FakeClock()
        store = FeatureStore(config=StoreConfig(ttl=10.0), clock=clock)
        snap = registry.current()
        store.ingest("old", 1, 0.0, snap)
        clock.now = 8.0
        store.ingest("young", 2, 0.1, snap)
        clock.now = 15.0
        assert store.sweep() == 1
        assert "old" not in store and "young" in store
        assert store.stats.expirations == 1

    def test_sweep_without_ttl_is_noop(self, registry):
        store = FeatureStore()
        store.ingest("c", 1, 0.0, registry.current())
        assert store.sweep() == 0
        assert "c" in store

    def test_event_refreshes_ttl(self, registry):
        clock = FakeClock()
        store = FeatureStore(config=StoreConfig(ttl=10.0), clock=clock)
        snap = registry.current()
        store.ingest("c", 1, 0.0, snap)
        clock.now = 9.0
        store.ingest("c", 2, 0.5, snap)  # refreshes last_event_at
        clock.now = 15.0
        assert store.sweep() == 0
        assert "c" in store


class TestModelSwap:
    def test_lazy_rebuild_on_new_version(self, registry):
        store = FeatureStore()
        snap1 = registry.current()
        store.ingest("c", 3, 0.0, snap1)
        store.ingest("c", 7, 0.2, snap1)
        rng = np.random.default_rng(9)
        snap2 = registry.publish(
            EmbeddingModel(rng.uniform(0, 1, (40, 4)), rng.uniform(0, 1, (40, 4)))
        )
        vec = store.features("c", snap2)
        assert store.get("c").model_version == snap2.version
        batch = extract_features(snap2.model, Cascade([3, 7], [0.0, 0.2]))
        assert np.array_equal(vec, batch)
        assert store.stats.rebuilds == 1

    def test_extended_features_survive_swap(self, registry):
        store = FeatureStore(feature_set=EXTENDED_FEATURES)
        snap1 = registry.current()
        for node, t in [(3, 0.0), (7, 0.2), (12, 0.5)]:
            store.ingest("c", node, t, snap1)
        rng = np.random.default_rng(10)
        snap2 = registry.publish(
            EmbeddingModel(rng.uniform(0, 1, (40, 4)), rng.uniform(0, 1, (40, 4)))
        )
        store.ingest("c", 1, 0.9, snap2)  # swap applied mid-stream
        vec = store.features("c", snap2)
        batch = extract_features(
            snap2.model,
            Cascade([3, 7, 12, 1], [0.0, 0.2, 0.5, 0.9]),
            EXTENDED_FEATURES,
        )
        assert np.array_equal(vec, batch)


class TestDrop:
    def test_drop_forgets(self, registry):
        store = FeatureStore()
        store.ingest("c", 1, 0.0, registry.current())
        assert store.drop("c")
        assert "c" not in store
        assert not store.drop("c")
