"""Unit tests for the reconnecting TCP scoring client.

The client's contract: same operation surface as the in-process
:class:`ScoringClient`, at-least-once delivery across a server restart
(invisible inside the reconnect budget), a clean
:class:`ServerUnreachableError` past it, and remote "queue full"
rejects mapped onto :class:`QueueFullError` so replay backpressure
handling is transport-agnostic.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.batching import BatchPolicy, QueueFullError
from repro.serving.client import (
    RemoteError,
    ServerUnreachableError,
    TCPScoringClient,
)
from repro.serving.registry import ModelRegistry
from repro.serving.server import ScoringServer
from repro.serving.service import ScoringService

N = 30


def make_model(seed):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (N, 3)), rng.uniform(0, 1, (N, 3)))


def make_predictor(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 3))
    sizes = np.where(X[:, 0] > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=seed).fit(ds)


def make_service(seed=0, max_delay=0.002):
    reg = ModelRegistry()
    reg.publish(make_model(seed), predictor=make_predictor(seed))
    service = ScoringService(
        reg, policy=BatchPolicy(max_batch=8, max_delay=max_delay)
    )
    service.begin_serving()
    return service


class ServerHarness:
    """A :class:`ScoringServer` on a daemon thread with its own loop.

    The sync client under test needs a live asyncio server it can talk
    to from the test thread; ``stop()`` joins the thread so restarts on
    the same port are deterministic.
    """

    def __init__(self, service, port=0):
        self.service = service
        self.port = port
        self._ready = threading.Event()
        self._loop = None
        self._stop_event = None
        self._thread = None
        self._error = None

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10.0):
            raise RuntimeError("server thread did not start")
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            server = ScoringServer(self.service, port=self.port)
            try:
                await server.start()
            except Exception as exc:  # pragma: no cover - startup failure
                self._error = exc
                self._ready.set()
                return
            self.port = server.port
            self._ready.set()
            await self._stop_event.wait()
            await server.stop()

        asyncio.run(main())

    def stop(self):
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(10.0)


@pytest.fixture()
def harness():
    h = ServerHarness(make_service()).start()
    yield h
    h.stop()


class TestRoundTrips:
    def test_ping_ingest_score_stats(self, harness):
        with TCPScoringClient("127.0.0.1", harness.port) as client:
            assert client.ping()
            assert client.ingest("c", 3, 0.0) is True
            assert client.ingest("c", 3, 0.5) is False  # duplicate adopter
            assert client.ingest_many([("d", 1, 0.6), ("d", 1, 0.7)]) == 1
            applied = client.ingest_columns(
                ["e", "e"], np.array([2, 4]), np.array([0.8, 0.9])
            )
            assert applied == 2
            response = client.score("c")
            assert response["status"] == "ok" and "score" in response
            stats = client.stats()
            assert stats["tracked_cascades"] == 3
            health = client.health()
            assert health["ready"] is True
            assert client.flush() >= 0

    def test_score_many_matches_in_process_results(self, harness):
        events = [("a", 1, 0.0), ("b", 2, 0.1), ("a", 3, 0.2), ("b", 4, 0.3)]
        reference = make_service()
        reference.ingest_many(events)
        with TCPScoringClient("127.0.0.1", harness.port) as client:
            client.ingest_many(events)
            responses = client.score_many(["a", "b"], include_features=True)
        want = reference.score_columns(["a", "b"], include_features=True)
        assert [r["cascade"] for r in responses] == ["a", "b"]
        got_scores = np.array([r["score"] for r in responses])
        assert np.allclose(got_scores, want.scores)
        got_features = np.array([r["features"] for r in responses])
        assert np.allclose(got_features, want.features)

    def test_pipelined_ids_restore_request_order(self, harness):
        # the micro-batcher resolves out of order; id matching must
        # re-associate each response with its cascade
        cids = [f"c{i}" for i in range(10)]
        with TCPScoringClient("127.0.0.1", harness.port) as client:
            for i, cid in enumerate(cids):
                client.ingest(cid, i % N, 0.01 * i)
            responses = client.score_many(cids)
        assert [r["cascade"] for r in responses] == cids


class TestFailureModes:
    def test_unreachable_raises_cleanly(self):
        client = TCPScoringClient(
            "127.0.0.1",
            1,  # reserved port: connection refused
            max_reconnects=2,
            reconnect_backoff=1e-3,
        )
        with pytest.raises(ServerUnreachableError, match="after 3 attempts"):
            client.ping()

    def test_queue_full_reject_maps_to_queue_full_error(self):
        with pytest.raises(QueueFullError):
            TCPScoringClient._check(
                {"ok": False, "error": "pending queue full (8 requests)", "id": 1}
            )

    def test_other_remote_errors_surface_as_remote_error(self):
        with pytest.raises(RemoteError, match="unknown cascade"):
            TCPScoringClient._check(
                {"ok": False, "error": "unknown cascade", "id": 2}
            )

    def test_reconnects_across_a_server_restart(self):
        service = make_service()
        first = ServerHarness(service).start()
        client = TCPScoringClient(
            "127.0.0.1",
            first.port,
            max_reconnects=20,
            reconnect_backoff=0.02,
        )
        try:
            assert client.ingest("c", 3, 0.0) is True
            first.stop()
            second = ServerHarness(service, port=first.port).start()
            try:
                # at-least-once across the restart: the dropped exchange
                # is re-sent on the fresh connection
                assert client.ingest("c", 7, 0.1) is True
                assert client.stats()["tracked_cascades"] == 1
                assert client.reconnects > 0
            finally:
                client.close()
                second.stop()
        finally:
            client.close()
            first.stop()
