"""Unit tests for the hot-swappable model registry.

The swap-storm test is the acceptance gate for the "no torn read"
contract: concurrent publishers hammer the registry while reader
threads verify every snapshot they grab is internally consistent.
"""

import threading

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel
from repro.embedding.online import OnlineEmbeddingInference
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.registry import (
    ModelRegistry,
    SnapshotLoadError,
    encode_shared_snapshot,
    model_fingerprint,
)


def make_model(seed, n=20, k=3):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (n, k)), rng.uniform(0, 1, (n, k)))


class TestPublish:
    def test_empty_registry_raises(self):
        with pytest.raises(LookupError):
            ModelRegistry().current()

    def test_versions_monotone(self):
        reg = ModelRegistry()
        snaps = [reg.publish(make_model(i)) for i in range(5)]
        assert [s.version for s in snaps] == [1, 2, 3, 4, 5]
        assert reg.current() is snaps[-1]
        assert reg.n_published == 5

    def test_snapshot_is_deep_copy_and_frozen(self):
        reg = ModelRegistry()
        model = make_model(0)
        snap = reg.publish(model)
        model.A[:] = 0.0  # mutate the source after publish
        assert not np.all(snap.model.A == 0.0)
        with pytest.raises(ValueError):
            snap.model.A[0, 0] = 1.0

    def test_fingerprint_tracks_content(self):
        m1, m2 = make_model(0), make_model(1)
        assert model_fingerprint(m1) == model_fingerprint(m1)
        assert model_fingerprint(m1) != model_fingerprint(m2)

    def test_history_bounded(self):
        reg = ModelRegistry()
        for i in range(ModelRegistry.HISTORY_LIMIT + 10):
            reg.publish(make_model(i))
        hist = reg.history()
        assert len(hist) == ModelRegistry.HISTORY_LIMIT
        assert hist[-1][0] == reg.current().version

    def test_predictor_deep_copied(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 3))
        sizes = np.where(X[:, 0] > 0, 20, 2).astype(np.int64)
        ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=("a", "b", "c"))
        pred = ViralityPredictor(threshold=10, seed=0).fit(ds)
        snap = ModelRegistry().publish(make_model(0), predictor=pred)
        before = snap.predictor.decision_function(X[:5]).copy()
        pred._svm.w[:] = 0.0  # mutate the source predictor
        assert np.array_equal(snap.predictor.decision_function(X[:5]), before)


class TestPublishPath:
    def test_npz_roundtrip(self, tmp_path):
        model = make_model(0)
        p = tmp_path / "model.npz"
        model.save(p)
        snap = ModelRegistry().publish_path(p)
        assert np.array_equal(snap.model.A, model.A)
        assert snap.source.startswith("npz:")

    def test_checkpoint_directory(self, tmp_path):
        from repro.parallel.checkpoint import CheckpointManager

        model = make_model(1)
        mgr = CheckpointManager(tmp_path / "ck")
        mgr.save(2, model.A, model.B, digest="d")
        snap = ModelRegistry().publish_path(tmp_path / "ck")
        assert np.array_equal(snap.model.A, model.A)
        assert np.array_equal(snap.model.B, model.B)
        assert snap.source.startswith("checkpoint:")

    def test_checkpoint_file(self, tmp_path):
        from repro.parallel.checkpoint import CheckpointManager

        model = make_model(2)
        mgr = CheckpointManager(tmp_path / "ck")
        mgr.save(0, model.A, model.B, digest="d")
        (archive,) = list((tmp_path / "ck").glob("*.npz"))
        snap = ModelRegistry().publish_path(archive)
        assert np.array_equal(snap.model.B, model.B)
        assert snap.source.startswith("checkpoint:")

    def test_missing_path(self, tmp_path):
        reg = ModelRegistry()
        with pytest.raises(SnapshotLoadError, match="nope.npz"):
            reg.publish_path(tmp_path / "nope.npz")
        assert reg.load_failures == 1

    def test_wrong_archive(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez(p, x=np.arange(3))
        with pytest.raises(SnapshotLoadError, match="need A, B"):
            ModelRegistry().publish_path(p)


class TestCorruptArtifacts:
    """A half-written or mangled artifact must never unseat the live model."""

    def _publish_good(self, reg, tmp_path):
        model = make_model(7)
        good = tmp_path / "good.npz"
        model.save(good)
        return reg.publish_path(good)

    def test_truncated_npz(self, tmp_path):
        reg = ModelRegistry()
        live = self._publish_good(reg, tmp_path)
        p = tmp_path / "model.npz"
        make_model(8).save(p)
        blob = p.read_bytes()
        p.write_bytes(blob[: len(blob) // 2])  # torn mid-write
        with pytest.raises(SnapshotLoadError, match="model.npz"):
            reg.publish_path(p)
        assert reg.current() is live  # last-good snapshot still pinned
        assert reg.load_failures == 1

    def test_garbage_bytes(self, tmp_path):
        reg = ModelRegistry()
        live = self._publish_good(reg, tmp_path)
        p = tmp_path / "model.npz"
        p.write_bytes(b"\x00\xffnot a zip archive at all")
        with pytest.raises(SnapshotLoadError, match="model.npz"):
            reg.publish_path(p)
        assert reg.current() is live
        assert reg.load_failures == 1

    def test_corrupt_member_crc(self, tmp_path):
        reg = ModelRegistry()
        self._publish_good(reg, tmp_path)
        p = tmp_path / "model.npz"
        make_model(9).save(p)
        blob = bytearray(p.read_bytes())
        # flip bytes in the middle of the archive (inside a member's
        # compressed/stored data), leaving the zip directory intact
        mid = len(blob) // 2
        for i in range(mid, mid + 8):
            blob[i] ^= 0xFF
        p.write_bytes(bytes(blob))
        before = reg.current()
        with pytest.raises(SnapshotLoadError, match="model.npz"):
            reg.publish_path(p)
        assert reg.current() is before

    def test_empty_checkpoint_dir(self, tmp_path):
        reg = ModelRegistry()
        live = self._publish_good(reg, tmp_path)
        empty = tmp_path / "ck"
        empty.mkdir()
        with pytest.raises(SnapshotLoadError, match="no checkpoint"):
            reg.publish_path(empty)
        assert reg.current() is live

    def test_service_swap_path_pins_last_good(self, tmp_path):
        """The service-level hot swap: failure counts, health degrades
        after the staleness bound, scoring continues under the old model."""
        from repro.serving.service import ScoringService

        clock = [0.0]
        reg = ModelRegistry()
        service = ScoringService(reg, clock=lambda: clock[0])
        self._publish_good(reg, tmp_path)
        service.health.publish_succeeded()
        service.health.max_publish_staleness = 10.0
        service.ingest("c1", 1, 0.1)
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"junk")
        with pytest.raises(SnapshotLoadError):
            service.swap_path(str(bad))
        assert service.stats()["load_failures"] == 1
        # inside the staleness bound: degraded condition not yet raised
        assert service.health.state() in ("starting", "serving")
        clock[0] = 11.0
        assert "model_stale" in service.health.reasons()
        # scoring still works under the pinned model
        result = service.score("c1")
        assert result.status == "ok"
        # a later successful swap retracts the condition
        good2 = tmp_path / "good2.npz"
        make_model(10).save(good2)
        service.swap_path(str(good2))
        assert "model_stale" not in service.health.reasons()


class TestPublishOnline:
    def test_snapshot_of_live_estimator(self):
        online = OnlineEmbeddingInference(20, 3, seed=0)
        reg = ModelRegistry()
        snap = reg.publish_online(online)
        before = snap.model.A.copy()
        online.model.A[:] += 1.0  # estimator keeps training
        assert np.array_equal(snap.model.A, before)
        assert snap.source == "online:t=0"


class TestSwapStorm:
    def test_readers_never_see_torn_snapshots(self):
        """Publishers storm the registry; readers assert every snapshot
        they grab is internally consistent (content matches its own
        fingerprint — a torn A/B pair or half-applied swap would not)."""
        # Pre-verify fingerprints so readers do pure comparisons.
        models = [make_model(seed) for seed in range(8)]
        expected = {model_fingerprint(m): m for m in models}
        reg = ModelRegistry()
        reg.publish(models[0])
        stop = threading.Event()
        failures = []

        def reader():
            last_version = 0
            while not stop.is_set():
                snap = reg.current()
                if snap.version < last_version:
                    failures.append("version went backwards")
                    return
                last_version = snap.version
                ref = expected.get(snap.fingerprint)
                if ref is None or not (
                    np.array_equal(snap.model.A, ref.A)
                    and np.array_equal(snap.model.B, ref.B)
                ):
                    failures.append(f"torn snapshot at v{snap.version}")
                    return

        def publisher(offset):
            for i in range(50):
                reg.publish(models[(offset + i) % len(models)])

        readers = [threading.Thread(target=reader) for _ in range(4)]
        publishers = [threading.Thread(target=publisher, args=(o,)) for o in range(3)]
        for t in readers + publishers:
            t.start()
        for t in publishers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert failures == []
        assert reg.n_published == 1 + 3 * 50


def make_predictor(seed=0, d=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, d))
    sizes = np.where(X[:, 0] + 0.3 * rng.normal(size=60) > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=seed).fit(ds)


class TestSharedSegment:
    """encode_shared_snapshot / publish_shared — the sharded swap path."""

    def _encode(self, seed=0, predictor=True):
        reg = ModelRegistry()
        snap = reg.publish(
            make_model(seed), predictor=make_predictor(seed) if predictor else None
        )
        return snap, encode_shared_snapshot(snap)

    def test_round_trip_is_bit_identical(self):
        snap, (seg, meta) = self._encode(seed=3)
        try:
            attacher = ModelRegistry()
            twin = attacher.publish_shared(meta)
            assert np.array_equal(twin.model.A, snap.model.A)
            assert np.array_equal(twin.model.B, snap.model.B)
            assert twin.fingerprint == snap.fingerprint == model_fingerprint(
                twin.model
            )
            X = np.random.default_rng(0).normal(size=(5, 3))
            assert np.array_equal(
                twin.predictor.decision_function(X),
                snap.predictor.decision_function(X),
            )
            attacher.release_shared()
        finally:
            seg.close()
            seg.unlink()

    def test_attached_planes_are_views_not_copies(self):
        # the zero-copy contract: the attached model's planes are
        # read-only windows into the segment, not per-shard copies
        snap, (seg, meta) = self._encode(seed=4)
        try:
            attacher = ModelRegistry()
            twin = attacher.publish_shared(meta)
            assert not twin.model.A.flags.owndata
            assert not twin.model.B.flags.owndata
            assert not twin.model.A.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                twin.model.A[0, 0] = 99.0
            attacher.release_shared()
        finally:
            seg.close()
            seg.unlink()

    def test_attacher_trusts_publisher_fingerprint(self):
        snap, (seg, meta) = self._encode(seed=5)
        try:
            attacher = ModelRegistry()
            assert attacher.publish_shared(meta).fingerprint == meta.fingerprint
            attacher.release_shared()
        finally:
            seg.close()
            seg.unlink()

    def test_predictor_free_snapshot_encodes(self):
        snap, (seg, meta) = self._encode(seed=6, predictor=False)
        try:
            assert meta.predictor_bytes == 0
            attacher = ModelRegistry()
            twin = attacher.publish_shared(meta)
            assert twin.predictor is None
            assert np.array_equal(twin.model.A, snap.model.A)
            attacher.release_shared()
        finally:
            seg.close()
            seg.unlink()

    def test_superseded_segment_is_pruned(self):
        _, (seg1, meta1) = self._encode(seed=7)
        _, (seg2, meta2) = self._encode(seed=8)
        try:
            attacher = ModelRegistry()
            attacher.publish_shared(meta1)
            assert len(attacher._retained) == 1
            attacher.publish_shared(meta2)
            # v1's mapping is detached as soon as no reader pins it
            assert list(attacher._retained) == [2]
            attacher.release_shared()
            assert attacher._retained == {}
        finally:
            for seg in (seg1, seg2):
                seg.close()
                seg.unlink()
