"""End-to-end tests for the newline-JSON asyncio front end."""

import asyncio
import io
import json

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel
from repro.serving.batching import BatchPolicy
from repro.serving.registry import ModelRegistry
from repro.serving.server import ScoringServer, build_service, serve_stdio
from repro.serving.service import ScoringService


def make_model(seed, n=30, k=3):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (n, k)), rng.uniform(0, 1, (n, k)))


def make_service(max_batch=4, max_delay=0.002):
    reg = ModelRegistry()
    reg.publish(make_model(0))
    return ScoringService(
        reg, policy=BatchPolicy(max_batch=max_batch, max_delay=max_delay)
    )


async def run_session(service, requests):
    """Start a server, send *requests*, return one response per request."""
    server = ScoringServer(service)
    await server.start()
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        for obj in requests:
            writer.write(json.dumps(obj).encode() + b"\n")
        await writer.drain()
        responses = []
        for _ in requests:
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            responses.append(json.loads(line))
        writer.close()
        await writer.wait_closed()
        return responses
    finally:
        await server.stop()


class TestTCPServer:
    def test_ping_and_event(self):
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "ping", "id": 1},
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.5},
                ],
            )
        )
        assert responses[0] == {"ok": True, "pong": True, "id": 1}
        assert responses[1]["applied"] is True
        assert responses[2]["applied"] is False  # duplicate adopter

    def test_events_burst_op(self):
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {
                        "op": "events",
                        "events": [["a", 3, 0.0], ["b", 7, 0.1], ["a", 3, 0.2]],
                        "id": 1,
                    },
                    {"op": "stats", "id": 2},
                ],
            )
        )
        by_id = {r["id"]: r for r in responses}
        assert by_id[1] == {"ok": True, "applied": 2, "count": 3, "id": 1}
        assert by_id[2]["stats"]["ingested"] == 2
        assert by_id[2]["stats"]["tracked_cascades"] == 2

    def test_events_burst_invalid_is_atomic(self):
        """A bad event anywhere in the burst rejects the whole burst."""
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {
                        "op": "events",
                        "events": [["a", 3, 0.0], ["b", 999, 0.1]],
                        "id": 1,
                    },
                    {"op": "stats", "id": 2},
                ],
            )
        )
        by_id = {r["id"]: r for r in responses}
        assert by_id[1]["ok"] is False and "error" in by_id[1]
        assert by_id[2]["stats"]["tracked_cascades"] == 0

    def test_pipelined_scores_coalesce_into_one_batch(self):
        service = make_service(max_batch=4, max_delay=0.5)
        requests = [{"op": "event", "cascade": "c", "node": 3, "t": 0.0}]
        requests += [{"op": "score", "cascade": "c", "id": i} for i in range(4)]
        responses = asyncio.run(run_session(service, requests))
        scores = [r for r in responses if "status" in r]
        assert len(scores) == 4
        # a full batch flushes on the wake signal, not the 500ms timer,
        # and all four land in the same evaluation
        assert all(r["latency_ms"]["batch_size"] == 4 for r in scores)
        assert sorted(r["id"] for r in scores) == [0, 1, 2, 3]

    def test_partial_batch_flushes_on_delay(self):
        service = make_service(max_batch=64, max_delay=0.005)
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
                    {"op": "score", "cascade": "c", "id": 7},
                ],
            )
        )
        score = next(r for r in responses if "status" in r)
        assert score["status"] == "ok" and score["id"] == 7
        assert score["latency_ms"]["batch_size"] == 1

    def test_unknown_cascade_and_bad_requests(self):
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "score", "cascade": "ghost", "id": 1},
                    {"op": "warp", "id": 2},
                    {"op": "event", "cascade": "c"},  # missing node/t
                ],
            )
        )
        by_id = {r.get("id"): r for r in responses}
        assert by_id[1]["status"] == "unknown_cascade"
        assert by_id[2]["ok"] is False and "unknown op" in by_id[2]["error"]
        bad = next(r for r in responses if r.get("id") is None)
        assert bad["ok"] is False

    def test_malformed_json_reported(self):
        async def scenario():
            service = make_service()
            server = ScoringServer(service)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                resp = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                writer.close()
                await writer.wait_closed()
                return resp
            finally:
                await server.stop()

        resp = asyncio.run(scenario())
        assert resp["ok"] is False and "bad json" in resp["error"]

    def test_swap_and_stats_ops(self, tmp_path):
        model2 = make_model(1)
        p = tmp_path / "next.npz"
        model2.save(p)
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
                    {"op": "swap", "path": str(p), "id": 1},
                    {"op": "score", "cascade": "c", "id": 2},
                    {"op": "stats", "id": 3},
                ],
            )
        )
        by_id = {r.get("id"): r for r in responses}
        assert by_id[1]["ok"] is True and by_id[1]["model_version"] == 2
        assert by_id[2]["model_version"] == 2  # scored under the new model
        assert by_id[3]["stats"]["model_version"] == 2

    def test_score_with_features(self):
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
                    {"op": "score", "cascade": "c", "features": True, "id": 1},
                ],
            )
        )
        score = next(r for r in responses if r.get("id") == 1)
        assert len(score["features"]) == 3  # the paper feature set


class TestStdioServer:
    def test_stdio_roundtrip(self):
        service = make_service()
        lines = [
            {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
            {"op": "score", "cascade": "c", "id": 1},
            {"op": "stats", "id": 2},
        ]
        fin = io.StringIO("".join(json.dumps(o) + "\n" for o in lines))
        fout = io.StringIO()
        asyncio.run(serve_stdio(service, stdin=fin, stdout=fout))
        responses = [json.loads(x) for x in fout.getvalue().splitlines()]
        assert len(responses) == 3
        by_id = {r.get("id"): r for r in responses}
        assert by_id[1]["status"] == "ok"
        # stats may have run before the deferred score flushed; the
        # ingest, though, is synchronous and must already be counted
        assert by_id[2]["stats"]["ingested"] == 1


class TestBuildService:
    def test_from_artifacts(self, tmp_path):
        model = make_model(0)
        mp = tmp_path / "model.npz"
        model.save(mp)
        service = build_service(
            str(mp), max_batch=16, max_delay=0.01, capacity=100, ttl=60.0
        )
        assert service.policy.max_batch == 16
        assert service.store.config.ttl == pytest.approx(60.0)
        assert service.registry.current().predictor is None

    def test_with_predictor(self, tmp_path):
        from repro.prediction.pipeline import PredictionDataset, ViralityPredictor

        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        sizes = np.where(X[:, 0] > 0, 30, 3).astype(np.int64)
        ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
        pred = ViralityPredictor(threshold=10, seed=0).fit(ds)
        mp, pp = tmp_path / "model.npz", tmp_path / "svm.npz"
        make_model(0).save(mp)
        pred.save(pp)
        service = build_service(str(mp), predictor_path=str(pp))
        service.ingest("c", 3, 0.0)
        result = service.score("c")
        assert result.ok and result.score is not None
