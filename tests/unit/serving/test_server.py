"""End-to-end tests for the newline-JSON asyncio front end."""

import asyncio
import io
import json

import numpy as np
import pytest

from repro.embedding.model import EmbeddingModel
from repro.serving.batching import BatchPolicy
from repro.serving.durability import JournalConfig, recover_service
from repro.serving.registry import ModelRegistry
from repro.serving.server import (
    ScoringServer,
    _LineAssembler,
    build_service,
    serve_stdio,
)
from repro.serving.service import ScoringService


def make_model(seed, n=30, k=3):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 1, (n, k)), rng.uniform(0, 1, (n, k)))


def make_service(max_batch=4, max_delay=0.002):
    reg = ModelRegistry()
    reg.publish(make_model(0))
    return ScoringService(
        reg, policy=BatchPolicy(max_batch=max_batch, max_delay=max_delay)
    )


async def run_session(service, requests):
    """Start a server, send *requests*, return one response per request."""
    server = ScoringServer(service)
    await server.start()
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        for obj in requests:
            writer.write(json.dumps(obj).encode() + b"\n")
        await writer.drain()
        responses = []
        for _ in requests:
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            responses.append(json.loads(line))
        writer.close()
        await writer.wait_closed()
        return responses
    finally:
        await server.stop()


class TestTCPServer:
    def test_ping_and_event(self):
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "ping", "id": 1},
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.5},
                ],
            )
        )
        assert responses[0] == {"ok": True, "pong": True, "id": 1}
        assert responses[1]["applied"] is True
        assert responses[2]["applied"] is False  # duplicate adopter

    def test_events_burst_op(self):
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {
                        "op": "events",
                        "events": [["a", 3, 0.0], ["b", 7, 0.1], ["a", 3, 0.2]],
                        "id": 1,
                    },
                    {"op": "stats", "id": 2},
                ],
            )
        )
        by_id = {r["id"]: r for r in responses}
        assert by_id[1] == {"ok": True, "applied": 2, "count": 3, "id": 1}
        assert by_id[2]["stats"]["ingested"] == 2
        assert by_id[2]["stats"]["tracked_cascades"] == 2

    def test_events_burst_invalid_is_atomic(self):
        """A bad event anywhere in the burst rejects the whole burst."""
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {
                        "op": "events",
                        "events": [["a", 3, 0.0], ["b", 999, 0.1]],
                        "id": 1,
                    },
                    {"op": "stats", "id": 2},
                ],
            )
        )
        by_id = {r["id"]: r for r in responses}
        assert by_id[1]["ok"] is False and "error" in by_id[1]
        assert by_id[2]["stats"]["tracked_cascades"] == 0

    def test_pipelined_scores_coalesce_into_one_batch(self):
        service = make_service(max_batch=4, max_delay=0.5)
        requests = [{"op": "event", "cascade": "c", "node": 3, "t": 0.0}]
        requests += [{"op": "score", "cascade": "c", "id": i} for i in range(4)]
        responses = asyncio.run(run_session(service, requests))
        scores = [r for r in responses if "status" in r]
        assert len(scores) == 4
        # a full batch flushes on the wake signal, not the 500ms timer,
        # and all four land in the same evaluation
        assert all(r["latency_ms"]["batch_size"] == 4 for r in scores)
        assert sorted(r["id"] for r in scores) == [0, 1, 2, 3]

    def test_partial_batch_flushes_on_delay(self):
        service = make_service(max_batch=64, max_delay=0.005)
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
                    {"op": "score", "cascade": "c", "id": 7},
                ],
            )
        )
        score = next(r for r in responses if "status" in r)
        assert score["status"] == "ok" and score["id"] == 7
        assert score["latency_ms"]["batch_size"] == 1

    def test_unknown_cascade_and_bad_requests(self):
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "score", "cascade": "ghost", "id": 1},
                    {"op": "warp", "id": 2},
                    {"op": "event", "cascade": "c"},  # missing node/t
                ],
            )
        )
        by_id = {r.get("id"): r for r in responses}
        assert by_id[1]["status"] == "unknown_cascade"
        assert by_id[2]["ok"] is False and "unknown op" in by_id[2]["error"]
        bad = next(r for r in responses if r.get("id") is None)
        assert bad["ok"] is False

    def test_malformed_json_reported(self):
        async def scenario():
            service = make_service()
            server = ScoringServer(service)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                resp = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                writer.close()
                await writer.wait_closed()
                return resp
            finally:
                await server.stop()

        resp = asyncio.run(scenario())
        assert resp["ok"] is False and "bad json" in resp["error"]

    def test_swap_and_stats_ops(self, tmp_path):
        model2 = make_model(1)
        p = tmp_path / "next.npz"
        model2.save(p)
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
                    {"op": "swap", "path": str(p), "id": 1},
                    {"op": "score", "cascade": "c", "id": 2},
                    {"op": "stats", "id": 3},
                ],
            )
        )
        by_id = {r.get("id"): r for r in responses}
        assert by_id[1]["ok"] is True and by_id[1]["model_version"] == 2
        assert by_id[2]["model_version"] == 2  # scored under the new model
        assert by_id[3]["stats"]["model_version"] == 2

    def test_score_with_features(self):
        service = make_service()
        responses = asyncio.run(
            run_session(
                service,
                [
                    {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
                    {"op": "score", "cascade": "c", "features": True, "id": 1},
                ],
            )
        )
        score = next(r for r in responses if r.get("id") == 1)
        assert len(score["features"]) == 3  # the paper feature set


class TestLineAssembler:
    def test_reassembles_split_lines(self):
        asm = _LineAssembler(64)
        assert asm.feed(b'{"a": 1') == []
        assert asm.feed(b'}\n{"b"') == [(True, b'{"a": 1}')]
        assert asm.feed(b": 2}\n") == [(True, b'{"b": 2}')]

    def test_multiple_lines_per_chunk(self):
        asm = _LineAssembler(64)
        assert asm.feed(b"x\ny\nz\n") == [(True, b"x"), (True, b"y"), (True, b"z")]

    def test_oversized_reported_once_at_bound_crossing(self):
        asm = _LineAssembler(8)
        assert asm.feed(b"A" * 20) == [(False, b"")]  # bound crossed mid-line
        assert asm.feed(b"B" * 20) == []  # same line: discarded silently
        # pipelined bytes behind the newline survive
        assert asm.feed(b"C\nok\n") == [(True, b"ok")]

    def test_oversized_with_newline_in_same_chunk(self):
        asm = _LineAssembler(8)
        assert asm.feed(b"A" * 20 + b"\nok\n") == [(False, b""), (True, b"ok")]

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            _LineAssembler(1)


class TestRobustness:
    def test_oversized_line_keeps_connection_alive(self):
        async def scenario():
            service = make_service()
            server = ScoringServer(service, max_line_bytes=256)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                big = json.dumps({"op": "ping", "pad": "x" * 1024}).encode()
                follow = json.dumps({"op": "ping", "id": 1}).encode()
                writer.write(big + b"\n" + follow + b"\n")
                await writer.drain()
                first = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                second = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                writer.close()
                await writer.wait_closed()
                return first, second, server.oversized
            finally:
                await server.stop()

        error, pong, oversized = asyncio.run(scenario())
        assert error["ok"] is False and "exceeds 256 bytes" in error["error"]
        assert pong == {"ok": True, "pong": True, "id": 1}
        assert oversized == 1

    def test_read_timeout_closes_idle_connection(self):
        async def scenario():
            service = make_service()
            server = ScoringServer(service, read_timeout=0.05)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # active traffic is served...
                writer.write(json.dumps({"op": "ping"}).encode() + b"\n")
                await writer.drain()
                pong = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                # ...then the idle connection is closed by the server
                eof = await asyncio.wait_for(reader.readline(), 5.0)
                writer.close()
                await writer.wait_closed()
                return pong, eof, server.timeouts
            finally:
                await server.stop()

        pong, eof, timeouts = asyncio.run(scenario())
        assert pong["ok"] is True
        assert eof == b""
        assert timeouts == 1

    def test_watchdog_restarts_crashed_flusher(self):
        async def scenario():
            service = make_service(max_delay=0.002)
            deaths = {"left": 2}
            orig = service.journal_tick

            def flaky():
                if deaths["left"]:
                    deaths["left"] -= 1
                    raise RuntimeError("injected flusher death")
                orig()

            service.journal_tick = flaky
            server = ScoringServer(service, restart_backoff=0.005)
            await server.start()
            try:
                await asyncio.sleep(0.15)
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    json.dumps({"op": "event", "cascade": "c", "node": 3, "t": 0.0})
                    .encode() + b"\n"
                )
                writer.write(json.dumps({"op": "score", "cascade": "c"}).encode() + b"\n")
                await writer.drain()
                responses = [
                    json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                    for _ in range(2)
                ]
                writer.close()
                await writer.wait_closed()
                return server.task_restarts, service.health, responses
            finally:
                await server.stop()

        restarts, health, responses = asyncio.run(scenario())
        # both injected deaths were fault-logged and restarted...
        assert restarts["flusher"] == 2
        assert sum(f.kind == "task_restart" for f in health.faults()) == 2
        # ...and the recovered flusher still flushes scores
        assert "task:flusher" not in health.reasons()
        score = next(r for r in responses if "status" in r)
        assert score["status"] == "ok"

    def test_watchdog_budget_exhausted_degrades(self):
        async def scenario():
            service = make_service(max_delay=0.002)

            def always_dead():
                raise RuntimeError("dead disk")

            service.journal_tick = always_dead
            server = ScoringServer(
                service, max_task_restarts=2, restart_backoff=0.001
            )
            await server.start()
            try:
                for _ in range(100):
                    if "task:flusher" in service.health.reasons():
                        break
                    await asyncio.sleep(0.01)
                # the rest of the server still answers
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(json.dumps({"op": "health"}).encode() + b"\n")
                await writer.drain()
                health = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
                writer.close()
                await writer.wait_closed()
                return service.health, health
            finally:
                await server.stop()

        monitor, health_resp = asyncio.run(scenario())
        assert "task:flusher" in monitor.reasons()
        assert monitor.state() == "degraded"
        assert any(f.kind == "task_dead" for f in monitor.faults())
        assert health_resp["state"] == "degraded"
        assert health_resp["ready"] is True and health_resp["healthy"] is False

    def test_health_op(self):
        service = make_service()
        responses = asyncio.run(run_session(service, [{"op": "health", "id": 1}]))
        health = responses[0]
        assert health["ok"] is True
        assert health["state"] == "serving"
        assert health["ready"] is True and health["healthy"] is True
        assert health["degraded_reasons"] == {}

    def test_drain_flushes_and_seals(self, tmp_path):
        from repro.serving.durability import EventJournal

        async def scenario():
            # flusher timer far out: only drain can complete the score
            service = make_service(max_batch=64, max_delay=5.0)
            service.attach_journal(
                EventJournal(JournalConfig(directory=tmp_path / "wal"))
            )
            server = ScoringServer(service)
            await server.start()
            service.ingest("c", 3, 0.0)
            done = []
            service.submit("c", on_done=done.append)
            await server.drain()
            return service, done

        service, done = asyncio.run(scenario())
        assert service.health.phase == "stopped"
        assert service.journal.closed
        assert done and done[0].status == "ok"

    def test_stop_aborts_pending_requests(self):
        async def scenario():
            service = make_service(max_batch=64, max_delay=5.0)
            server = ScoringServer(service)
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(json.dumps({"op": "score", "cascade": "c", "id": 1}).encode() + b"\n")
            await writer.drain()
            while not service.pending():
                await asyncio.sleep(0.001)
            await server.stop()
            line = await asyncio.wait_for(reader.readline(), 5.0)
            writer.close()
            await writer.wait_closed()
            return json.loads(line), service.stats()

        response, stats = asyncio.run(scenario())
        assert response["status"] == "aborted" and response["ok"] is False
        assert stats["aborted"] == 1


class TestStdioServer:
    def test_stdio_roundtrip(self):
        service = make_service()
        lines = [
            {"op": "event", "cascade": "c", "node": 3, "t": 0.0},
            {"op": "score", "cascade": "c", "id": 1},
            {"op": "stats", "id": 2},
        ]
        fin = io.StringIO("".join(json.dumps(o) + "\n" for o in lines))
        fout = io.StringIO()
        asyncio.run(serve_stdio(service, stdin=fin, stdout=fout))
        responses = [json.loads(x) for x in fout.getvalue().splitlines()]
        assert len(responses) == 3
        by_id = {r.get("id"): r for r in responses}
        assert by_id[1]["status"] == "ok"
        # stats may have run before the deferred score flushed; the
        # ingest, though, is synchronous and must already be counted
        assert by_id[2]["stats"]["ingested"] == 1
        # EOF on stdin is the stdio analog of SIGTERM: graceful drain
        assert service.health.phase == "stopped"

    def test_stdio_eof_drains_empty_stream(self):
        service = make_service()
        fout = io.StringIO()
        asyncio.run(serve_stdio(service, stdin=io.StringIO(""), stdout=fout))
        assert fout.getvalue() == ""
        assert service.health.phase == "stopped"


class TestBuildService:
    def test_from_artifacts(self, tmp_path):
        model = make_model(0)
        mp = tmp_path / "model.npz"
        model.save(mp)
        service = build_service(
            str(mp), max_batch=16, max_delay=0.01, capacity=100, ttl=60.0
        )
        assert service.policy.max_batch == 16
        assert service.store.config.ttl == pytest.approx(60.0)
        assert service.registry.current().predictor is None

    def test_with_predictor(self, tmp_path):
        from repro.prediction.pipeline import PredictionDataset, ViralityPredictor

        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        sizes = np.where(X[:, 0] > 0, 30, 3).astype(np.int64)
        ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
        pred = ViralityPredictor(threshold=10, seed=0).fit(ds)
        mp, pp = tmp_path / "model.npz", tmp_path / "svm.npz"
        make_model(0).save(mp)
        pred.save(pp)
        service = build_service(str(mp), predictor_path=str(pp))
        service.ingest("c", 3, 0.0)
        result = service.score("c")
        assert result.ok and result.score is not None

    def test_with_journal_is_recoverable(self, tmp_path):
        """A journaled build is recoverable from its first event on —
        the initial publish itself is a journaled swap record."""
        mp = tmp_path / "model.npz"
        make_model(0).save(mp)
        service = build_service(
            str(mp), journal_dir=str(tmp_path / "wal"), fsync="off"
        )
        assert service.health.phase == "serving"
        service.ingest("c", 3, 0.0)
        reference = service.score("c", include_features=True)
        service.drain()
        recovered, report = recover_service(
            JournalConfig(directory=tmp_path / "wal")
        )
        assert report.swaps_replayed == 1
        assert report.events_replayed == 1
        got = recovered.score("c", include_features=True)
        assert got.status == "ok"
        assert np.array_equal(got.features, reference.features)
