"""Unit tests for the micro-batching queue and backpressure policies."""

import pytest

from repro.serving.batching import (
    BatchPolicy,
    LatencyBreakdown,
    PendingQueue,
    QueueFullError,
    ScoreRequest,
)


def make_request(i, t=0.0):
    return ScoreRequest(cascade_id=f"c{i}", request_id=i, enqueued_at=t)


class TestBatchPolicy:
    def test_defaults_valid(self):
        BatchPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay": -0.1},
            {"max_batch": 8, "max_pending": 4},
            {"overflow": "explode"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)


class TestLatencyBreakdown:
    def test_total(self):
        lat = LatencyBreakdown(queued_s=0.002, compute_s=0.001, batch_size=4)
        assert lat.total_s == pytest.approx(0.003)


class TestPendingQueue:
    def test_fifo_drain(self):
        q = PendingQueue(BatchPolicy(max_batch=2, max_pending=10))
        for i in range(5):
            q.submit(make_request(i))
        assert len(q) == 5
        batch = q.drain(2)
        assert [r.request_id for r in batch] == [0, 1]
        assert len(q) == 3

    def test_due_on_full_batch(self):
        q = PendingQueue(BatchPolicy(max_batch=2, max_delay=10.0, max_pending=10))
        q.submit(make_request(0, t=0.0))
        assert not q.due(now=0.001)
        q.submit(make_request(1, t=0.0))
        assert q.due(now=0.001)

    def test_due_on_aged_head(self):
        q = PendingQueue(BatchPolicy(max_batch=64, max_delay=0.005))
        q.submit(make_request(0, t=0.0))
        assert not q.due(now=0.004)
        assert q.due(now=0.006)

    def test_empty_queue_never_due(self):
        q = PendingQueue(BatchPolicy())
        assert not q.due(now=1e9)

    def test_reject_overflow(self):
        q = PendingQueue(BatchPolicy(max_batch=1, max_pending=2, overflow="reject"))
        q.submit(make_request(0))
        q.submit(make_request(1))
        with pytest.raises(QueueFullError):
            q.submit(make_request(2))
        assert q.rejected == 1
        assert len(q) == 2  # queue unchanged

    def test_shed_oldest_overflow(self):
        q = PendingQueue(
            BatchPolicy(max_batch=1, max_pending=2, overflow="shed_oldest")
        )
        done = []
        first = make_request(0)
        first.on_done = done.append
        q.submit(first)
        q.submit(make_request(1))
        q.submit(make_request(2))  # sheds request 0
        assert len(q) == 2
        assert q.shed == 1
        assert [r.request_id for r in q.drain(10)] == [1, 2]
        assert len(done) == 1 and done[0].status == "shed"
        assert first.result.status == "shed"

    def test_on_done_fires_once_with_result(self):
        q = PendingQueue(BatchPolicy())
        seen = []
        req = make_request(0)
        req.on_done = seen.append
        q.submit(req)
        (drained,) = q.drain(1)
        from repro.serving.batching import ScoreResult

        drained.finish(ScoreResult(cascade_id="c0", request_id=0, status="ok"))
        assert len(seen) == 1 and seen[0].ok
