"""Unit tests for participation-filtered influencer ranking and edge AUC."""

import numpy as np
import pytest

from repro.analysis.influencers import rank_influencers
from repro.analysis.reconstruction import edge_auc
from repro.embedding.model import EmbeddingModel
from repro.graphs.graph import Graph


class TestParticipationFiltering:
    @pytest.fixture
    def model(self):
        A = np.array([[9.0], [5.0], [3.0], [1.0]])
        B = np.ones((4, 1))
        return EmbeddingModel(A, B)

    def test_filter_excludes_rare_nodes(self, model):
        participation = np.array([1, 50, 50, 50])
        top = rank_influencers(
            model, top_k=4, participation=participation, min_participation=10
        )
        nodes = [n for n, _ in top]
        assert 0 not in nodes  # highest raw influence but rarely observed
        assert nodes[0] == 1

    def test_no_filter_includes_all(self, model):
        top = rank_influencers(model, top_k=4)
        assert [n for n, _ in top] == [0, 1, 2, 3]

    def test_zero_min_participation_keeps_everyone(self, model):
        participation = np.array([0, 0, 0, 0])
        top = rank_influencers(
            model, top_k=4, participation=participation, min_participation=0
        )
        assert len(top) == 4

    def test_all_filtered_returns_empty(self, model):
        participation = np.zeros(4, dtype=int)
        top = rank_influencers(
            model, top_k=4, participation=participation, min_participation=5
        )
        assert top == []

    def test_participation_shape_validated(self, model):
        with pytest.raises(ValueError):
            rank_influencers(model, participation=np.ones(3))


class TestEdgeAUC:
    def test_perfect_model_near_one(self):
        A = np.zeros((6, 2))
        B = np.zeros((6, 2))
        # a 3-edge path encoded exactly
        edges = [(0, 1), (1, 2), (2, 3)]
        for k, (u, v) in enumerate(edges):
            A[u, k % 2] += 2.0
            B[v, k % 2] += 2.0
        model = EmbeddingModel(A, B)
        graph = Graph.from_edges(edges, n_nodes=6)
        assert edge_auc(model, graph, seed=0) > 0.9

    def test_random_model_near_half(self):
        rng = np.random.default_rng(1)
        model = EmbeddingModel(
            rng.uniform(0, 1, (40, 3)), rng.uniform(0, 1, (40, 3))
        )
        src = rng.integers(0, 40, 60)
        dst = (src + 1 + rng.integers(0, 38, 60)) % 40
        graph = Graph(40, src, dst)
        auc = edge_auc(model, graph, seed=2)
        assert 0.35 < auc < 0.65

    def test_validation(self):
        model = EmbeddingModel.random(4, 2, seed=0)
        with pytest.raises(ValueError):
            edge_auc(model, Graph.empty(5))
        with pytest.raises(ValueError):
            edge_auc(model, Graph.empty(4))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        model = EmbeddingModel(
            rng.uniform(0, 1, (20, 2)), rng.uniform(0, 1, (20, 2))
        )
        graph = Graph(20, [0, 1, 2], [1, 2, 3])
        assert edge_auc(model, graph, seed=7) == edge_auc(model, graph, seed=7)
