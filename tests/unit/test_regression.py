"""Unit tests for ridge regression and its metrics."""

import numpy as np
import pytest

from repro.prediction.regression import (
    RidgeRegression,
    mean_absolute_error,
    r2_score,
)


class TestRidgeRegression:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        w_true = np.array([2.0, -1.0, 0.5])
        y = X @ w_true + 4.0 + rng.normal(scale=0.01, size=200)
        model = RidgeRegression(lam=1e-6).fit(X, y)
        pred = model.predict(X)
        assert r2_score(y, pred) > 0.999

    def test_intercept_unpenalized(self):
        X = np.zeros((50, 1))
        y = np.full(50, 7.0)
        model = RidgeRegression(lam=10.0).fit(X, y)
        assert model.predict(np.zeros((1, 1)))[0] == pytest.approx(7.0)

    def test_regularization_shrinks_weights(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 2))
        y = X[:, 0] * 3.0 + rng.normal(size=60)
        w_small = RidgeRegression(lam=1e-6).fit(X, y).w
        w_big = RidgeRegression(lam=100.0).fit(X, y).w
        assert np.linalg.norm(w_big) < np.linalg.norm(w_small)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((0, 2)), np.zeros(0))

    def test_negative_lam_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(lam=-1.0)

    def test_constant_feature_safe(self):
        X = np.hstack([np.ones((30, 1)), np.arange(30.0).reshape(-1, 1)])
        y = np.arange(30.0)
        model = RidgeRegression(lam=1e-6).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99


class TestMetrics:
    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_r2_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_r2_constant_truth(self):
        y = np.full(3, 5.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1.0) == 0.0

    def test_r2_shape_validation(self):
        with pytest.raises(ValueError):
            r2_score(np.zeros(3), np.zeros(4))

    def test_mae_known(self):
        assert mean_absolute_error(
            np.array([1.0, 2.0]), np.array([2.0, 0.0])
        ) == pytest.approx(1.5)

    def test_mae_empty(self):
        assert mean_absolute_error(np.array([]), np.array([])) == 0.0
