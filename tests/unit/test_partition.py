"""Unit tests for Partition."""

import numpy as np
import pytest

from repro.community.partition import Partition


class TestConstruction:
    def test_dense_relabeling(self):
        p = Partition([10, 20, 10, 30])
        assert p.membership.tolist() == [0, 1, 0, 2]
        assert p.n_communities == 3

    def test_first_appearance_order(self):
        p = Partition([5, 3, 5, 1])
        assert p.membership.tolist() == [0, 1, 0, 2]

    def test_singletons(self):
        p = Partition.singletons(4)
        assert p.n_communities == 4

    def test_trivial(self):
        p = Partition.trivial(4)
        assert p.n_communities == 1

    def test_empty(self):
        p = Partition([])
        assert p.n_nodes == 0 and p.n_communities == 0

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Partition(np.zeros((2, 2)))

    def test_from_communities(self):
        p = Partition.from_communities([[0, 2], [1, 3]], n_nodes=4)
        assert p.membership.tolist() == [0, 1, 0, 1]

    def test_from_communities_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Partition.from_communities([[0, 1], [1, 2]], n_nodes=3)

    def test_from_communities_incomplete_rejected(self):
        with pytest.raises(ValueError, match="cover"):
            Partition.from_communities([[0]], n_nodes=2)


class TestAccessors:
    def test_members_sorted(self):
        p = Partition([0, 1, 0, 1, 0])
        assert p.members(0).tolist() == [0, 2, 4]
        assert p.members(1).tolist() == [1, 3]

    def test_communities_cover_all(self):
        p = Partition([2, 0, 1, 0])
        all_nodes = np.sort(np.concatenate(p.communities()))
        assert all_nodes.tolist() == [0, 1, 2, 3]

    def test_sizes(self):
        p = Partition([0, 0, 1])
        assert p.sizes().tolist() == [2, 1]

    def test_membership_readonly(self):
        p = Partition([0, 1])
        with pytest.raises(ValueError):
            p.membership[0] = 5


class TestMerge:
    def test_pairwise_merge(self):
        p = Partition([0, 1, 2, 3])
        merged = p.merge([[0, 1], [2, 3]])
        assert merged.n_communities == 2
        assert merged.membership.tolist() == [0, 0, 1, 1]

    def test_merge_singleton_group(self):
        p = Partition([0, 1, 2])
        merged = p.merge([[0, 1], [2]])
        assert merged.n_communities == 2

    def test_merge_missing_community_rejected(self):
        p = Partition([0, 1, 2])
        with pytest.raises(ValueError, match="not covered"):
            p.merge([[0, 1]])

    def test_merge_duplicate_rejected(self):
        p = Partition([0, 1])
        with pytest.raises(ValueError, match="two groups"):
            p.merge([[0, 1], [1]])

    def test_merge_out_of_range(self):
        p = Partition([0, 1])
        with pytest.raises(ValueError, match="out of range"):
            p.merge([[0, 5], [1]])


class TestAgreement:
    def test_identical_partitions(self):
        p = Partition([0, 0, 1, 1])
        assert p.agreement(p) == 1.0

    def test_relabeled_identical(self):
        a = Partition([0, 0, 1, 1])
        b = Partition([7, 7, 3, 3])
        assert a.agreement(b) == 1.0

    def test_orthogonal(self):
        a = Partition([0, 0, 1, 1])
        b = Partition([0, 1, 0, 1])
        assert a.agreement(b) < 0.5

    def test_symmetric(self):
        a = Partition([0, 0, 1, 2])
        b = Partition([0, 1, 1, 2])
        assert a.agreement(b) == pytest.approx(b.agreement(a))

    def test_universe_mismatch(self):
        with pytest.raises(ValueError):
            Partition([0, 1]).agreement(Partition([0, 1, 2]))

    def test_single_node(self):
        assert Partition([0]).agreement(Partition([0])) == 1.0
