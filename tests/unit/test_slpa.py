"""Unit tests for SLPA community detection."""

import numpy as np
import pytest

from repro.community.partition import Partition
from repro.community.slpa import slpa
from repro.graphs.generators import stochastic_block_model
from repro.graphs.graph import Graph


class TestSLPABasics:
    def test_returns_partition(self):
        g = Graph(4, [0, 1, 2, 3], [1, 0, 3, 2])
        p = slpa(g, seed=0)
        assert isinstance(p, Partition)
        assert p.n_nodes == 4

    def test_two_cliques_separated(self):
        # two mutually-connected triangles, no inter edges
        edges = []
        for clique in ([0, 1, 2], [3, 4, 5]):
            for a in clique:
                for b in clique:
                    if a != b:
                        edges.append((a, b))
        g = Graph.from_edges(edges, n_nodes=6)
        p = slpa(g, n_iterations=30, seed=1)
        m = p.membership
        assert m[0] == m[1] == m[2]
        assert m[3] == m[4] == m[5]
        assert m[0] != m[3]

    def test_isolated_nodes_singleton(self):
        g = Graph.empty(3)
        p = slpa(g, seed=0)
        assert p.n_communities == 3

    def test_deterministic_given_seed(self):
        g, _ = stochastic_block_model(60, 20, p_in=0.4, p_out=0.02, seed=5)
        a = slpa(g, seed=9)
        b = slpa(g, seed=9)
        assert a == b

    def test_empty_graph(self):
        p = slpa(Graph.empty(0), seed=0)
        assert p.n_nodes == 0

    def test_return_memberships(self):
        g = Graph(2, [0, 1], [1, 0])
        p, mem = slpa(g, seed=0, return_memberships=True)
        assert len(mem) == 2
        for m in mem:
            assert all(0 < f <= 1 for f in m.values())
            # frequencies of kept labels cannot exceed 1 in total
            assert sum(m.values()) <= 1.0 + 1e-9

    def test_parameter_validation(self):
        g = Graph.empty(2)
        with pytest.raises(ValueError):
            slpa(g, n_iterations=0)
        with pytest.raises(ValueError):
            slpa(g, r=0.0)
        with pytest.raises(ValueError):
            slpa(g, r=1.0)


class TestSLPARecovery:
    def test_recovers_planted_sbm_blocks(self):
        g, membership = stochastic_block_model(
            120, 30, p_in=0.4, p_out=0.005, seed=7
        )
        p = slpa(g, n_iterations=30, seed=11)
        planted = Partition(membership)
        assert p.agreement(planted) > 0.95

    def test_weighted_edges_dominate(self):
        # nodes 0-2 heavy clique; node 3 connected lightly to 0 but heavily to 4,5
        edges = [
            (0, 1, 10.0), (1, 0, 10.0), (1, 2, 10.0), (2, 1, 10.0),
            (0, 2, 10.0), (2, 0, 10.0),
            (3, 0, 0.1), (0, 3, 0.1),
            (3, 4, 10.0), (4, 3, 10.0), (4, 5, 10.0), (5, 4, 10.0),
            (3, 5, 10.0), (5, 3, 10.0),
        ]
        g = Graph.from_edges(edges, n_nodes=6)
        p = slpa(g, n_iterations=40, seed=2)
        m = p.membership
        assert m[3] == m[4] == m[5]
        assert m[3] != m[0]
