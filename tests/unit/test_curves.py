"""Unit tests for ROC / precision-recall curve utilities."""

import numpy as np
import pytest

from repro.prediction.curves import (
    average_precision,
    best_informedness,
    precision_recall_curve,
    roc_auc,
    roc_curve,
)


@pytest.fixture
def perfect():
    y = np.array([1, 1, -1, -1])
    s = np.array([0.9, 0.8, 0.2, 0.1])
    return y, s


@pytest.fixture
def random_scores():
    rng = np.random.default_rng(0)
    y = rng.choice([-1, 1], size=400)
    s = rng.normal(size=400)
    return y, s


class TestROC:
    def test_perfect_separation(self, perfect):
        y, s = perfect
        assert roc_auc(y, s) == pytest.approx(1.0)

    def test_random_near_half(self, random_scores):
        y, s = random_scores
        assert roc_auc(y, s) == pytest.approx(0.5, abs=0.08)

    def test_inverted_scores(self, perfect):
        y, s = perfect
        assert roc_auc(y, -s) == pytest.approx(0.0)

    def test_curve_endpoints(self, random_scores):
        y, s = random_scores
        fpr, tpr, thr = roc_curve(y, s)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thr[0] == np.inf

    def test_curve_monotone(self, random_scores):
        y, s = random_scores
        fpr, tpr, _ = roc_curve(y, s)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_tied_scores_collapse(self):
        y = np.array([1, -1, 1, -1])
        s = np.array([0.5, 0.5, 0.5, 0.5])
        fpr, tpr, _ = roc_curve(y, s)
        assert len(fpr) == 2  # (0,0) and (1,1) only
        assert roc_auc(y, s) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([1, 1]), np.array([0.5, 0.4]))  # one class
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 1]), np.array([0.5, 0.4]))  # bad labels
        with pytest.raises(ValueError):
            roc_curve(np.array([]), np.array([]))


class TestPrecisionRecall:
    def test_perfect(self, perfect):
        y, s = perfect
        p, r, _ = precision_recall_curve(y, s)
        assert p[0] == 1.0
        assert r[-1] == 1.0
        assert average_precision(y, s) == pytest.approx(1.0)

    def test_random_ap_near_base_rate(self, random_scores):
        y, s = random_scores
        base = np.mean(y == 1)
        assert average_precision(y, s) == pytest.approx(base, abs=0.1)

    def test_recall_monotone(self, random_scores):
        y, s = random_scores
        _, r, _ = precision_recall_curve(y, s)
        assert np.all(np.diff(r) >= 0)

    def test_precision_in_unit_interval(self, random_scores):
        y, s = random_scores
        p, _, _ = precision_recall_curve(y, s)
        assert np.all((p >= 0) & (p <= 1))


class TestInformedness:
    def test_perfect(self, perfect):
        y, s = perfect
        j, thr = best_informedness(y, s)
        assert j == pytest.approx(1.0)
        assert 0.2 < thr <= 0.8

    def test_random_near_zero(self, random_scores):
        y, s = random_scores
        j, _ = best_informedness(y, s)
        assert j < 0.25

    def test_relation_to_roc(self, random_scores):
        """J* is the max vertical gap between the ROC curve and chance."""
        y, s = random_scores
        fpr, tpr, _ = roc_curve(y, s)
        j, _ = best_informedness(y, s)
        assert j == pytest.approx(float(np.max(tpr - fpr)))
