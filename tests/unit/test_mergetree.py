"""Unit tests for MergeTree (Algorithm 2 schedule)."""

import numpy as np
import pytest

from repro.community.mergetree import MergeTree
from repro.community.partition import Partition


def make_partition(sizes):
    labels = np.repeat(np.arange(len(sizes)), sizes)
    return Partition(labels)


class TestTreeStrategy:
    def test_halving_widths(self):
        tree = MergeTree(make_partition([5] * 8), stop_at=1)
        assert tree.widths() == [8, 4, 2, 1]

    def test_odd_counts(self):
        tree = MergeTree(make_partition([3] * 5), stop_at=1)
        assert tree.widths() == [5, 3, 2, 1]

    def test_stop_at(self):
        tree = MergeTree(make_partition([2] * 8), stop_at=3)
        assert tree.widths()[-1] <= 3
        assert tree.widths() == [8, 4, 2]

    def test_single_leaf(self):
        tree = MergeTree(make_partition([4]), stop_at=1)
        assert tree.widths() == [1]
        assert tree.n_levels == 1

    def test_root_covers_everything(self):
        tree = MergeTree(make_partition([2, 3, 4]), stop_at=1)
        assert tree.root.n_communities == 1
        assert tree.root.sizes()[0] == 9

    def test_levels_are_nested_coarsenings(self):
        tree = MergeTree(make_partition([2] * 6), stop_at=1)
        for fine, coarse in zip(tree.levels, tree.levels[1:]):
            # every fine community maps into exactly one coarse community
            for cid in range(fine.n_communities):
                nodes = fine.members(cid)
                assert np.unique(coarse.membership[nodes]).size == 1


class TestGraphStrategy:
    def test_pairs_largest_with_smallest(self):
        part = make_partition([10, 1, 5, 4])
        tree = MergeTree(part, stop_at=2, strategy="graph")
        level1 = tree.levels[1]
        sizes = sorted(level1.sizes().tolist())
        # greedy pairing: (10,1) and (5,4) -> sizes 11 and 9
        assert sizes == [9, 11]

    def test_balances_better_than_tree_on_skew(self):
        part = make_partition([100, 1, 1, 1, 50, 1, 1, 49])
        t_tree = MergeTree(part, stop_at=4, strategy="tree")
        t_graph = MergeTree(part, stop_at=4, strategy="graph")
        assert max(t_graph.levels[1].sizes()) <= max(t_tree.levels[1].sizes())

    def test_odd_community_left_alone(self):
        part = make_partition([5, 4, 3])
        tree = MergeTree(part, stop_at=1, strategy="graph")
        assert tree.widths()[1] == 2


class TestValidation:
    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            MergeTree(make_partition([1, 1]), strategy="magic")

    def test_bad_stop_at(self):
        with pytest.raises(ValueError):
            MergeTree(make_partition([1, 1]), stop_at=0)

    def test_imbalance_metric(self):
        tree = MergeTree(make_partition([10, 2]), stop_at=1)
        imb = tree.imbalance()
        assert imb[0] == pytest.approx(10 / 6)
        assert imb[-1] == pytest.approx(1.0)
