"""Unit tests for the continuous-time SI simulator."""

import numpy as np
import pytest

from repro.cascades.simulate import CascadeSimulator, simulate_corpus
from repro.embedding.model import EmbeddingModel
from repro.graphs.graph import Graph


@pytest.fixture
def chain() -> Graph:
    """0 -> 1 -> 2 -> 3, unit rates."""
    return Graph(4, [0, 1, 2], [1, 2, 3])


class TestSimulator:
    def test_source_always_first(self, chain):
        sim = CascadeSimulator(chain, window=10.0)
        c = sim.simulate(0, seed=0)
        assert c.source == 0
        assert c.times[0] == 0.0

    def test_deterministic_given_seed(self, chain):
        sim = CascadeSimulator(chain, window=10.0)
        assert sim.simulate(0, seed=5) == sim.simulate(0, seed=5)

    def test_respects_topology(self, chain):
        sim = CascadeSimulator(chain, window=100.0)
        c = sim.simulate(2, seed=0)
        assert set(c.nodes.tolist()) <= {2, 3}  # cannot go backwards

    def test_window_truncates(self, chain):
        sim = CascadeSimulator(chain, window=1e-9)
        c = sim.simulate(0, seed=0)
        assert c.size == 1  # no time for any transmission

    def test_times_within_window(self, chain):
        sim = CascadeSimulator(chain, window=2.0)
        for seed in range(20):
            c = sim.simulate(0, seed=seed, t0=5.0)
            assert np.all(c.times <= 7.0 + 1e-12)
            assert np.all(c.times >= 5.0)

    def test_infection_order_follows_edges(self, chain):
        sim = CascadeSimulator(chain, window=100.0)
        c = sim.simulate(0, seed=1)
        pos = {int(v): i for i, v in enumerate(c.nodes)}
        for v in c.nodes:
            v = int(v)
            if v > 0 and v in pos and (v - 1) in pos:
                assert pos[v - 1] < pos[v]  # chain order preserved

    def test_max_size(self, chain):
        sim = CascadeSimulator(chain, window=100.0)
        c = sim.simulate(0, seed=2, max_size=2)
        assert c.size <= 2

    def test_zero_rate_edge_never_fires(self):
        g = Graph(2, [0], [1], [0.0])
        sim = CascadeSimulator(g, rates="weight", window=1e6)
        c = sim.simulate(0, seed=0)
        assert c.size == 1

    def test_embedding_rates(self):
        g = Graph(2, [0], [1])
        A = np.array([[2.0], [0.0]])
        B = np.array([[0.0], [3.0]])
        sim = CascadeSimulator(g, rates=(A, B), window=100.0)
        # rate = 6; expected delay 1/6 — transmission virtually certain
        hits = sum(sim.simulate(0, seed=s).size == 2 for s in range(50))
        assert hits == 50

    def test_rate_array(self):
        g = Graph(2, [0], [1])
        sim = CascadeSimulator(g, rates=np.array([10.0]), window=100.0)
        assert sim.simulate(0, seed=0).size == 2

    def test_bad_rate_shapes(self):
        g = Graph(2, [0], [1])
        with pytest.raises(ValueError):
            CascadeSimulator(g, rates=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            CascadeSimulator(g, rates=(np.zeros((3, 2)), np.zeros((2, 2))))

    def test_negative_rates_rejected(self):
        g = Graph(2, [0], [1])
        with pytest.raises(ValueError):
            CascadeSimulator(g, rates=np.array([-1.0]))

    def test_bad_source(self, chain):
        sim = CascadeSimulator(chain, window=1.0)
        with pytest.raises(ValueError):
            sim.simulate(99)

    def test_unknown_rates_string(self, chain):
        with pytest.raises(ValueError):
            CascadeSimulator(chain, rates="distance")

    def test_exponential_delay_distribution(self):
        """Single edge with rate r: delay should be Exp(r)."""
        g = Graph(2, [0], [1], [4.0])
        sim = CascadeSimulator(g, window=1000.0)
        delays = []
        for s in range(400):
            c = sim.simulate(0, seed=s)
            if c.size == 2:
                delays.append(c.times[1])
        mean = np.mean(delays)
        assert mean == pytest.approx(1 / 4.0, rel=0.15)


class TestSimulateCorpus:
    def test_count_and_universe(self, chain):
        cs = simulate_corpus(chain, 10, window=5.0, seed=0)
        assert len(cs) == 10
        assert cs.n_nodes == 4

    def test_min_size_enforced(self, chain):
        cs = simulate_corpus(chain, 10, window=5.0, seed=0, min_size=2)
        assert np.all(cs.sizes() >= 2)

    def test_budget_exhaustion(self):
        g = Graph.empty(3)  # no edges: cascades can never reach size 2
        with pytest.raises(RuntimeError, match="attempts"):
            simulate_corpus(g, 5, window=1.0, seed=0, min_size=2)

    def test_explicit_sources(self, chain):
        cs = simulate_corpus(
            chain, 3, window=5.0, seed=0, sources=np.array([1, 1, 1])
        )
        assert all(c.source == 1 for c in cs)

    def test_deterministic(self, chain):
        a = simulate_corpus(chain, 5, window=5.0, seed=3)
        b = simulate_corpus(chain, 5, window=5.0, seed=3)
        assert a == b

    def test_negative_count(self, chain):
        with pytest.raises(ValueError):
            simulate_corpus(chain, -1)
