"""Unit tests for Cascade and CascadeSet."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet


class TestCascade:
    def test_sorted_by_time(self, tiny_cascade):
        assert np.all(np.diff(tiny_cascade.times) >= 0)
        assert tiny_cascade.nodes[0] == 3  # earliest infection

    def test_size_duration_source(self, tiny_cascade):
        assert tiny_cascade.size == 4
        assert tiny_cascade.duration == pytest.approx(2.0)
        assert tiny_cascade.source == 3

    def test_empty_cascade(self):
        c = Cascade([], [])
        assert c.size == 0 and c.duration == 0.0
        with pytest.raises(ValueError):
            _ = c.source

    def test_single_infection(self):
        c = Cascade([7], [1.0])
        assert c.duration == 0.0 and c.source == 7

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError, match="at most once"):
            Cascade([1, 1], [0.0, 1.0])

    def test_nonfinite_time_rejected(self):
        with pytest.raises(ValueError):
            Cascade([0, 1], [0.0, float("inf")])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Cascade([0, 1], [0.0])

    def test_iteration(self, tiny_cascade):
        items = list(tiny_cascade)
        assert items[0] == (3, 0.0)
        assert len(items) == 4

    def test_equality_and_hash(self):
        a = Cascade([0, 1], [0.0, 1.0])
        b = Cascade([1, 0], [1.0, 0.0])  # same content, different input order
        assert a == b
        assert hash(a) == hash(b)

    def test_immutable_arrays(self, tiny_cascade):
        with pytest.raises(ValueError):
            tiny_cascade.nodes[0] = 9

    def test_stable_tie_order(self):
        c = Cascade([5, 2], [1.0, 1.0])
        assert c.nodes.tolist() == [5, 2]


class TestCascadePrefixes:
    def test_prefix_by_time(self, tiny_cascade):
        p = tiny_cascade.prefix_by_time(0.5)
        assert p.nodes.tolist() == [3, 1]  # inclusive boundary

    def test_prefix_by_time_before_start(self, tiny_cascade):
        assert tiny_cascade.prefix_by_time(-1.0).size == 0

    def test_prefix_by_time_after_end(self, tiny_cascade):
        assert tiny_cascade.prefix_by_time(10.0).size == 4

    def test_prefix_by_count(self, tiny_cascade):
        assert tiny_cascade.prefix_by_count(2).size == 2
        assert tiny_cascade.prefix_by_count(100).size == 4

    def test_prefix_by_count_negative(self, tiny_cascade):
        with pytest.raises(ValueError):
            tiny_cascade.prefix_by_count(-1)

    def test_restrict_to(self, tiny_cascade):
        keep = np.zeros(10, dtype=bool)
        keep[[3, 4]] = True
        sub = tiny_cascade.restrict_to(keep)
        assert sub.nodes.tolist() == [3, 4]

    def test_relabel(self, tiny_cascade):
        mapping = np.arange(10) * 10
        r = tiny_cascade.relabel(mapping)
        assert r.nodes.tolist() == [30, 10, 40, 0]

    def test_shifted_preserves_order(self, tiny_cascade):
        s = tiny_cascade.shifted(5.0)
        assert s.times[0] == pytest.approx(5.0)
        assert s.nodes.tolist() == tiny_cascade.nodes.tolist()


class TestCascadeSet:
    def test_append_and_len(self, small_corpus):
        assert len(small_corpus) == 4

    def test_universe_validation(self):
        cs = CascadeSet(3)
        with pytest.raises(ValueError, match="outside"):
            cs.append(Cascade([5], [0.0]))

    def test_type_validation(self):
        cs = CascadeSet(3)
        with pytest.raises(TypeError):
            cs.append("not a cascade")

    def test_indexing_and_slicing(self, small_corpus):
        assert small_corpus[0].size == 3
        sub = small_corpus[1:3]
        assert isinstance(sub, CascadeSet)
        assert len(sub) == 2

    def test_split(self, small_corpus):
        train, test = small_corpus.split(3)
        assert len(train) == 3 and len(test) == 1

    def test_split_out_of_range(self, small_corpus):
        with pytest.raises(ValueError):
            small_corpus.split(10)

    def test_sizes(self, small_corpus):
        assert small_corpus.sizes().tolist() == [3, 2, 3, 2]

    def test_total_infections(self, small_corpus):
        assert small_corpus.total_infections() == 10

    def test_participating_nodes(self, small_corpus):
        assert small_corpus.participating_nodes().tolist() == [0, 1, 2, 3, 4, 5]

    def test_negative_universe(self):
        with pytest.raises(ValueError):
            CascadeSet(-1)
