"""Unit tests for the virality-prediction pipeline."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.model import EmbeddingModel
from repro.prediction.pipeline import (
    ViralityPredictor,
    build_dataset,
    threshold_sweep,
)


@pytest.fixture
def model():
    return EmbeddingModel.random(20, 3, seed=0)


@pytest.fixture
def corpus():
    rng = np.random.default_rng(1)
    cs = CascadeSet(20)
    for i in range(30):
        size = int(rng.integers(2, 15))
        nodes = rng.permutation(20)[:size]
        times = np.sort(rng.uniform(0, 1, size=size))
        times[0] = 0.0
        cs.append(Cascade(nodes, times))
    return cs


class TestBuildDataset:
    def test_shapes(self, model, corpus):
        ds = build_dataset(model, corpus, window=1.0)
        assert ds.X.shape == (30, 3)
        assert ds.final_sizes.shape == (30,)
        assert len(ds) == 30

    def test_final_sizes_correct(self, model, corpus):
        ds = build_dataset(model, corpus, window=1.0)
        assert np.array_equal(ds.final_sizes, corpus.sizes())

    def test_labels_threshold(self, model, corpus):
        ds = build_dataset(model, corpus, window=1.0)
        y = ds.labels(8)
        assert np.array_equal(y == 1, ds.final_sizes >= 8)

    def test_early_fraction_controls_prefix(self, model, corpus):
        narrow = build_dataset(model, corpus, early_fraction=0.01, window=1.0)
        wide = build_dataset(model, corpus, early_fraction=0.99, window=1.0)
        # wider window -> more adopters -> normA no smaller anywhere
        assert np.all(wide.X[:, 1] >= narrow.X[:, 1] - 1e-12)

    def test_own_span_fallback(self, model, corpus):
        ds = build_dataset(model, corpus, window=None)
        assert ds.X.shape[0] == 30

    def test_early_fraction_validation(self, model, corpus):
        with pytest.raises(ValueError):
            build_dataset(model, corpus, early_fraction=1.5)


class TestViralityPredictor:
    def test_fit_predict_roundtrip(self, model, corpus):
        ds = build_dataset(model, corpus, window=1.0)
        thr = int(np.median(ds.final_sizes))
        pred = ViralityPredictor(threshold=thr, seed=0).fit(ds)
        labels = pred.predict(ds.X)
        assert set(np.unique(labels)) <= {-1, 1}

    def test_single_class_threshold_rejected(self, model, corpus):
        ds = build_dataset(model, corpus, window=1.0)
        with pytest.raises(ValueError, match="single class"):
            ViralityPredictor(threshold=10_000).fit(ds)

    def test_unfitted_predict_raises(self, model, corpus):
        ds = build_dataset(model, corpus, window=1.0)
        with pytest.raises(RuntimeError):
            ViralityPredictor(threshold=5).predict(ds.X)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ViralityPredictor(threshold=0)


class TestThresholdSweep:
    def test_structure(self, model, corpus):
        sweep = threshold_sweep(
            model, corpus, thresholds=[4, 8, 12], window=1.0, seed=0
        )
        assert sweep.thresholds.tolist() == [4, 8, 12]
        assert sweep.f1.shape == (3,)
        assert np.all((sweep.f1 >= 0) & (sweep.f1 <= 1))
        assert np.all(np.diff(sweep.positive_fraction) <= 0)

    def test_degenerate_thresholds_scored_zero(self, model, corpus):
        sweep = threshold_sweep(
            model, corpus, thresholds=[1, 10_000], window=1.0, seed=0
        )
        assert sweep.f1[1] == 0.0  # no positives at an absurd threshold

    def test_histogram_counts_total(self, model, corpus):
        sweep = threshold_sweep(
            model, corpus, thresholds=[5], window=1.0, seed=0, hist_bin_width=5
        )
        assert sweep.hist_counts.sum() == 30

    def test_f1_at_top_fraction(self, model, corpus):
        sweep = threshold_sweep(
            model, corpus, thresholds=[4, 8, 12], window=1.0, seed=0
        )
        v = sweep.f1_at_top_fraction(0.2)
        assert 0.0 <= v <= 1.0

    def test_rows(self, model, corpus):
        sweep = threshold_sweep(model, corpus, thresholds=[5], window=1.0, seed=0)
        rows = sweep.rows()
        assert len(rows) == 1 and len(rows[0]) == 3
