"""Unit tests for the structural (tree) prediction features."""

import numpy as np
import pytest

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel
from repro.prediction.features import EXTENDED_FEATURES, extract_features


@pytest.fixture
def model():
    return EmbeddingModel.random(6, 3, scale=0.8, seed=0)


class TestTreeFeatures:
    def test_names_registered(self):
        for name in ("depth", "breadth", "sviral"):
            assert name in EXTENDED_FEATURES

    def test_values_finite(self, model):
        early = Cascade([0, 2, 4, 1], [0.0, 0.2, 0.4, 0.6])
        f = extract_features(model, early, ["depth", "breadth", "sviral"])
        assert np.all(np.isfinite(f))
        assert f[0] >= 1  # at least one non-root infection
        assert f[1] >= 1

    def test_empty_prefix(self, model):
        f = extract_features(model, Cascade([], []), ["depth", "breadth", "sviral"])
        assert np.all(f == 0)

    def test_single_adopter(self, model):
        f = extract_features(model, Cascade([3], [0.0]), ["depth", "sviral"])
        assert f[0] == 0 and f[1] == 0

    def test_depth_bounded_by_size(self, model):
        early = Cascade([0, 1, 2, 3, 4], np.linspace(0, 1, 5))
        f = extract_features(model, early, ["depth", "breadth"])
        assert f[0] <= 4
        assert f[1] <= 5

    def test_chain_model_yields_deep_tree(self):
        # Rates force a chain: the on-rate (~10) maximizes the density
        # r·exp(-r·dt) at dt = 0.1 against the tiny background rate.
        on = np.sqrt(10.0)
        A = np.eye(4) * on + 0.01
        B = np.vstack(
            [np.full(4, 0.01)]
            + [np.eye(4)[i] * on + 0.01 for i in range(3)]
        )
        model = EmbeddingModel(A, B)
        early = Cascade([0, 1, 2, 3], [0.0, 0.1, 0.2, 0.3])
        f = extract_features(model, early, ["depth", "breadth"])
        assert f[0] == 3.0
        assert f[1] == 1.0

    def test_combined_with_paper_features(self, model):
        early = Cascade([0, 1, 2], [0.0, 0.3, 0.7])
        f = extract_features(model, early, EXTENDED_FEATURES)
        assert f.shape == (len(EXTENDED_FEATURES),)
