"""Unit tests for network reconstruction from embeddings."""

import numpy as np
import pytest

from repro.analysis.reconstruction import (
    predict_edges,
    reconstruction_precision_recall,
)
from repro.embedding.model import EmbeddingModel
from repro.graphs.graph import Graph


@pytest.fixture
def planted():
    """A model whose rate matrix exactly encodes a known 4-node graph."""
    # edges: 0->1 (rate 5), 1->2 (rate 4), 2->3 (rate 3); others ~0
    A = np.array(
        [
            [5.0, 0.0, 0.0],
            [0.0, 4.0, 0.0],
            [0.0, 0.0, 3.0],
            [0.0, 0.0, 0.0],
        ]
    )
    B = np.array(
        [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    model = EmbeddingModel(A, B)
    graph = Graph(4, [0, 1, 2], [1, 2, 3])
    return model, graph


class TestPredictEdges:
    def test_recovers_planted_edges_in_order(self, planted):
        model, _ = planted
        src, dst, rates = predict_edges(model, top_k=3)
        assert list(zip(src.tolist(), dst.tolist())) == [(0, 1), (1, 2), (2, 3)]
        assert np.all(np.diff(rates) <= 0)

    def test_no_self_loops(self, planted):
        model, _ = planted
        src, dst, _ = predict_edges(model, top_k=12)
        assert not np.any(src == dst)

    def test_candidate_restriction(self, planted):
        model, _ = planted
        src, dst, _ = predict_edges(
            model,
            top_k=2,
            candidate_src=np.array([2, 3]),
            candidate_dst=np.array([3, 0]),
        )
        assert (src[0], dst[0]) == (2, 3)

    def test_candidate_arrays_must_pair(self, planted):
        model, _ = planted
        with pytest.raises(ValueError):
            predict_edges(model, top_k=1, candidate_src=np.array([0]))

    def test_top_k_validation(self, planted):
        model, _ = planted
        with pytest.raises(ValueError):
            predict_edges(model, top_k=0)

    def test_top_k_clamped(self, planted):
        model, _ = planted
        src, _, _ = predict_edges(model, top_k=1000)
        assert src.size == 12  # n(n-1) ordered pairs, no self-loops


class TestPrecisionRecall:
    def test_perfect_reconstruction(self, planted):
        model, graph = planted
        p, r = reconstruction_precision_recall(model, graph)
        assert p == 1.0 and r == 1.0

    def test_random_model_scores_low(self):
        rng = np.random.default_rng(0)
        model = EmbeddingModel(
            rng.uniform(0, 1, (30, 4)), rng.uniform(0, 1, (30, 4))
        )
        src = rng.integers(0, 30, 40)
        dst = (src + 1 + rng.integers(0, 28, 40)) % 30
        graph = Graph(30, src, dst)
        p, _ = reconstruction_precision_recall(model, graph)
        # chance level = m / n(n-1) ≈ 0.046; allow generous noise band
        assert p < 0.4

    def test_default_k_equalizes_p_r(self, planted):
        model, graph = planted
        p, r = reconstruction_precision_recall(model, graph)
        assert p == r  # k defaults to the true edge count

    def test_node_count_mismatch(self, planted):
        model, _ = planted
        with pytest.raises(ValueError):
            reconstruction_precision_recall(model, Graph.empty(5))

    def test_empty_graph_rejected(self, planted):
        model, _ = planted
        with pytest.raises(ValueError):
            reconstruction_precision_recall(model, Graph.empty(4))
