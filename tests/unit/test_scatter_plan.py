"""Unit tests for the compile-time scatter plan and gradient workspace.

The plan must reproduce ``np.add.at`` bit-for-bit (strict left-fold
accumulation order per target row) for every segment-length profile:
singleton targets, short segments handled by the round schedule, and
over-``ROUND_CAP`` segments routed to pow2-padded rectangle bins.
"""

import numpy as np
import pytest

from repro.cascades.types import Cascade
from repro.embedding.compiled import (
    ROUND_CAP,
    CompiledCorpus,
    GradientWorkspace,
    ScatterPlan,
    corpus_gradients,
)
from repro.embedding.model import EmbeddingModel


def plan_scatter(plan, contrib_ext, grad):
    """Run the gather → segment-reduce → apply pipeline once."""
    K = contrib_ext.shape[1]
    gathered = np.take(contrib_ext, plan.gather_rows, axis=0)
    acc = np.empty((max(plan.n_unique, 1), K))
    gbuf = np.empty_like(acc)
    plan.reduce_into(gathered, acc)
    plan.apply_into(grad, acc, gbuf)


def reference_scatter(nodes, contrib, grad):
    np.add.at(grad, nodes, contrib)  # the oracle the plan replaces


def assert_plan_matches_add_at(nodes, n_targets, K=3, seed=0):
    nodes = np.asarray(nodes, dtype=np.int64)
    M = nodes.size
    rng = np.random.default_rng(seed)
    contrib_ext = np.zeros((M + 1, K))
    contrib_ext[:M] = rng.normal(size=(M, K))
    plan = ScatterPlan.from_nodes(nodes, M)
    got = np.zeros((n_targets, K))
    want = np.zeros((n_targets, K))
    plan_scatter(plan, contrib_ext, got)
    reference_scatter(nodes, contrib_ext[:M], want)
    assert np.array_equal(got, want)
    return plan


class TestScatterPlan:
    def test_unique_nodes(self):
        plan = assert_plan_matches_add_at([3, 0, 7, 5], 9)
        assert plan.n_long == 0
        assert plan.n_unique == 4

    def test_short_segments_mixed_lengths(self):
        rng = np.random.default_rng(1)
        nodes = rng.integers(0, 12, size=200)
        plan = assert_plan_matches_add_at(nodes, 12, seed=2)
        assert plan.n_long == 0

    def test_long_segment_bins(self):
        # 300 cascades all containing nodes 0 and 1: multiplicity 300
        # exceeds ROUND_CAP, so both segments go to one pow2-padded
        # rectangle bin of length 512.
        nodes = np.tile([0, 1], 300)
        plan = assert_plan_matches_add_at(nodes, 2, seed=3)
        assert plan.n_long == 2
        assert plan.bins == ((0, 1024, 0, 2, 512),)

    def test_mixed_long_and_short(self):
        nodes = np.concatenate(
            [np.full(ROUND_CAP + 5, 2), np.full(3, 0), [1]]
        )
        plan = assert_plan_matches_add_at(nodes, 4, seed=4)
        assert plan.n_long == 1
        assert plan.n_unique == 3

    def test_boundary_multiplicity_stays_short(self):
        nodes = np.full(ROUND_CAP, 6)
        plan = assert_plan_matches_add_at(nodes, 7, seed=5)
        assert plan.n_long == 0

    def test_empty(self):
        plan = ScatterPlan.from_nodes(np.empty(0, dtype=np.int64), 0)
        assert plan.n_unique == 0
        assert plan.n_gather == 0

    def test_left_fold_order_with_cancellation(self):
        # Values chosen so any reassociation of the per-target sum
        # changes the last bits: mixing magnitudes across 9 decades.
        nodes = np.array([4, 4, 4, 4, 4, 4], dtype=np.int64)
        vals = np.array(
            [1e9, 1.0, -1e9, 1e-7, 3.0, -4.0], dtype=np.float64
        )[:, None]
        ext = np.vstack([vals, np.zeros((1, 1))])
        plan = ScatterPlan.from_nodes(nodes, nodes.size)
        got = np.zeros((5, 1))
        want = np.zeros((5, 1))
        plan_scatter(plan, ext, got)
        reference_scatter(nodes, vals, want)
        assert np.array_equal(got, want)


class TestAssumeCompact:
    FIELDS = (
        "nodes", "times", "starts", "ends",
        "cascade_begin", "cascade_end", "valid",
    )

    def _flat(self, cascades):
        nodes = np.concatenate([c.nodes for c in cascades])
        times = np.concatenate([c.times for c in cascades])
        offsets = np.zeros(len(cascades) + 1, dtype=np.int64)
        np.cumsum([c.size for c in cascades], out=offsets[1:])
        return nodes, times, offsets

    def test_fast_path_identical_structure(self):
        # Every cascade has size >= 2, so the compaction scan the fast
        # path skips is a no-op — both corpora must be field-identical.
        cascades = [
            Cascade([0, 1, 2], [0.0, 0.3, 0.8]),
            Cascade([2, 3], [0.0, 0.4]),
            Cascade([1, 3, 0, 2], [0.0, 0.0, 0.6, 0.9]),
        ]
        flat = self._flat(cascades)
        a = CompiledCorpus.from_arena(*flat)
        b = CompiledCorpus.from_arena(*flat, assume_compact=True)
        for f in self.FIELDS:
            assert np.array_equal(getattr(a, f), getattr(b, f)), f

    def test_scan_still_drops_small_groups_by_default(self):
        cascades = [
            Cascade([0], [0.0]),
            Cascade([1, 2], [0.0, 1.0]),
        ]
        compiled = CompiledCorpus.from_arena(*self._flat(cascades))
        assert compiled.n_infections == 2


class TestGradientWorkspace:
    def _random_corpus(self, rng, n_nodes, n_cascades):
        cascades = []
        for _ in range(n_cascades):
            size = int(rng.integers(2, 7))
            nodes = rng.permutation(n_nodes)[:size]
            times = np.sort(np.round(rng.uniform(0, 3, size), 1))
            cascades.append(Cascade(nodes, times))
        return CompiledCorpus.from_cascades(cascades)

    def test_reuse_across_shapes_matches_fresh(self):
        # One workspace carried across corpora of different (M, K):
        # grow, shrink, change K — results must equal fresh-allocation
        # evaluation bitwise every time (no stale data leaks).
        rng = np.random.default_rng(11)
        ws = GradientWorkspace()
        for n_nodes, n_casc, K in [
            (10, 3, 4), (30, 12, 4), (10, 2, 4), (15, 5, 2), (30, 12, 6),
        ]:
            corpus = self._random_corpus(rng, n_nodes, n_casc)
            model = EmbeddingModel.random(n_nodes, K, seed=int(rng.integers(1 << 30)))
            g = [np.zeros((n_nodes, K)) for _ in range(4)]
            ll_ws = corpus_gradients(
                model.A, model.B, corpus, g[0], g[1], workspace=ws
            )
            ll_fresh = corpus_gradients(model.A, model.B, corpus, g[2], g[3])
            assert ll_ws == ll_fresh
            assert np.array_equal(g[0], g[2])
            assert np.array_equal(g[1], g[3])

    def test_buffers_never_alias_outputs(self):
        rng = np.random.default_rng(12)
        ws = GradientWorkspace()
        corpus = self._random_corpus(rng, 8, 3)
        model = EmbeddingModel.random(8, 3, seed=5)
        gradA = np.zeros((8, 3))
        gradB = np.zeros((8, 3))
        corpus_gradients(model.A, model.B, corpus, gradA, gradB, workspace=ws)
        for buf in list(ws._mats.values()) + list(ws._vecs.values()):
            assert not np.shares_memory(buf, gradA)
            assert not np.shares_memory(buf, gradB)
            assert not np.shares_memory(buf, model.A)
            assert not np.shares_memory(buf, model.B)

    def test_empty_corpus_with_workspace(self):
        ws = GradientWorkspace()
        model = EmbeddingModel.random(4, 2, seed=1)
        gA, gB = np.zeros((4, 2)), np.zeros((4, 2))
        comp = CompiledCorpus.from_cascades([])
        assert corpus_gradients(model.A, model.B, comp, gA, gB, workspace=ws) == 0.0
        assert np.all(gA == 0.0) and np.all(gB == 0.0)

    def test_candidate_release(self):
        ws = GradientWorkspace()
        a, b = ws.model_candidates(4, 3)
        assert a.shape == (4, 3) and b.shape == (4, 3)
        ws.release_candidates()
        a2, _ = ws.model_candidates(4, 3)
        assert a2 is not a  # fresh buffer after release
