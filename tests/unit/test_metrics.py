"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.prediction.metrics import (
    accuracy,
    confusion_counts,
    f1_score,
    precision,
    recall,
)


class TestConfusion:
    def test_counts(self):
        y_true = np.array([1, 1, -1, -1, 1])
        y_pred = np.array([1, -1, 1, -1, 1])
        assert confusion_counts(y_true, y_pred) == (2, 1, 1, 1)

    def test_all_correct(self):
        y = np.array([1, -1, 1])
        assert confusion_counts(y, y) == (2, 0, 0, 1)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([0, 1]), np.array([1, 1]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([1]), np.array([1, -1]))


class TestMetrics:
    def test_perfect(self):
        y = np.array([1, -1, 1, -1])
        assert precision(y, y) == 1.0
        assert recall(y, y) == 1.0
        assert f1_score(y, y) == 1.0
        assert accuracy(y, y) == 1.0

    def test_known_values(self):
        y_true = np.array([1, 1, 1, -1, -1])
        y_pred = np.array([1, 1, -1, 1, -1])
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert accuracy(y_true, y_pred) == pytest.approx(3 / 5)

    def test_no_positive_predictions(self):
        y_true = np.array([1, -1])
        y_pred = np.array([-1, -1])
        assert precision(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0

    def test_no_positive_truths(self):
        y_true = np.array([-1, -1])
        y_pred = np.array([1, -1])
        assert recall(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0

    def test_f1_harmonic_mean(self):
        y_true = np.array([1, 1, -1, -1, -1, -1])
        y_pred = np.array([1, -1, 1, 1, -1, -1])
        p = precision(y_true, y_pred)
        r = recall(y_true, y_pred)
        assert f1_score(y_true, y_pred) == pytest.approx(2 * p * r / (p + r))

    def test_empty_accuracy(self):
        assert accuracy(np.array([]), np.array([])) == 0.0
