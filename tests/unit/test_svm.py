"""Unit tests for the Pegasos linear SVM."""

import numpy as np
import pytest

from repro.prediction.svm import LinearSVM


def linearly_separable(n=200, seed=0, margin=2.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = np.where(X[:, 0] + X[:, 1] > 0, 1, -1)
    X[y == 1] += margin / 2
    X[y == -1] -= margin / 2
    return X, y.astype(np.float64)


class TestFit:
    def test_separable_data_high_accuracy(self):
        X, y = linearly_separable()
        svm = LinearSVM(lam=1e-3, n_epochs=20, seed=0).fit(X, y)
        acc = np.mean(svm.predict(X) == y)
        assert acc > 0.97

    def test_deterministic_given_seed(self):
        X, y = linearly_separable()
        a = LinearSVM(seed=1).fit(X, y)
        b = LinearSVM(seed=1).fit(X, y)
        assert np.array_equal(a.w, b.w) and a.b == b.b

    def test_decision_function_sign_matches_predict(self):
        X, y = linearly_separable(seed=2)
        svm = LinearSVM(seed=0).fit(X, y)
        df = svm.decision_function(X)
        assert np.array_equal(np.where(df >= 0, 1, -1), svm.predict(X))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict(np.zeros((1, 2)))

    def test_label_validation(self):
        X = np.zeros((3, 2))
        with pytest.raises(ValueError):
            LinearSVM().fit(X, np.array([0, 1, 2]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros(3), np.array([1, -1, 1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((0, 2)), np.zeros(0))

    def test_hyperparam_validation(self):
        with pytest.raises(ValueError):
            LinearSVM(lam=0.0)
        with pytest.raises(ValueError):
            LinearSVM(n_epochs=0)


class TestClassWeights:
    def test_balanced_improves_minority_recall(self):
        rng = np.random.default_rng(3)
        # 95/5 imbalance with overlap
        n_neg, n_pos = 380, 20
        Xn = rng.normal(loc=-0.5, size=(n_neg, 2))
        Xp = rng.normal(loc=+0.5, size=(n_pos, 2))
        X = np.vstack([Xn, Xp])
        y = np.concatenate([-np.ones(n_neg), np.ones(n_pos)])
        plain = LinearSVM(class_weight=None, seed=0).fit(X, y)
        balanced = LinearSVM(class_weight="balanced", seed=0).fit(X, y)

        def recall(model):
            pred = model.predict(X)
            return np.sum((pred == 1) & (y == 1)) / n_pos

        assert recall(balanced) >= recall(plain)

    def test_explicit_weights(self):
        X, y = linearly_separable()
        svm = LinearSVM(class_weight={-1: 1.0, 1: 2.0}, seed=0).fit(X, y)
        assert np.mean(svm.predict(X) == y) > 0.9

    def test_single_class_balanced_degrades_gracefully(self):
        X = np.ones((10, 2))
        y = np.ones(10)
        svm = LinearSVM(class_weight="balanced", seed=0).fit(X, y)
        assert np.all(svm.predict(X) == 1)

    def test_bad_class_weight(self):
        X, y = linearly_separable(n=10)
        with pytest.raises(ValueError):
            LinearSVM(class_weight="bogus").fit(X, y)


class TestIntercept:
    def test_intercept_separates_shifted_classes(self):
        """Standardized features with unbalanced class positions: the
        boundary is off-origin, so an intercept is required.  (The
        pipeline always standardizes before fitting — the documented
        contract of this solver.)"""
        rng = np.random.default_rng(4)
        X = rng.normal(size=(300, 1))
        y = np.where(X[:, 0] > 0.6, 1, -1).astype(float)  # off-center cut
        X[y == 1] += 1.0  # margin
        X = (X - X.mean(axis=0)) / X.std(axis=0)
        with_b = LinearSVM(fit_intercept=True, n_epochs=40, seed=0).fit(X, y)
        without = LinearSVM(fit_intercept=False, n_epochs=40, seed=0).fit(X, y)
        acc_b = np.mean(with_b.predict(X) == y)
        acc_n = np.mean(without.predict(X) == y)
        assert acc_b > 0.95
        assert acc_b >= acc_n

    def test_offset_data_beats_chance(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(200, 1)) + 10.0  # unstandardized offset data
        y = np.where(X[:, 0] > 10.0, 1, -1).astype(float)
        svm = LinearSVM(fit_intercept=True, n_epochs=40, seed=0).fit(X, y)
        assert np.mean(svm.predict(X) == y) > 0.6
