"""Unit tests for the optimizer's non-finite guard.

``corpus_gradients`` is monkeypatched at the optimizer module level so
nan/inf evaluations fire at chosen iterations, deterministically.
"""

import numpy as np
import pytest

import repro.embedding.optimizer as optimizer_mod
from repro.embedding.optimizer import (
    NumericalDivergenceError,
    OptimizerConfig,
    ProjectedGradientAscent,
)


class FakeGradients:
    """Stands in for ``corpus_gradients``: finite except on chosen calls.

    Finite calls return a slowly improving objective with a constant
    ascent direction; ``bad_calls`` (1-based call numbers) return nan and
    nan-filled gradients.
    """

    def __init__(self, bad_calls=()):
        self.bad_calls = set(bad_calls)
        self.n_calls = 0

    def __call__(
        self, A, B, corpus, gradA, gradB,
        eps=0.0, background_rate=0.0, workspace=None,
    ):
        self.n_calls += 1
        if self.n_calls in self.bad_calls:
            gradA.fill(np.nan)
            gradB.fill(np.nan)
            return float("nan")
        gradA.fill(0.01)
        gradB.fill(0.01)
        # improves with the (monotone) sum of entries so steps are accepted
        return -100.0 + float(A.sum() + B.sum())


@pytest.fixture
def patched(monkeypatch):
    def patch(bad_calls=()):
        fake = FakeGradients(bad_calls)
        monkeypatch.setattr(optimizer_mod, "corpus_gradients", fake)
        return fake

    return patch


class TestConfigValidation:
    def test_rejects_zero_retries(self):
        with pytest.raises(ValueError, match="max_nonfinite_retries"):
            OptimizerConfig(max_nonfinite_retries=0)

    def test_default_present(self):
        assert OptimizerConfig().max_nonfinite_retries == 8


class TestNonFiniteGuard:
    def test_nonfinite_at_start_raises(self, patched, small_corpus, small_model):
        patched(bad_calls=(1,))
        opt = ProjectedGradientAscent(OptimizerConfig(max_iters=10))
        with pytest.raises(NumericalDivergenceError, match="starting point"):
            opt.fit(small_model, small_corpus)

    def test_transient_nonfinite_recovers(self, patched, small_corpus, small_model):
        # call 1 = initial, call 2 = iteration 1's evaluation goes bad,
        # call 3 = recompute at the retracted point, then all finite
        fake = patched(bad_calls=(2,))
        opt = ProjectedGradientAscent(OptimizerConfig(max_iters=10))
        result = opt.fit(small_model, small_corpus)
        assert np.isfinite(result.final_loglik)
        assert np.all(np.isfinite(small_model.A))
        assert result.n_iters == 10  # the fit kept going after recovery
        assert fake.n_calls > 3

    def test_persistent_nonfinite_raises(self, patched, small_corpus, small_model):
        # every stepped evaluation is bad; retraction recomputes (odd
        # calls) stay finite, so only the step-evaluations burn retries
        fake = patched(bad_calls=set(range(2, 100, 2)))
        opt = ProjectedGradientAscent(
            OptimizerConfig(max_iters=100, max_nonfinite_retries=3)
        )
        with pytest.raises(NumericalDivergenceError, match="consecutive"):
            opt.fit(small_model, small_corpus)

    def test_streak_resets_on_finite_iteration(self, patched, small_corpus, small_model):
        # bad at scattered, non-consecutive step-evaluations: 2 then 6 —
        # each is a streak of one, so a budget of 2 never trips
        fake = patched(bad_calls=(2, 6))
        opt = ProjectedGradientAscent(
            OptimizerConfig(max_iters=10, max_nonfinite_retries=2)
        )
        result = opt.fit(small_model, small_corpus)
        assert np.isfinite(result.final_loglik)

    def test_model_not_left_nan_after_raise(self, patched, small_corpus, small_model):
        patched(bad_calls=set(range(2, 100, 2)))
        opt = ProjectedGradientAscent(
            OptimizerConfig(max_iters=100, max_nonfinite_retries=2)
        )
        with pytest.raises(NumericalDivergenceError):
            opt.fit(small_model, small_corpus)
        # the guard retracts before raising: the iterate stays finite
        assert np.all(np.isfinite(small_model.A))
        assert np.all(np.isfinite(small_model.B))

    def test_real_corpus_unaffected(self, small_corpus, small_model):
        # no patching: the guard must not change behaviour on healthy data
        opt = ProjectedGradientAscent(OptimizerConfig(max_iters=20))
        result = opt.fit(small_model, small_corpus)
        assert np.isfinite(result.final_loglik)
