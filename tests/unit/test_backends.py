"""Unit tests for execution backends (serial and multiprocess)."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig
from repro.parallel.backends import (
    BlockTask,
    MultiprocessBackend,
    SerialBackend,
    run_block_task,
)


def make_tasks(seed=0, n_comm=2):
    """Two disjoint communities with their own small corpora."""
    rng = np.random.default_rng(seed)
    tasks = []
    cfg = OptimizerConfig(max_iters=15)
    for cid in range(n_comm):
        nodes = np.arange(cid * 3, cid * 3 + 3)
        cascade_nodes = [np.array([0, 1, 2]), np.array([1, 2])]
        cascade_times = [np.array([0.0, 0.3, 0.8]), np.array([0.0, 0.5])]
        tasks.append(
            BlockTask(
                community_id=cid,
                nodes=nodes,
                cascade_nodes=cascade_nodes,
                cascade_times=cascade_times,
                A_rows=rng.uniform(0.1, 1.0, size=(3, 2)),
                B_rows=rng.uniform(0.1, 1.0, size=(3, 2)),
                config=cfg,
            )
        )
    return tasks


class TestRunBlockTask:
    def test_improves_loglik(self):
        task = make_tasks()[0]
        res = run_block_task(task)
        assert res.n_iters >= 1
        assert res.community_id == 0
        assert res.A_rows.shape == task.A_rows.shape

    def test_does_not_mutate_input_rows(self):
        task = make_tasks()[0]
        before = task.A_rows.copy()
        run_block_task(task)
        assert np.array_equal(task.A_rows, before)

    def test_work_units(self):
        task = make_tasks()[0]
        res = run_block_task(task)
        assert res.work_units == res.n_iters * task.n_infections

    def test_n_infections(self):
        assert make_tasks()[0].n_infections == 5

    def test_wall_seconds_positive(self):
        res = run_block_task(make_tasks()[0])
        assert res.wall_seconds > 0


class TestSerialBackend:
    def test_runs_all_tasks(self):
        results = SerialBackend().run_level(make_tasks())
        assert [r.community_id for r in results] == [0, 1]

    def test_deterministic(self):
        r1 = SerialBackend().run_level(make_tasks())
        r2 = SerialBackend().run_level(make_tasks())
        for a, b in zip(r1, r2):
            assert np.array_equal(a.A_rows, b.A_rows)
            assert np.array_equal(a.B_rows, b.B_rows)

    def test_empty_level(self):
        assert SerialBackend().run_level([]) == []


class TestMultiprocessBackend:
    def test_matches_serial_exactly(self):
        serial = SerialBackend().run_level(make_tasks())
        with MultiprocessBackend(n_workers=2) as backend:
            parallel = backend.run_level(make_tasks())
        for s, p in zip(serial, parallel):
            assert np.allclose(s.A_rows, p.A_rows)
            assert np.allclose(s.B_rows, p.B_rows)
            assert s.n_iters == p.n_iters
            assert s.final_loglik == pytest.approx(p.final_loglik)

    def test_empty_level(self):
        with MultiprocessBackend(n_workers=1) as backend:
            assert backend.run_level([]) == []

    def test_reuse_across_levels(self):
        with MultiprocessBackend(n_workers=2) as backend:
            r1 = backend.run_level(make_tasks(seed=1))
            r2 = backend.run_level(make_tasks(seed=2))
        assert len(r1) == len(r2) == 2

    def test_closed_backend_rejects(self):
        backend = MultiprocessBackend(n_workers=1)
        backend.close()
        with pytest.raises(RuntimeError):
            backend.run_level(make_tasks())

    def test_close_idempotent(self):
        backend = MultiprocessBackend(n_workers=1)
        backend.close()
        backend.close()

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            MultiprocessBackend(n_workers=0)


def test_run_block_task_rejects_arena_only_task():
    t = make_tasks()[0]
    t.cascade_nodes = None
    t.cascade_times = None
    t.arena_positions = np.empty(0, dtype=np.int64)
    t.arena_sub_offsets = np.zeros(1, dtype=np.int64)
    with pytest.raises(ValueError, match="arena-backed"):
        run_block_task(t)


class TestEmptyNodeLevels:
    """A level whose tasks all have empty node sets must not crash."""

    def _empty_task(self, cid):
        return BlockTask(
            community_id=cid,
            nodes=np.empty(0, dtype=np.int64),
            cascade_nodes=[],
            cascade_times=[],
            A_rows=np.empty((0, 2)),
            B_rows=np.empty((0, 2)),
            config=OptimizerConfig(max_iters=5),
        )

    def test_all_empty_returns_empty_rows(self):
        with MultiprocessBackend(n_workers=1) as backend:
            results = backend.run_level([self._empty_task(0), self._empty_task(1)])
        assert [r.community_id for r in results] == [0, 1]
        for r in results:
            assert r.nodes.size == 0
            assert r.A_rows.shape == (0, 2)
            assert r.n_iters == 0
            assert r.work_units == 0

    def test_mixed_empty_and_real(self):
        tasks = make_tasks()
        tasks.append(self._empty_task(9))
        with MultiprocessBackend(n_workers=2) as backend:
            results = backend.run_level(tasks)
        assert [r.community_id for r in results] == [0, 1, 9]
        assert results[2].A_rows.shape == (0, 2)


class TestLeakSafety:
    def test_unclosed_backend_is_reaped_by_gc(self):
        import gc

        backend = MultiprocessBackend(n_workers=1)
        resources = backend._resources
        pool = backend._pool
        del backend
        gc.collect()
        assert resources.released
        # a terminated pool rejects further work
        with pytest.raises(ValueError):
            pool.apply(int, ("1",))

    def test_init_failure_reaps_pool(self, monkeypatch):
        from repro.parallel import costmodel

        def boom(*a, **k):
            raise RuntimeError("injected")

        monkeypatch.setattr(costmodel, "DispatchCostEstimator", boom)
        created = []
        real_ctx = mp.get_context("fork")

        class Ctx:
            def Pool(self, n):
                pool = real_ctx.Pool(n)
                created.append(pool)
                return pool

        monkeypatch.setattr(mp, "get_context", lambda method: Ctx())
        with pytest.raises(RuntimeError, match="injected"):
            MultiprocessBackend(n_workers=1)
        assert len(created) == 1
        with pytest.raises(ValueError):
            created[0].apply(int, ("1",))

    def test_close_releases_resources(self):
        backend = MultiprocessBackend(n_workers=1)
        backend.run_level(make_tasks())
        backend.close()
        assert backend._resources.released


class TestDispatchOrderingAndProfiles:
    def test_lpt_order_does_not_change_results(self):
        serial = SerialBackend().run_level(make_tasks())
        with MultiprocessBackend(n_workers=2) as backend:
            parallel = backend.run_level(make_tasks())
        for s, p in zip(serial, parallel):
            assert np.array_equal(s.A_rows, p.A_rows)
            assert np.array_equal(s.B_rows, p.B_rows)
            assert s.n_iters == p.n_iters

    def test_estimator_calibrates_across_levels(self):
        with MultiprocessBackend(n_workers=2) as backend:
            assert backend.estimator.n_observed_levels == 0
            backend.run_level(make_tasks(seed=1))
            assert backend.estimator.n_observed_levels == 1
            assert backend.estimator.seconds_per_work_unit is not None
            backend.run_level(make_tasks(seed=2))
            assert backend.estimator.n_observed_levels == 2

    def test_level_profiles_recorded(self):
        with MultiprocessBackend(n_workers=2, profile_dispatch=True) as backend:
            backend.run_level(make_tasks())
        (stats,) = backend.level_profiles
        assert stats.mode == "legacy"  # no prepare() -> materialized path
        assert stats.n_tasks == 2
        assert stats.payload_bytes > 0
        assert stats.payload_pickle_seconds > 0
        # workers time themselves concurrently, so compute may exceed the
        # parent's wall; both are simply nonnegative measurements
        assert stats.wall_seconds > 0
        assert stats.compute_seconds > 0
        assert stats.overhead_seconds >= 0


class TestArenaDispatch:
    def _world(self):
        from repro.cascades.types import Cascade, CascadeSet

        cs = CascadeSet(6)
        cs.append(Cascade([0, 1, 2], [0.0, 0.3, 0.9]))
        cs.append(Cascade([3, 4], [0.0, 0.7]))
        cs.append(Cascade([1, 0, 5], [0.0, 0.2, 1.1]))
        cs.append(Cascade([2, 1], [0.0, 0.4]))
        return cs

    def _fit_pair(self, use_arena):
        from repro.community.mergetree import MergeTree
        from repro.community.partition import Partition
        from repro.embedding.model import EmbeddingModel
        from repro.parallel.hierarchical import HierarchicalInference

        cs = self._world()
        tree = MergeTree(Partition([0, 0, 0, 1, 1, 0]), stop_at=1)
        cfg = OptimizerConfig(max_iters=10)
        model = EmbeddingModel.random(6, 2, seed=3)
        with MultiprocessBackend(n_workers=2, use_arena=use_arena) as backend:
            HierarchicalInference(tree, cfg, backend).fit(model, cs)
            modes = [p.mode for p in backend.level_profiles]
        return model, modes

    def test_arena_mode_used_and_matches_legacy(self):
        m_arena, modes_arena = self._fit_pair(use_arena=True)
        m_legacy, modes_legacy = self._fit_pair(use_arena=False)
        assert set(modes_arena) == {"arena"}
        assert set(modes_legacy) == {"legacy"}
        assert np.array_equal(m_arena.A, m_legacy.A)
        assert np.array_equal(m_arena.B, m_legacy.B)

    def test_prepare_returns_none_when_disabled(self):
        with MultiprocessBackend(n_workers=1, use_arena=False) as backend:
            assert backend.prepare(self._world()) is None

    def test_prepare_after_close_raises(self):
        backend = MultiprocessBackend(n_workers=1)
        backend.close()
        with pytest.raises(RuntimeError):
            backend.prepare(self._world())
