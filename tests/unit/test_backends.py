"""Unit tests for execution backends (serial and multiprocess)."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig
from repro.parallel.backends import (
    BlockTask,
    MultiprocessBackend,
    SerialBackend,
    run_block_task,
)


def make_tasks(seed=0, n_comm=2):
    """Two disjoint communities with their own small corpora."""
    rng = np.random.default_rng(seed)
    tasks = []
    cfg = OptimizerConfig(max_iters=15)
    for cid in range(n_comm):
        nodes = np.arange(cid * 3, cid * 3 + 3)
        cascade_nodes = [np.array([0, 1, 2]), np.array([1, 2])]
        cascade_times = [np.array([0.0, 0.3, 0.8]), np.array([0.0, 0.5])]
        tasks.append(
            BlockTask(
                community_id=cid,
                nodes=nodes,
                cascade_nodes=cascade_nodes,
                cascade_times=cascade_times,
                A_rows=rng.uniform(0.1, 1.0, size=(3, 2)),
                B_rows=rng.uniform(0.1, 1.0, size=(3, 2)),
                config=cfg,
            )
        )
    return tasks


class TestRunBlockTask:
    def test_improves_loglik(self):
        task = make_tasks()[0]
        res = run_block_task(task)
        assert res.n_iters >= 1
        assert res.community_id == 0
        assert res.A_rows.shape == task.A_rows.shape

    def test_does_not_mutate_input_rows(self):
        task = make_tasks()[0]
        before = task.A_rows.copy()
        run_block_task(task)
        assert np.array_equal(task.A_rows, before)

    def test_work_units(self):
        task = make_tasks()[0]
        res = run_block_task(task)
        assert res.work_units == res.n_iters * task.n_infections

    def test_n_infections(self):
        assert make_tasks()[0].n_infections == 5

    def test_wall_seconds_positive(self):
        res = run_block_task(make_tasks()[0])
        assert res.wall_seconds > 0


class TestSerialBackend:
    def test_runs_all_tasks(self):
        results = SerialBackend().run_level(make_tasks())
        assert [r.community_id for r in results] == [0, 1]

    def test_deterministic(self):
        r1 = SerialBackend().run_level(make_tasks())
        r2 = SerialBackend().run_level(make_tasks())
        for a, b in zip(r1, r2):
            assert np.array_equal(a.A_rows, b.A_rows)
            assert np.array_equal(a.B_rows, b.B_rows)

    def test_empty_level(self):
        assert SerialBackend().run_level([]) == []


class TestMultiprocessBackend:
    def test_matches_serial_exactly(self):
        serial = SerialBackend().run_level(make_tasks())
        with MultiprocessBackend(n_workers=2) as backend:
            parallel = backend.run_level(make_tasks())
        for s, p in zip(serial, parallel):
            assert np.allclose(s.A_rows, p.A_rows)
            assert np.allclose(s.B_rows, p.B_rows)
            assert s.n_iters == p.n_iters
            assert s.final_loglik == pytest.approx(p.final_loglik)

    def test_empty_level(self):
        with MultiprocessBackend(n_workers=1) as backend:
            assert backend.run_level([]) == []

    def test_reuse_across_levels(self):
        with MultiprocessBackend(n_workers=2) as backend:
            r1 = backend.run_level(make_tasks(seed=1))
            r2 = backend.run_level(make_tasks(seed=2))
        assert len(r1) == len(r2) == 2

    def test_closed_backend_rejects(self):
        backend = MultiprocessBackend(n_workers=1)
        backend.close()
        with pytest.raises(RuntimeError):
            backend.run_level(make_tasks())

    def test_close_idempotent(self):
        backend = MultiprocessBackend(n_workers=1)
        backend.close()
        backend.close()

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            MultiprocessBackend(n_workers=0)
