"""Unit tests for hazard kernels and the kernel-generic link model."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.hazards import (
    ExponentialKernel,
    PowerLawKernel,
    RayleighKernel,
    get_kernel,
)
from repro.embedding.linkmodel import LinkRateModel


@pytest.fixture(params=["exponential", "rayleigh", "powerlaw"])
def kernel(request):
    return get_kernel(request.param)


class TestKernelAlgebra:
    def test_factory(self):
        assert isinstance(get_kernel("exponential"), ExponentialKernel)
        assert isinstance(get_kernel("rayleigh"), RayleighKernel)
        assert isinstance(get_kernel("powerlaw", delta=0.5), PowerLawKernel)

    def test_factory_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("weibull")

    def test_g_is_integral_of_k(self, kernel):
        """g(τ) = ∫₀^τ k(s) ds, checked numerically."""
        taus = np.linspace(0.05, 3.0, 8)
        for tau in taus:
            s = np.linspace(1e-9, tau, 20001)
            integral = np.trapezoid(kernel.k(s), s)
            assert kernel.g(np.array([tau]))[0] == pytest.approx(
                integral, rel=1e-3
            )

    def test_survival_at_zero_is_one(self, kernel):
        assert kernel.survival(np.array([0.0]), rate=2.0)[0] == pytest.approx(1.0)

    def test_survival_decreasing(self, kernel):
        taus = np.linspace(0.0, 5.0, 50)
        s = kernel.survival(taus, rate=1.5)
        assert np.all(np.diff(s) <= 1e-12)

    def test_survival_rejects_negative_delay(self, kernel):
        with pytest.raises(ValueError):
            kernel.survival(np.array([-0.1]), rate=1.0)

    def test_density_integrates_to_at_most_one(self, kernel):
        """∫ f = 1 - S(∞) <= 1 (the transmission may never happen for
        kernels with bounded cumulative hazard)."""
        taus = np.linspace(1e-9, 60.0, 600001)
        f = kernel.density(taus, rate=0.8)
        total = np.trapezoid(f, taus)
        assert total <= 1.0 + 1e-6
        assert total > 0.3

    def test_powerlaw_delta_validation(self):
        with pytest.raises(ValueError):
            PowerLawKernel(delta=0.0)

    def test_exponential_density_is_exponential(self):
        k = ExponentialKernel()
        taus = np.array([0.0, 0.5, 1.0])
        rate = 2.0
        assert np.allclose(k.density(taus, rate), rate * np.exp(-rate * taus))


class TestKernelGenericLinkModel:
    @pytest.fixture
    def corpus(self):
        cs = CascadeSet(3)
        rng = np.random.default_rng(0)
        for _ in range(40):
            d1, d2 = rng.uniform(0.1, 1.0, size=2)
            cs.append(Cascade([0, 1, 2], [0.0, d1, d1 + d2]))
        return cs

    @pytest.mark.parametrize("name", ["exponential", "rayleigh", "powerlaw"])
    def test_fit_improves_likelihood(self, corpus, name):
        model = LinkRateModel(3, kernel=get_kernel(name))
        history = model.fit(corpus, max_iters=60, seed=1)
        assert history[-1] > history[0]
        assert np.all(model.rates >= 0)

    def test_rayleigh_mle_known_value(self):
        """Single link with Rayleigh delays: MLE λ = 2n / Σ τ²...
        here, with likelihood λ-linear form: λ* = (k)/Σ g(τ) = 1/mean(τ²/2)."""
        delays = np.array([0.5, 1.0, 1.5, 0.8])
        cs = CascadeSet(2)
        for d in delays:
            cs.append(Cascade([0, 1], [0.0, float(d)]))
        model = LinkRateModel(2, kernel=RayleighKernel())
        model.fit(cs, max_iters=500, learning_rate=0.2, seed=2)
        expected = 1.0 / np.mean(delays**2 / 2)
        assert model.rate(0, 1) == pytest.approx(expected, rel=0.05)

    def test_kernels_give_different_fits(self, corpus):
        rates = {}
        for name in ("exponential", "rayleigh"):
            m = LinkRateModel(3, kernel=get_kernel(name))
            m.fit(corpus, max_iters=80, seed=3)
            rates[name] = m.rate(0, 1)
        assert rates["exponential"] != pytest.approx(rates["rayleigh"], rel=1e-3)
