"""Unit tests for co-occurrence graph construction."""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.cooccurrence.build import (
    build_cooccurrence_graph,
    build_coreporting_backbone,
    ordered_pair_counts,
)


@pytest.fixture
def corpus() -> CascadeSet:
    cs = CascadeSet(4)
    cs.append(Cascade([0, 1, 2], [0.0, 1.0, 2.0]))
    cs.append(Cascade([0, 1], [0.0, 1.0]))
    cs.append(Cascade([1, 0], [0.0, 1.0]))
    return cs


class TestOrderedPairCounts:
    def test_counts(self, corpus):
        c = ordered_pair_counts(corpus)
        assert c[(0, 1)] == 2  # cascades 0 and 1
        assert c[(1, 0)] == 1  # cascade 2
        assert c[(0, 2)] == 1
        assert c[(1, 2)] == 1
        assert (2, 0) not in c

    def test_simultaneous_infections_excluded(self):
        cs = CascadeSet(3, [Cascade([0, 1], [1.0, 1.0])])
        assert ordered_pair_counts(cs) == {}

    def test_empty_corpus(self):
        assert ordered_pair_counts(CascadeSet(3)) == {}

    def test_singleton_cascades_ignored(self):
        cs = CascadeSet(3, [Cascade([0], [0.0]), Cascade([1], [0.0])])
        assert ordered_pair_counts(cs) == {}


class TestCooccurrenceGraph:
    def test_dice_weight_formula(self, corpus):
        g = build_cooccurrence_graph(corpus)
        # c(0)=3, c(1)=3, c(0,1)=2 -> w = 2*2/(3+3)
        assert g.edge_weight(0, 1) == pytest.approx(2 * 2 / 6)
        assert g.edge_weight(1, 0) == pytest.approx(2 * 1 / 6)

    def test_weights_in_unit_interval(self, corpus):
        g = build_cooccurrence_graph(corpus)
        _, _, w = g.edge_arrays()
        assert np.all(w > 0) and np.all(w <= 1)

    def test_node_always_before_gives_weight_one(self):
        cs = CascadeSet(2, [Cascade([0, 1], [0.0, 1.0])] )
        g = build_cooccurrence_graph(cs)
        assert g.edge_weight(0, 1) == pytest.approx(1.0)

    def test_empty(self):
        g = build_cooccurrence_graph(CascadeSet(5))
        assert g.n_edges == 0 and g.n_nodes == 5


class TestBackbone:
    def test_threshold_filters(self, corpus):
        g = build_coreporting_backbone(corpus, min_count=3)
        # pair {0,1} co-appears 3 times; {0,2}, {1,2} once
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_symmetric(self, corpus):
        g = build_coreporting_backbone(corpus, min_count=1)
        src, dst, _ = g.edge_arrays()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_counts_as_weights(self, corpus):
        g = build_coreporting_backbone(corpus, min_count=1)
        assert g.edge_weight(0, 1) == 3.0

    def test_min_count_validation(self, corpus):
        with pytest.raises(ValueError):
            build_coreporting_backbone(corpus, min_count=0)

    def test_empty(self):
        g = build_coreporting_backbone(CascadeSet(4), min_count=1)
        assert g.n_edges == 0
