"""Unit tests for the two-sweep gradients (Eq. 12-16)."""

import numpy as np
import pytest

from repro.cascades.types import Cascade
from repro.embedding.gradients import (
    accumulate_gradients,
    cascade_gradients,
    numerical_gradients,
)
from repro.embedding.likelihood import log_likelihood
from repro.embedding.model import EmbeddingModel


@pytest.fixture
def model5():
    # strictly positive entries keep the likelihood smooth for FD checks
    rng = np.random.default_rng(3)
    A = rng.uniform(0.3, 1.0, size=(5, 3))
    B = rng.uniform(0.3, 1.0, size=(5, 3))
    return EmbeddingModel(A, B)


class TestAgainstFiniteDifferences:
    def test_simple_cascade(self, model5):
        c = Cascade([0, 2, 4], [0.0, 0.4, 1.1])
        gA, gB, _ = cascade_gradients(model5, c)
        nA, nB = numerical_gradients(model5, c)
        assert np.allclose(gA, nA, atol=1e-5)
        assert np.allclose(gB, nB, atol=1e-5)

    def test_cascade_with_ties(self, model5):
        c = Cascade([0, 1, 2, 3], [0.0, 0.5, 0.5, 1.0])
        gA, gB, _ = cascade_gradients(model5, c)
        nA, nB = numerical_gradients(model5, c)
        assert np.allclose(gA, nA, atol=1e-5)
        assert np.allclose(gB, nB, atol=1e-5)

    def test_long_cascade(self):
        rng = np.random.default_rng(8)
        A = rng.uniform(0.2, 1.0, size=(10, 2))
        B = rng.uniform(0.2, 1.0, size=(10, 2))
        m = EmbeddingModel(A, B)
        nodes = rng.permutation(10)[:7]
        times = np.sort(rng.uniform(0, 2, size=7))
        c = Cascade(nodes, times)
        gA, gB, _ = cascade_gradients(m, c)
        nA, nB = numerical_gradients(m, c)
        assert np.allclose(gA, nA, atol=1e-4)
        assert np.allclose(gB, nB, atol=1e-4)


class TestAccumulation:
    def test_returns_loglik(self, model5):
        c = Cascade([0, 1], [0.0, 0.5])
        gA = np.zeros_like(model5.A)
        gB = np.zeros_like(model5.B)
        ll = accumulate_gradients(model5.A, model5.B, c, gA, gB)
        assert ll == pytest.approx(log_likelihood(model5, c))

    def test_accumulates_across_cascades(self, model5):
        c1 = Cascade([0, 1], [0.0, 0.5])
        c2 = Cascade([1, 2], [0.0, 0.3])
        gA = np.zeros_like(model5.A)
        gB = np.zeros_like(model5.B)
        accumulate_gradients(model5.A, model5.B, c1, gA, gB)
        accumulate_gradients(model5.A, model5.B, c2, gA, gB)
        g1A, g1B, _ = cascade_gradients(model5, c1)
        g2A, g2B, _ = cascade_gradients(model5, c2)
        assert np.allclose(gA, g1A + g2A)
        assert np.allclose(gB, g1B + g2B)

    def test_small_cascades_are_noops(self, model5):
        gA = np.zeros_like(model5.A)
        gB = np.zeros_like(model5.B)
        ll = accumulate_gradients(model5.A, model5.B, Cascade([2], [0.0]), gA, gB)
        assert ll == 0.0
        assert np.all(gA == 0) and np.all(gB == 0)

    def test_untouched_nodes_zero_grad(self, model5):
        c = Cascade([0, 1], [0.0, 0.5])
        gA, gB, _ = cascade_gradients(model5, c)
        assert np.all(gA[[2, 3, 4]] == 0)
        assert np.all(gB[[2, 3, 4]] == 0)

    def test_source_B_gradient_zero(self, model5):
        # The source has no predecessors, so no term involves B_source.
        c = Cascade([3, 1, 0], [0.0, 0.2, 0.9])
        _, gB, _ = cascade_gradients(model5, c)
        assert np.all(gB[3] == 0)

    def test_last_node_A_gradient_zero(self, model5):
        # The last infection influences nobody later in the cascade.
        c = Cascade([3, 1, 0], [0.0, 0.2, 0.9])
        gA, _, _ = cascade_gradients(model5, c)
        assert np.all(gA[0] == 0)


class TestGradientStructure:
    def test_ascent_direction_increases_likelihood(self, model5):
        c = Cascade([0, 1, 2], [0.0, 0.4, 0.9])
        gA, gB, ll0 = cascade_gradients(model5, c)
        eps = 1e-4
        m2 = model5.copy()
        m2.A += eps * gA
        m2.B += eps * gB
        assert log_likelihood(m2, c) > ll0

    def test_eq12_second_term_positive_for_B(self, model5):
        """The H/denominator term always pushes B_v toward its infectors."""
        c = Cascade([0, 1], [0.0, 1e-9])  # negligible delay: linear term ~0
        _, gB, _ = cascade_gradients(model5, c)
        assert np.all(gB[1] > 0)
