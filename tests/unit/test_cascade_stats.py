"""Unit tests for cascade statistics."""

import numpy as np
import pytest

from repro.cascades.stats import (
    cascade_durations,
    cascade_sizes,
    duration_quantiles,
    node_participation_counts,
    size_histogram,
)
from repro.cascades.types import Cascade, CascadeSet


class TestBasicStats:
    def test_sizes(self, small_corpus):
        assert cascade_sizes(small_corpus).tolist() == [3, 2, 3, 2]

    def test_durations(self, small_corpus):
        d = cascade_durations(small_corpus)
        assert d[0] == pytest.approx(0.9)
        assert d[1] == pytest.approx(0.7)

    def test_participation_counts(self, small_corpus):
        counts = node_participation_counts(small_corpus)
        # node 1 appears in cascades 0, 2, 3
        assert counts[1] == 3
        assert counts.sum() == small_corpus.total_infections()

    def test_participation_empty_corpus(self):
        counts = node_participation_counts(CascadeSet(4))
        assert counts.tolist() == [0, 0, 0, 0]


class TestSizeHistogram:
    def test_bins_cover_sizes(self, small_corpus):
        edges, counts = size_histogram(small_corpus, bin_width=2)
        assert counts.sum() == 4
        assert edges[0] == 0

    def test_empty(self):
        edges, counts = size_histogram(CascadeSet(3), bin_width=50)
        assert counts.tolist() == [0]

    def test_bad_bin_width(self, small_corpus):
        with pytest.raises(ValueError):
            size_histogram(small_corpus, bin_width=0)

    def test_edges_count_relation(self, small_corpus):
        edges, counts = size_histogram(small_corpus, bin_width=1)
        assert len(edges) == len(counts) + 1


class TestDurationQuantiles:
    def test_quantiles_ordering(self, small_corpus):
        q = duration_quantiles(small_corpus, qs=(0.1, 0.5, 0.9))
        assert q[0.1] <= q[0.5] <= q[0.9]

    def test_empty_corpus(self):
        q = duration_quantiles(CascadeSet(2))
        assert all(v == 0.0 for v in q.values())
