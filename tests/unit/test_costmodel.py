"""Unit tests for the parallel cost model."""

import numpy as np
import pytest

from repro.parallel.costmodel import CostModelParams, ParallelCostModel, lpt_makespan


class TestLPT:
    def test_single_core_is_sum(self):
        assert lpt_makespan([3, 1, 2], 1) == 6

    def test_many_cores_is_max(self):
        assert lpt_makespan([3, 1, 2], 10) == 3

    def test_two_cores_balanced(self):
        # LPT on [3,3,2,2] with 2 cores: 3+2 / 3+2 -> makespan 5
        assert lpt_makespan([3, 3, 2, 2], 2) == 5

    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_zero_durations_skipped(self):
        assert lpt_makespan([0, 0, 5], 2) == 5

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            lpt_makespan([1], 0)

    def test_makespan_never_below_max_or_mean(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            jobs = rng.uniform(0.1, 5, size=12)
            p = int(rng.integers(1, 8))
            ms = lpt_makespan(jobs, p)
            assert ms >= max(jobs) - 1e-12
            assert ms >= jobs.sum() / p - 1e-12


class TestCostModelParams:
    def test_defaults_valid(self):
        CostModelParams()

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModelParams(seconds_per_work_unit=0.0)
        with pytest.raises(ValueError):
            CostModelParams(alpha0=-1.0)


class TestParallelCostModel:
    @pytest.fixture
    def model(self):
        # Two levels: 8 equal communities, then 1 root community.
        return ParallelCostModel(
            level_work_units=[[1000] * 8, [4000]],
            level_rows=[[10] * 8, [80]],
            params=CostModelParams(seconds_per_work_unit=1e-4),
        )

    def test_t1_is_serial_sum(self, model):
        t1 = model.execution_time(1)
        expected = (8 * 1000 + 4000) * 1e-4
        assert t1 == pytest.approx(expected)

    def test_time_decreases_with_cores_initially(self, model):
        t1, t2, t4 = (model.execution_time(p) for p in (1, 2, 4))
        assert t1 > t2 > t4

    def test_speedup_bounded_by_parallel_fraction(self, model):
        # The root level (4000 units) is inherently serial: speedup can
        # never exceed total/root.
        bound = (8000 + 4000) / 4000
        for p in (2, 4, 8, 16, 64):
            assert model.speedup(p) <= bound + 1e-9

    def test_efficiency_declines(self, model):
        effs = [model.efficiency(p) for p in (1, 2, 8, 64)]
        assert effs[0] == pytest.approx(1.0)
        assert effs[-1] < effs[1]

    def test_curves_structure(self, model):
        cores = [1, 2, 4]
        c = model.curves(cores)
        assert c["cores"] == cores
        assert len(c["time"]) == 3
        assert c["speedup"][0] == pytest.approx(1.0)
        assert c["efficiency"] == [
            pytest.approx(s / p) for s, p in zip(c["speedup"], cores)
        ]

    def test_comm_overhead_grows_with_cores(self):
        m = ParallelCostModel(
            [[100] * 64],
            [[5] * 64],
            CostModelParams(seconds_per_work_unit=1e-6, alpha1=1e-3),
        )
        # with tiny compute, large p is dominated by the barrier term
        assert m.execution_time(64) > m.execution_time(8)

    def test_serial_seconds_amdahl(self):
        m = ParallelCostModel(
            [[1000] * 4],
            [[5] * 4],
            CostModelParams(seconds_per_work_unit=1e-3, serial_seconds=10.0),
        )
        assert m.speedup(4) < 1.4  # dominated by the serial term

    def test_invalid_p(self, model):
        with pytest.raises(ValueError):
            model.execution_time(0)

    def test_level_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ParallelCostModel([[1]], [[1], [2]])


class TestCalibration:
    def test_calibrated_matches_measured_serial_time(self):
        from repro.parallel.hierarchical import HierarchicalResult, LevelStats

        result = HierarchicalResult()
        ls = LevelStats(level=0, n_communities=2)
        ls.wall_seconds = [0.5, 1.5]
        ls.work_units = [500, 1500]
        ls.rows_touched = [10, 30]
        result.levels.append(ls)
        model = ParallelCostModel.calibrated(result)
        assert model.execution_time(1) == pytest.approx(2.0)

    def test_from_result(self):
        from repro.parallel.hierarchical import HierarchicalResult, LevelStats

        result = HierarchicalResult()
        ls = LevelStats(level=0, n_communities=1)
        ls.wall_seconds = [1.0]
        ls.work_units = [100]
        ls.rows_touched = [5]
        result.levels.append(ls)
        m = ParallelCostModel.from_result(result)
        assert m.level_work_units == [[100]]


class TestDispatchCostEstimator:
    def test_cold_start_orders_by_infections(self):
        from repro.parallel.costmodel import DispatchCostEstimator

        est = DispatchCostEstimator()
        assert est.order([10, 500, 50]) == [1, 2, 0]

    def test_ties_break_by_index(self):
        from repro.parallel.costmodel import DispatchCostEstimator

        est = DispatchCostEstimator()
        assert est.order([5, 5, 5]) == [0, 1, 2]

    def test_observation_calibrates_iters_and_seconds(self):
        from repro.parallel.costmodel import DispatchCostEstimator

        est = DispatchCostEstimator()
        assert est.predict_seconds(100) is None
        # 2 tasks, 10 iters each: work = 10 * infections
        est.observe_level(
            work_units=[1000, 500], infections=[100, 50], wall_seconds=[1.0, 0.5]
        )
        assert est.iters_per_task == pytest.approx(10.0)
        assert est.seconds_per_work_unit == pytest.approx(1e-3)
        assert est.predict_seconds(100) == pytest.approx(1.0)
        assert est.n_observed_levels == 1

    def test_ema_smoothing(self):
        from repro.parallel.costmodel import DispatchCostEstimator

        est = DispatchCostEstimator(smoothing=0.5)
        est.observe_level([1000], [100], [1.0])
        est.observe_level([2000], [100], [1.0])
        assert est.iters_per_task == pytest.approx(15.0)

    def test_empty_observation_ignored(self):
        from repro.parallel.costmodel import DispatchCostEstimator

        est = DispatchCostEstimator()
        est.observe_level([], [], [])
        assert est.n_observed_levels == 0

    def test_validation(self):
        from repro.parallel.costmodel import DispatchCostEstimator

        with pytest.raises(ValueError):
            DispatchCostEstimator(prior_iters=0)
        with pytest.raises(ValueError):
            DispatchCostEstimator(smoothing=0.0)
