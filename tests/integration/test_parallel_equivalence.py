"""Integration: serial and multiprocess engines must agree numerically.

This is the paper's central systems claim — the community decomposition
makes parallel execution conflict-free, so parallelism changes *nothing*
about the result (§IV-B: write-write conflicts "can be completely
avoided").
"""

import numpy as np
import pytest

from repro.cascades.simulate import simulate_corpus
from repro.community.mergetree import MergeTree
from repro.community.partition import Partition
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig
from repro.graphs.generators import stochastic_block_model
from repro.parallel.backends import MultiprocessBackend, SerialBackend
from repro.parallel.hierarchical import HierarchicalInference


@pytest.fixture(scope="module")
def world():
    graph, membership = stochastic_block_model(
        80, 20, p_in=0.4, p_out=0.01, seed=0
    )
    cascades = simulate_corpus(graph, 50, window=0.5, seed=1, min_size=2)
    return cascades, Partition(membership)


class TestSerialParallelEquivalence:
    def test_embeddings_identical(self, world):
        cascades, part = world
        cfg = OptimizerConfig(max_iters=20)
        tree = MergeTree(part, stop_at=1)

        m_serial = EmbeddingModel.random(80, 3, seed=7)
        HierarchicalInference(tree, cfg, SerialBackend()).fit(m_serial, cascades)

        m_par = EmbeddingModel.random(80, 3, seed=7)
        with MultiprocessBackend(n_workers=3) as backend:
            HierarchicalInference(tree, cfg, backend).fit(m_par, cascades)

        assert np.allclose(m_serial.A, m_par.A, atol=1e-12)
        assert np.allclose(m_serial.B, m_par.B, atol=1e-12)

    def test_level_stats_match(self, world):
        cascades, part = world
        cfg = OptimizerConfig(max_iters=10)
        tree = MergeTree(part, stop_at=1)

        m1 = EmbeddingModel.random(80, 3, seed=8)
        r1 = HierarchicalInference(tree, cfg, SerialBackend()).fit(m1, cascades)
        m2 = EmbeddingModel.random(80, 3, seed=8)
        with MultiprocessBackend(n_workers=2) as backend:
            r2 = HierarchicalInference(tree, cfg, backend).fit(m2, cascades)

        for l1, l2 in zip(r1.levels, r2.levels):
            assert l1.work_units == l2.work_units
            assert l1.iterations == l2.iterations
            assert l1.logliks == pytest.approx(l2.logliks)

    def test_worker_count_does_not_change_result(self, world):
        cascades, part = world
        cfg = OptimizerConfig(max_iters=8)
        tree = MergeTree(part, stop_at=2)
        models = []
        for workers in (1, 2, 4):
            m = EmbeddingModel.random(80, 3, seed=9)
            with MultiprocessBackend(n_workers=workers) as backend:
                HierarchicalInference(tree, cfg, backend).fit(m, cascades)
            models.append(m)
        for other in models[1:]:
            assert np.allclose(models[0].A, other.A, atol=1e-12)
            assert np.allclose(models[0].B, other.B, atol=1e-12)
