"""Integration: the full paper pipeline on small instances.

SBM corpus → co-occurrence graph → SLPA → merge tree → hierarchical
inference → early-adopter features → SVM prediction, and the same for the
synthetic GDELT world.
"""

import numpy as np
import pytest

from repro.cooccurrence import build_cooccurrence_graph
from repro.community import slpa
from repro.datasets.gdelt import GDELTConfig, SyntheticGDELT
from repro.datasets.sbm_corpus import make_sbm_experiment
from repro.embedding.optimizer import OptimizerConfig
from repro.parallel.costmodel import ParallelCostModel
from repro.parallel.hierarchical import infer_embeddings
from repro.prediction import threshold_sweep


@pytest.fixture(scope="module")
def sbm_run():
    exp = make_sbm_experiment(
        n_nodes=400, community_size=40, n_train=300, n_test=120, seed=0
    )
    model, result, tree = infer_embeddings(exp.train, n_topics=10, seed=0)
    return exp, model, result, tree


class TestSBMPipeline:
    def test_slpa_recovers_planted_partition(self, sbm_run):
        exp, *_ = sbm_run
        g = build_cooccurrence_graph(exp.train).filter_edges(0.1)
        p = slpa(g, seed=1)
        assert p.agreement(exp.planted_partition) > 0.9

    def test_loglik_ascends_within_each_level(self, sbm_run):
        _, _, result, _ = sbm_run
        for level in result.levels:
            assert all(np.isfinite(l) for l in level.logliks)

    def test_prediction_beats_chance_at_median(self, sbm_run):
        exp, model, _, _ = sbm_run
        med = int(np.median(exp.test.sizes()))
        sweep = threshold_sweep(
            model, exp.test, thresholds=[med], window=exp.window, seed=0
        )
        # random guessing at a balanced threshold gives F1 ~ 0.5
        assert sweep.f1[0] > 0.6

    def test_f1_declines_with_threshold(self, sbm_run):
        exp, model, _, _ = sbm_run
        sizes = exp.test.sizes()
        lo = int(np.quantile(sizes, 0.3))
        hi = int(np.quantile(sizes, 0.97))
        sweep = threshold_sweep(
            model, exp.test, thresholds=[lo, hi], window=exp.window, seed=0
        )
        # rare positives are harder (the paper's "challenging" regime)
        assert sweep.positive_fraction[0] > sweep.positive_fraction[1]

    def test_cost_model_from_real_run(self, sbm_run):
        _, _, result, _ = sbm_run
        cm = ParallelCostModel.calibrated(result)
        t1 = cm.execution_time(1)
        assert t1 == pytest.approx(result.serial_seconds, rel=1e-6)
        s8 = cm.speedup(8)
        assert s8 > 1.0


class TestGDELTPipeline:
    @pytest.fixture(scope="class")
    def gdelt_run(self):
        world = SyntheticGDELT(GDELTConfig(n_sites=500), seed=5)
        events = world.sample_events(260, seed=6)
        train, test = world.split_for_prediction(events, 200)
        model, result, tree = infer_embeddings(
            train, n_topics=8, seed=7, config=OptimizerConfig(max_iters=40)
        )
        return world, model, test

    def test_prediction_runs_and_scores(self, gdelt_run):
        world, model, test = gdelt_run
        med = int(np.median(test.sizes()))
        sweep = threshold_sweep(
            model,
            test,
            thresholds=[med],
            early_fraction=world.early_fraction,
            window=world.config.window_hours,
            seed=0,
        )
        assert sweep.f1[0] > 0.5

    def test_influencer_ranking_prefers_popular_sites(self, gdelt_run):
        world, model, _ = gdelt_run
        from repro.analysis import rank_influencers

        top = [n for n, _ in rank_influencers(model, top_k=50)]
        top_pop = world.popularity[top].mean()
        assert top_pop > np.median(world.popularity)
