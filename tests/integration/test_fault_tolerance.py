"""Integration: injected worker faults must not change results.

The supervision loop's contract is that crashes, hangs, and exceptions
are invisible in the output: every fault path (retry, degradation rung,
pool respawn, reseed) reproduces the :class:`SerialBackend` embeddings
bit-for-bit, and no shared-memory segment outlives the backend.

Faults are driven by the test-only ``_FaultPlan`` shipped inside worker
payloads, so each scenario is deterministic — no reliance on timing.
"""

import os

import numpy as np
import pytest

from repro.cascades.simulate import simulate_corpus
from repro.community.mergetree import MergeTree
from repro.community.partition import Partition
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig
from repro.graphs.generators import stochastic_block_model
from repro.parallel.backends import MultiprocessBackend, SerialBackend
from repro.parallel.hierarchical import HierarchicalInference
from repro.parallel.supervision import _FaultPlan

pytestmark = pytest.mark.slow

N_NODES = 60


@pytest.fixture(scope="module")
def world():
    graph, membership = stochastic_block_model(
        N_NODES, 20, p_in=0.4, p_out=0.01, seed=0
    )
    cascades = simulate_corpus(graph, 40, window=0.5, seed=1, min_size=2)
    return cascades, Partition(membership)


@pytest.fixture(scope="module")
def reference(world):
    """SerialBackend ground truth (model, result)."""
    cascades, part = world
    cfg = OptimizerConfig(max_iters=15)
    tree = MergeTree(part, stop_at=1)
    model = EmbeddingModel.random(N_NODES, 3, seed=7)
    result = HierarchicalInference(tree, cfg, SerialBackend()).fit(model, cascades)
    return model, result


def _fit_with_faults(world, fault_plan, **backend_kwargs):
    cascades, part = world
    cfg = OptimizerConfig(max_iters=15)
    tree = MergeTree(part, stop_at=1)
    model = EmbeddingModel.random(N_NODES, 3, seed=7)
    backend = MultiprocessBackend(
        n_workers=2, _fault_plan=fault_plan, **backend_kwargs
    )
    with backend:
        result = HierarchicalInference(tree, cfg, backend).fit(model, cascades)
        respawns = backend.respawn_count
    return model, result, respawns


def _assert_identical(model, reference_model):
    np.testing.assert_array_equal(model.A, reference_model.A)
    np.testing.assert_array_equal(model.B, reference_model.B)


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestInjectedException:
    def test_bit_identical_and_logged(self, world, reference):
        ref_model, _ = reference
        plan = _FaultPlan(task_idx=0, action="raise", attempts=(0,))
        model, result, _ = _fit_with_faults(world, plan)
        _assert_identical(model, ref_model)
        assert result.total_retries >= 1
        assert {e.cause for e in result.fault_log} == {"exception"}
        assert all(e.task_idx == 0 for e in result.fault_log)

    def test_degradation_ladder_arena_then_serial(self, world, reference):
        ref_model, _ = reference
        # failing attempts 0 and 1 walks arena -> legacy -> serial
        plan = _FaultPlan(task_idx=0, action="raise", attempts=(0, 1))
        model, result, _ = _fit_with_faults(world, plan)
        _assert_identical(model, ref_model)
        per_level = {}
        for e in result.fault_log:
            per_level.setdefault(e.attempt, e.fallback)
        assert per_level[0] == "legacy"
        assert per_level[1] == "serial"


class TestWorkerCrash:
    def test_bit_identical_respawn_and_shm_clean(self, world, reference):
        ref_model, _ = reference
        before = _shm_entries()
        plan = _FaultPlan(task_idx=0, action="exit", attempts=(0,))
        model, result, respawns = _fit_with_faults(world, plan)
        _assert_identical(model, ref_model)
        assert respawns >= 1
        assert any(e.cause == "crash" for e in result.fault_log)
        # the backend exited its context: every segment it created
        # (arena, selection, A/B) must be gone despite the respawns
        leaked = _shm_entries() - before
        assert leaked == set(), f"leaked shared memory: {leaked}"

    def test_crash_in_legacy_mode(self, world, reference):
        ref_model, _ = reference
        plan = _FaultPlan(task_idx=0, action="exit", attempts=(0,))
        model, result, respawns = _fit_with_faults(world, plan, use_arena=False)
        _assert_identical(model, ref_model)
        assert respawns >= 1


class TestHungWorker:
    def test_timeout_detected_and_bit_identical(self, world, reference):
        ref_model, _ = reference
        plan = _FaultPlan(
            task_idx=0, action="hang", attempts=(0,), hang_seconds=120.0
        )
        model, result, respawns = _fit_with_faults(
            world, plan, task_timeout=1.0
        )
        _assert_identical(model, ref_model)
        assert respawns >= 1  # the hung generation was torn down
        timeouts = [e for e in result.fault_log if e.cause == "timeout"]
        assert timeouts and all(e.task_idx == 0 for e in timeouts)
        assert all(e.elapsed_seconds >= 1.0 for e in timeouts)


class TestDispatchAccounting:
    """DispatchStats/FaultLog bookkeeping under real retries."""

    def test_stats_consistent_under_retries(self, world):
        cascades, part = world
        cfg = OptimizerConfig(max_iters=15)
        tree = MergeTree(part, stop_at=1)
        model = EmbeddingModel.random(N_NODES, 3, seed=7)
        plan = _FaultPlan(task_idx=0, action="raise", attempts=(0, 1))
        with MultiprocessBackend(n_workers=2, _fault_plan=plan) as backend:
            result = HierarchicalInference(tree, cfg, backend).fit(model, cascades)
            profiles = list(backend.level_profiles)
        for stats, level in zip(profiles, result.levels):
            # every task produced exactly one result despite retries
            assert stats.n_tasks == len(level.wall_seconds)
            # retries == fault entries that chose a fallback rung
            with_fallback = [e for e in stats.fault_log if e.fallback is not None]
            assert stats.n_retries == len(with_fallback)
            # compute counts each successful attempt once; overhead
            # (incl. wasted attempts) is never negative
            assert stats.compute_seconds == pytest.approx(
                sum(level.wall_seconds)
            )
            assert stats.overhead_seconds >= 0.0
            # the driver surfaced the same accounting
            assert level.fault_log == stats.fault_log
            assert level.n_retries == stats.n_retries
        # within each level, a task's recorded attempts strictly increase
        for level in result.levels:
            attempts = [e.attempt for e in level.fault_log if e.task_idx == 0]
            assert attempts == sorted(set(attempts))

    def test_fault_free_run_has_empty_log(self, world, reference):
        ref_model, _ = reference
        model, result, respawns = _fit_with_faults(world, None)
        _assert_identical(model, ref_model)
        assert result.fault_log == [] and result.total_retries == 0
        assert respawns == 0


class TestResourceReleaseAcrossGenerations:
    def test_respawn_then_close_leaves_shm_clean(self, world):
        """_Resources.release stays correct across pool generations."""
        cascades, part = world
        cfg = OptimizerConfig(max_iters=5)
        tree = MergeTree(part, stop_at=1)
        before = _shm_entries()
        plan = _FaultPlan(task_idx=0, action="exit", attempts=(0,))
        backend = MultiprocessBackend(n_workers=2, _fault_plan=plan)
        model = EmbeddingModel.random(N_NODES, 3, seed=7)
        HierarchicalInference(tree, cfg, backend).fit(model, cascades)
        assert backend.respawn_count >= 1
        backend.close()
        backend.close()  # idempotent across generations
        leaked = _shm_entries() - before
        assert leaked == set(), f"leaked shared memory: {leaked}"
