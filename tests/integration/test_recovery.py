"""Integration: what the inference recovers about ground truth.

Generated within the model class (rates A_u·B_v on an SBM), the fitted
embeddings reproduce the *relative* structure of the generative model.
Two caveats are intrinsic to the paper's Eq. 8 and therefore intentional:

* the likelihood carries no censoring term (nodes that never got infected
  contribute nothing), so the MLE is a partial-likelihood optimum and the
  absolute generative rates are not identifiable;
* per-topic rescalings ``A[:, k] *= c``, ``B[:, k] /= c`` leave every
  hazard unchanged, so influence magnitudes are only comparable *within*
  a community (one dominant topic), not globally.

The assertions below test exactly the recoverable structure: relative
rates among co-occurring (intra-community) pairs, intra- vs
inter-community rate separation, and within-community influence ranking.
"""

import numpy as np
import pytest

from repro.datasets.sbm_corpus import make_sbm_experiment
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig, ProjectedGradientAscent


@pytest.fixture(scope="module")
def fitted():
    # Uniform communities and moderate rates keep cascades local: the
    # recoverable structure is sharpest when co-occurrence mirrors the
    # planted blocks (hub corpora mix blocks and blur the signal).
    exp = make_sbm_experiment(
        n_nodes=150,
        community_size=30,
        n_train=250,
        n_test=0,
        n_topics=5,
        hub_communities=False,
        rate_scale=0.8,
        seed=3,
    )
    model = EmbeddingModel.random(150, 5, scale=0.2, seed=4)
    opt = ProjectedGradientAscent(
        OptimizerConfig(max_iters=500, learning_rate=0.05, tol=1e-9, patience=10)
    )
    opt.fit(model, exp.train)
    return exp, model


class TestStructureRecovery:
    def test_intra_edge_rate_correlation_with_truth(self, fitted):
        exp, model = fitted
        src, dst, _ = exp.graph.edge_arrays()
        intra = exp.membership[src] == exp.membership[dst]
        true_rates = np.einsum(
            "ek,ek->e", exp.truth.A[src[intra]], exp.truth.B[dst[intra]]
        )
        inferred = np.einsum(
            "ek,ek->e", model.A[src[intra]], model.B[dst[intra]]
        )
        r = np.corrcoef(true_rates, inferred)[0, 1]
        assert r > 0.15

    def test_intra_rates_dominate_inter(self, fitted):
        exp, model = fitted
        src, dst, _ = exp.graph.edge_arrays()
        intra = exp.membership[src] == exp.membership[dst]
        inferred = np.einsum("ek,ek->e", model.A[src], model.B[dst])
        assert inferred[intra].mean() > 1.5 * inferred[~intra].mean()

    def test_within_community_influence_ranking(self, fitted):
        exp, model = fitted
        rhos = []
        for c in range(exp.planted_partition.n_communities):
            nodes = np.flatnonzero(exp.membership == c)
            true_rank = np.argsort(np.argsort(exp.truth.A[nodes].sum(axis=1)))
            inf_rank = np.argsort(np.argsort(model.A[nodes].sum(axis=1)))
            rhos.append(np.corrcoef(true_rank, inf_rank)[0, 1])
        # ranking is recoverable on average, not per community (topic
        # scale ambiguity + finite cascades leave per-community noise)
        assert np.mean(rhos) > 0.1

    def test_partial_likelihood_exceeds_truth(self, fitted):
        """Documents the no-censoring property: the fitted partial
        likelihood is *higher* than the generative model's, because Eq. 8
        never penalizes rates toward never-infected nodes."""
        from repro.embedding.likelihood import corpus_log_likelihood

        exp, model = fitted
        assert corpus_log_likelihood(model, exp.train) > corpus_log_likelihood(
            exp.truth, exp.train
        )
