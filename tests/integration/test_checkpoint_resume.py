"""Integration: interrupt a hierarchical fit, resume, get identical results.

Level *i+1* is a pure function of level *i*'s embeddings, so a run
restarted from the per-level checkpoint must finish bit-identical to an
uninterrupted one — that is the whole value proposition of checkpointing
an hours-long fit.
"""

import numpy as np
import pytest

from repro.cascades.simulate import simulate_corpus
from repro.community.mergetree import MergeTree
from repro.community.partition import Partition
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig
from repro.graphs.generators import stochastic_block_model
from repro.parallel.backends import SerialBackend
from repro.parallel.checkpoint import CheckpointManager, CheckpointMismatchError
from repro.parallel.hierarchical import HierarchicalInference, infer_embeddings

N_NODES = 60


class SimulatedCrash(Exception):
    pass


class CrashingBackend(SerialBackend):
    """Serial backend that dies before running level *crash_at*."""

    def __init__(self, crash_at):
        self.crash_at = crash_at
        self.levels_run = 0

    def run_level(self, tasks):
        if self.levels_run == self.crash_at:
            raise SimulatedCrash(f"injected crash before level {self.crash_at}")
        self.levels_run += 1
        return super().run_level(tasks)


@pytest.fixture(scope="module")
def world():
    graph, membership = stochastic_block_model(
        N_NODES, 20, p_in=0.4, p_out=0.01, seed=0
    )
    cascades = simulate_corpus(graph, 40, window=0.5, seed=1, min_size=2)
    return cascades, Partition(membership)


@pytest.fixture
def setup(world):
    cascades, part = world
    cfg = OptimizerConfig(max_iters=15)
    tree = MergeTree(part, stop_at=1)
    assert len(tree.levels) >= 2  # the interrupt tests need a middle
    return cascades, cfg, tree


def _model():
    return EmbeddingModel.random(N_NODES, 3, seed=7)


class TestResume:
    def test_interrupted_run_resumes_bit_identical(self, setup, tmp_path):
        cascades, cfg, tree = setup
        ckdir = tmp_path / "ck"

        reference = _model()
        ref_result = HierarchicalInference(tree, cfg, SerialBackend()).fit(
            reference, cascades
        )

        # crash after completing exactly one level
        crashed = _model()
        with pytest.raises(SimulatedCrash):
            HierarchicalInference(tree, cfg, CrashingBackend(crash_at=1)).fit(
                crashed, cascades, checkpoint_dir=ckdir
            )
        ck = CheckpointManager(ckdir).load()
        assert ck is not None and ck.level_idx == 0

        resumed = _model()
        result = HierarchicalInference(tree, cfg, SerialBackend()).fit(
            resumed, cascades, checkpoint_dir=ckdir, resume=True
        )
        np.testing.assert_array_equal(resumed.A, reference.A)
        np.testing.assert_array_equal(resumed.B, reference.B)
        assert result.resumed_from_level == 1
        assert len(result.levels) == len(ref_result.levels) - 1
        assert result.levels[0].level == 1

    def test_resume_skips_all_completed_levels(self, setup, tmp_path):
        cascades, cfg, tree = setup
        ckdir = tmp_path / "ck"
        done = _model()
        HierarchicalInference(tree, cfg, SerialBackend()).fit(
            done, cascades, checkpoint_dir=ckdir
        )
        again = _model()
        result = HierarchicalInference(tree, cfg, SerialBackend()).fit(
            again, cascades, checkpoint_dir=ckdir, resume=True
        )
        np.testing.assert_array_equal(again.A, done.A)
        assert result.levels == []  # nothing left to execute
        assert result.resumed_from_level == len(tree.levels)

    def test_resume_with_empty_dir_runs_fresh(self, setup, tmp_path):
        cascades, cfg, tree = setup
        model = _model()
        result = HierarchicalInference(tree, cfg, SerialBackend()).fit(
            model, cascades, checkpoint_dir=tmp_path / "empty", resume=True
        )
        assert result.resumed_from_level is None
        assert len(result.levels) == len(tree.levels)

    def test_resume_requires_checkpoint_dir(self, setup):
        cascades, cfg, tree = setup
        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            HierarchicalInference(tree, cfg, SerialBackend()).fit(
                _model(), cascades, resume=True
            )

    def test_rng_state_restored(self, setup, tmp_path):
        cascades, cfg, tree = setup
        ckdir = tmp_path / "ck"
        rng = np.random.default_rng(3)
        rng.random(17)  # advance to a non-trivial state
        HierarchicalInference(tree, cfg, SerialBackend()).fit(
            _model(), cascades, checkpoint_dir=ckdir, rng=rng
        )
        expected = rng.random()
        rng2 = np.random.default_rng(999)  # totally different state
        HierarchicalInference(tree, cfg, SerialBackend()).fit(
            _model(), cascades, checkpoint_dir=ckdir, resume=True, rng=rng2
        )
        assert rng2.random() == expected


class TestDigestGuard:
    def test_config_change_rejected(self, setup, tmp_path):
        cascades, cfg, tree = setup
        ckdir = tmp_path / "ck"
        HierarchicalInference(tree, cfg, SerialBackend()).fit(
            _model(), cascades, checkpoint_dir=ckdir
        )
        other_cfg = OptimizerConfig(max_iters=16)
        with pytest.raises(CheckpointMismatchError):
            HierarchicalInference(tree, other_cfg, SerialBackend()).fit(
                _model(), cascades, checkpoint_dir=ckdir, resume=True
            )

    def test_corpus_change_rejected(self, world, setup, tmp_path):
        cascades, cfg, tree = setup
        ckdir = tmp_path / "ck"
        HierarchicalInference(tree, cfg, SerialBackend()).fit(
            _model(), cascades, checkpoint_dir=ckdir
        )
        graph, _ = stochastic_block_model(N_NODES, 20, p_in=0.4, p_out=0.01, seed=5)
        other = simulate_corpus(graph, 40, window=0.5, seed=6, min_size=2)
        with pytest.raises(CheckpointMismatchError):
            HierarchicalInference(tree, cfg, SerialBackend()).fit(
                _model(), other, checkpoint_dir=ckdir, resume=True
            )


class TestPipelineEntryPoint:
    def test_infer_embeddings_checkpoint_roundtrip(self, world, tmp_path):
        cascades, part = world
        ckdir = tmp_path / "ck"
        cfg = OptimizerConfig(max_iters=10)
        m1, r1, _ = infer_embeddings(
            cascades, 3, config=cfg, partition=part, seed=11,
            checkpoint_dir=ckdir,
        )
        # resume from the finished checkpoint: same seed re-derives the
        # tree, digest validates, all levels skip, embeddings match
        m2, r2, _ = infer_embeddings(
            cascades, 3, config=cfg, partition=part, seed=11,
            checkpoint_dir=ckdir, resume=True,
        )
        np.testing.assert_array_equal(m1.A, m2.A)
        np.testing.assert_array_equal(m1.B, m2.B)
        assert r2.levels == []
