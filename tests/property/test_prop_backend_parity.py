"""Property: every backend produces bit-identical embeddings.

The paper's conflict-freedom argument (§IV-B) promises that parallel
execution changes *nothing* about the result.  This suite drives the full
hierarchical engine over randomized corpora — including simultaneous
infections (tie groups) and single-node communities — through

* :class:`SerialBackend` (the reference),
* :class:`MultiprocessBackend` with zero-copy arena dispatch (default),
* :class:`MultiprocessBackend` forced onto the legacy pickling path,

and requires exact ``A``/``B`` equality, not mere closeness: the arena's
``from_arena`` compilation and the worker-side compile cache must be
bit-compatible with the object path, or this fails.
"""

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet

pytestmark = pytest.mark.slow  # spawns three pools per seed
from repro.community.mergetree import MergeTree
from repro.community.partition import Partition
from repro.embedding.model import EmbeddingModel
from repro.embedding.optimizer import OptimizerConfig
from repro.parallel.backends import MultiprocessBackend, SerialBackend
from repro.parallel.hierarchical import HierarchicalInference


def random_world(seed):
    """A randomized (corpus, partition) pair with adversarial structure."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 28))
    cs = CascadeSet(n)
    for _ in range(int(rng.integers(2, 14))):
        size = int(rng.integers(1, min(n, 9) + 1))
        nodes = rng.permutation(n)[:size]
        # Coarse rounding induces equal-time infections (tie groups).
        times = np.sort(np.round(rng.uniform(0.0, 2.0, size), 1))
        cs.append(Cascade(nodes, times))
    # Random membership; some communities end up single-node, some empty
    # of cascades entirely.
    n_comm = int(rng.integers(2, max(3, n // 2)))
    membership = rng.integers(0, n_comm, size=n)
    membership[rng.integers(0, n)] = n_comm  # force one singleton community
    return cs, Partition(membership)


def fit_with(backend_factory, cs, part, seed):
    tree = MergeTree(part, stop_at=1)
    cfg = OptimizerConfig(max_iters=12)
    model = EmbeddingModel.random(cs.n_nodes, 3, seed=seed)
    backend = backend_factory()
    try:
        result = HierarchicalInference(tree, cfg, backend).fit(model, cs)
    finally:
        backend.close()
    return model, result


@pytest.mark.parametrize("seed", [11, 23, 37, 59])
def test_backends_bit_identical(seed):
    cs, part = random_world(seed)
    m_serial, r_serial = fit_with(SerialBackend, cs, part, seed)
    m_arena, r_arena = fit_with(
        lambda: MultiprocessBackend(n_workers=2), cs, part, seed
    )
    m_legacy, r_legacy = fit_with(
        lambda: MultiprocessBackend(n_workers=2, use_arena=False), cs, part, seed
    )
    assert np.array_equal(m_serial.A, m_arena.A)
    assert np.array_equal(m_serial.B, m_arena.B)
    assert np.array_equal(m_serial.A, m_legacy.A)
    assert np.array_equal(m_serial.B, m_legacy.B)
    for rs, ra, rl in zip(r_serial.levels, r_arena.levels, r_legacy.levels):
        assert rs.work_units == ra.work_units == rl.work_units
        assert rs.iterations == ra.iterations == rl.iterations
        assert rs.logliks == ra.logliks == rl.logliks


def test_single_node_communities_everywhere():
    """Singleton partition: every community is one node (degenerate split)."""
    rng = np.random.default_rng(5)
    n = 10
    cs = CascadeSet(n)
    for _ in range(6):
        size = int(rng.integers(2, 6))
        nodes = rng.permutation(n)[:size]
        cs.append(Cascade(nodes, np.sort(rng.uniform(0, 1, size))))
    part = Partition.singletons(n)
    m_serial, _ = fit_with(SerialBackend, cs, part, 1)
    m_arena, _ = fit_with(lambda: MultiprocessBackend(n_workers=2), cs, part, 1)
    assert np.array_equal(m_serial.A, m_arena.A)
    assert np.array_equal(m_serial.B, m_arena.B)


def test_all_ties_corpus():
    """Every infection simultaneous: tie-group handling end to end."""
    n = 8
    cs = CascadeSet(n)
    cs.append(Cascade(np.arange(6), np.zeros(6)))
    cs.append(Cascade(np.array([1, 3, 5, 7]), np.ones(4)))
    part = Partition(np.array([0, 0, 0, 0, 1, 1, 1, 1]))
    m_serial, _ = fit_with(SerialBackend, cs, part, 2)
    m_arena, _ = fit_with(lambda: MultiprocessBackend(n_workers=2), cs, part, 2)
    assert np.array_equal(m_serial.A, m_arena.A)
    assert np.array_equal(m_serial.B, m_arena.B)
