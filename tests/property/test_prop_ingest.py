"""Property-based tests for the ingest subsystem.

The replay invariant the whole PR leans on: for *any* recorded event
stream, replaying it — at any speed, with any re-chunking, through a
tight-capacity store (evictions), across a mid-replay model hot-swap —
leaves the scoring service in exactly the state a direct columnar
ingest of the same stream would have produced: same store fingerprint,
same scores, same features.  Pacing is a latency knob, never a
semantics knob.

A second property pins the recording format: any stream survives a
write → read round trip bit-identically, whatever the batch geometry.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.model import EmbeddingModel
from repro.ingest.recorder import StreamWriter, iter_batches, stream_info
from repro.ingest.replay import ReplayConfig, replay_recording
from repro.ingest.sources import chunk_columns
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.batching import BatchPolicy
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService
from repro.serving.tracker import StoreConfig

N = 12
K = 3
CASCADE_IDS = tuple(f"cascade-{i}" for i in range(8))


def make_model(seed):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 2, (N, K)), rng.uniform(0, 2, (N, K)))


def make_predictor(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(40, K))
    sizes = np.where(X[:, 0] > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=seed).fit(ds)


def make_service(seed, capacity=None):
    reg = ModelRegistry()
    reg.publish(make_model(seed), predictor=make_predictor(seed))
    store_config = StoreConfig(capacity=capacity) if capacity else None
    return ScoringService(
        reg,
        store_config=store_config,
        policy=BatchPolicy(max_batch=16, max_delay=0.0),
    )


@st.composite
def stream_strategy(draw, max_events=40):
    """An arrival-ordered columnar stream (dups and time ties allowed)."""
    size = draw(st.integers(min_value=1, max_value=max_events))
    cids, nodes, times = [], [], []
    for _ in range(size):
        cids.append(draw(st.sampled_from(CASCADE_IDS)))
        nodes.append(draw(st.integers(min_value=0, max_value=N - 1)))
        times.append(draw(st.floats(min_value=0, max_value=1, allow_nan=False)))
    order = np.argsort(np.asarray(times), kind="stable")
    return (
        [cids[i] for i in order],
        np.asarray(nodes, dtype=np.int64)[order],
        np.asarray(times, dtype=np.float64)[order],
    )


def record_stream(directory, stream, chunk):
    cids, nodes, times = stream
    path = Path(directory) / "stream.evs"
    with StreamWriter(path) as w:
        for batch in chunk_columns(cids, nodes, times, chunk):
            w.write_batch(batch)
    return path


def direct_ingest(stream, seed, capacity=None):
    service = make_service(seed, capacity)
    cids, nodes, times = stream
    service.ingest_columns(cids, nodes, times)
    return service


def assert_state_equal(got_service, want_service):
    assert got_service.state_fingerprint() == want_service.state_fingerprint()
    cids = sorted(set(got_service.store.cascade_ids()))
    assert cids == sorted(set(want_service.store.cascade_ids()))
    got = got_service.score_columns(cids, include_features=True)
    want = want_service.score_columns(cids, include_features=True)
    assert np.array_equal(got.scores, want.scores, equal_nan=True)
    assert np.array_equal(got.features, want.features, equal_nan=True)
    assert np.array_equal(got.n_early, want.n_early)


class TestRecorderRoundTrip:
    @given(stream_strategy(), st.integers(min_value=1, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_any_stream_survives_the_format(self, stream, chunk):
        cids, nodes, times = stream
        written = list(chunk_columns(cids, nodes, times, chunk))
        with tempfile.TemporaryDirectory() as tmp:
            path = record_stream(tmp, stream, chunk)
            got = list(iter_batches(path))
            info = stream_info(path)
        assert got == written
        assert info.n_records == len(written)
        assert info.n_events == len(cids)
        assert info.t_first == times[0] and info.t_last == times[-1]


class TestReplayParity:
    @given(
        stream_strategy(),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=7),
        st.sampled_from([None, 200.0, 5000.0]),
    )
    @settings(max_examples=12, deadline=None)
    def test_replay_at_any_speed_and_chunking(self, stream, seed, chunk, speed):
        with tempfile.TemporaryDirectory() as tmp:
            path = record_stream(tmp, stream, chunk)
            replayed = make_service(seed)
            report = replay_recording(
                path,
                replayed,
                ReplayConfig(speed=speed, chunk_events=chunk, burst_s=0.01),
            )
        assert report.events == len(stream[0])
        assert report.dropped_events == 0
        assert_state_equal(replayed, direct_ingest(stream, seed))

    @given(
        stream_strategy(),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=12, deadline=None)
    def test_replay_through_eviction(self, stream, seed, capacity, chunk):
        # a tight LRU store evicts during the stream; replay must walk
        # the exact same eviction sequence as direct ingest
        with tempfile.TemporaryDirectory() as tmp:
            path = record_stream(tmp, stream, chunk)
            replayed = make_service(seed, capacity=capacity)
            replay_recording(path, replayed, ReplayConfig(speed=None))
        direct = direct_ingest(stream, seed, capacity=capacity)
        assert replayed.store.stats.evictions == direct.store.stats.evictions
        assert_state_equal(replayed, direct)

    @given(
        stream_strategy(),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=12, deadline=None)
    def test_mid_replay_hot_swap(self, stream, seed, swap_at):
        # swapping the model after burst k of a replay must equal
        # direct ingest with the same swap at the same event boundary
        chunk = 4
        cids, nodes, times = stream
        batches = list(chunk_columns(cids, nodes, times, chunk))
        swap_at = min(swap_at, len(batches))
        model2, predictor2 = make_model(seed + 1), make_predictor(seed + 1)

        replayed = make_service(seed)

        def hook(progress):
            if progress.bursts == swap_at:
                replayed.publish(model2, predictor=predictor2, source="swap")

        with tempfile.TemporaryDirectory() as tmp:
            path = record_stream(tmp, stream, chunk)
            replay_recording(
                path, replayed, ReplayConfig(speed=None), progress=hook
            )

        direct = make_service(seed)
        for i, b in enumerate(batches):
            if i == swap_at:
                direct.publish(model2, predictor=predictor2, source="swap")
            direct.ingest_columns(list(b.cascade_ids), b.nodes, b.times)
        if swap_at == len(batches):
            direct.publish(model2, predictor=predictor2, source="swap")
        assert_state_equal(replayed, direct)
