"""Property-based tests for the cascade simulator and co-occurrence maps."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.simulate import CascadeSimulator
from repro.cascades.types import Cascade, CascadeSet
from repro.cooccurrence.build import build_cooccurrence_graph, ordered_pair_counts
from repro.graphs.graph import Graph


@st.composite
def graph_and_seed(draw, max_nodes=10):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda p: p[0] != p[1]),
            min_size=m,
            max_size=m,
        )
    )
    rates = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    src = [p[0] for p in pairs]
    dst = [p[1] for p in pairs]
    return Graph(n, src, dst, rates), seed


class TestSimulatorInvariants:
    @given(graph_and_seed(), st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=50, deadline=None)
    def test_cascade_validity(self, gs, window):
        graph, seed = gs
        sim = CascadeSimulator(graph, window=window)
        c = sim.simulate(0, seed=seed)
        # source first, times sorted, inside the window, nodes unique
        assert c.source == 0
        assert np.all(np.diff(c.times) >= 0)
        assert np.all(c.times <= window + 1e-12)
        assert np.unique(c.nodes).size == c.size

    @given(graph_and_seed())
    @settings(max_examples=50, deadline=None)
    def test_every_infection_has_infected_parent(self, gs):
        graph, seed = gs
        sim = CascadeSimulator(graph, window=2.0)
        c = sim.simulate(0, seed=seed)
        infected = set()
        for v, t in c:
            if infected:
                preds = set(graph.predecessors(v).tolist())
                assert preds & infected
            infected.add(v)

    @given(graph_and_seed())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, gs):
        graph, seed = gs
        sim = CascadeSimulator(graph, window=1.0)
        assert sim.simulate(0, seed=seed) == sim.simulate(0, seed=seed)


@st.composite
def corpus_strategy(draw, n_nodes=8):
    n_casc = draw(st.integers(min_value=0, max_value=5))
    cs = CascadeSet(n_nodes)
    for _ in range(n_casc):
        size = draw(st.integers(min_value=0, max_value=n_nodes))
        nodes = draw(st.permutations(list(range(n_nodes))).map(lambda p: p[:size]))
        times = draw(
            st.lists(
                st.sampled_from([0.0, 0.5, 1.0, 1.5]),
                min_size=size,
                max_size=size,
            )
        )
        cs.append(Cascade(list(nodes), times))
    return cs


class TestCooccurrenceInvariants:
    @given(corpus_strategy())
    @settings(max_examples=50)
    def test_weights_in_unit_interval(self, cs):
        g = build_cooccurrence_graph(cs)
        _, _, w = g.edge_arrays()
        assert np.all(w > 0) and np.all(w <= 1.0 + 1e-12)

    @given(corpus_strategy())
    @settings(max_examples=50)
    def test_counts_consistent_with_graph(self, cs):
        counts = ordered_pair_counts(cs)
        g = build_cooccurrence_graph(cs)
        assert g.n_edges == len(counts)
        for (u, v), c in counts.items():
            assert g.has_edge(u, v)

    @given(corpus_strategy())
    @settings(max_examples=50)
    def test_antisymmetric_total(self, cs):
        """c(u,v) + c(v,u) <= number of cascades containing both."""
        counts = ordered_pair_counts(cs)
        from repro.cascades.stats import node_participation_counts

        for (u, v), c in counts.items():
            both = sum(
                1
                for casc in cs
                if u in set(casc.nodes.tolist()) and v in set(casc.nodes.tolist())
            )
            rev = counts.get((v, u), 0)
            assert c + rev <= both
