"""Property tests: workspace-backed kernel bit-identity.

Three evaluation paths of the same gradients must agree *bitwise*:

* the compiled kernel with a persistent, shared :class:`GradientWorkspace`
  (buffers recycled across examples of wildly different shapes);
* the compiled kernel with fresh allocations (``workspace=None``);
* on single-cascade corpora, the per-cascade two-sweep oracle
  :func:`accumulate_gradients`.

One module-level workspace is deliberately reused across every
hypothesis example — each example then runs against buffers full of the
previous example's data, which is exactly the steady-state the optimizer
puts the workspace in.  Any read of stale memory shows up as a bitwise
mismatch against the fresh-allocation run.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.compiled import (
    CompiledCorpus,
    GradientWorkspace,
    corpus_gradients,
)
from repro.embedding.gradients import accumulate_gradients
from repro.embedding.model import EmbeddingModel

N_NODES = 8

#: shared across all examples — see module docstring
WS = GradientWorkspace()


@st.composite
def model_strategy(draw, n_topics=None):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    k = n_topics or draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(seed)
    A = rng.uniform(0.05, 1.5, size=(N_NODES, k))
    B = rng.uniform(0.05, 1.5, size=(N_NODES, k))
    return EmbeddingModel(A, B)


@st.composite
def cascade_strategy(draw):
    size = draw(st.integers(min_value=0, max_value=N_NODES))
    nodes = draw(st.permutations(list(range(N_NODES))).map(lambda p: p[:size]))
    # coarse time grid induces frequent ties (tie-heavy inputs are where
    # starts/ends gathers differ from the ties-free fast path)
    times = draw(
        st.lists(
            st.sampled_from([0.0, 0.25, 0.5, 1.0]),
            min_size=size,
            max_size=size,
        )
    )
    return Cascade(list(nodes), times)


class TestWorkspaceBitIdentity:
    @given(model_strategy(), st.lists(cascade_strategy(), max_size=5))
    @settings(max_examples=60)
    def test_workspace_equals_fresh(self, model, cascades):
        # Covers empty corpora, all-size-<2 corpora (everything dropped
        # at compile), tie-heavy corpora, and node repeats.
        comp = CompiledCorpus.from_cascades(CascadeSet(N_NODES, cascades))
        gA1, gB1 = np.zeros_like(model.A), np.zeros_like(model.B)
        gA2, gB2 = np.zeros_like(model.A), np.zeros_like(model.B)
        ll_ws = corpus_gradients(
            model.A, model.B, comp, gA1, gB1, workspace=WS
        )
        ll_fresh = corpus_gradients(model.A, model.B, comp, gA2, gB2)
        assert ll_ws == ll_fresh
        assert np.array_equal(gA1, gA2)
        assert np.array_equal(gB1, gB2)

    @given(model_strategy(), cascade_strategy())
    @settings(max_examples=60)
    def test_single_cascade_trio(self, model, cascade):
        # On one cascade there is no cross-cascade summation-order
        # question: oracle, fresh kernel and workspace kernel must agree
        # to the last bit.
        gA0, gB0 = np.zeros_like(model.A), np.zeros_like(model.B)
        ll0 = accumulate_gradients(model.A, model.B, cascade, gA0, gB0)
        comp = CompiledCorpus.from_cascades([cascade])
        gA1, gB1 = np.zeros_like(model.A), np.zeros_like(model.B)
        gA2, gB2 = np.zeros_like(model.A), np.zeros_like(model.B)
        ll1 = corpus_gradients(model.A, model.B, comp, gA1, gB1)
        ll2 = corpus_gradients(
            model.A, model.B, comp, gA2, gB2, workspace=WS
        )
        assert ll0 == ll1 == ll2
        assert np.array_equal(gA0, gA1) and np.array_equal(gA1, gA2)
        assert np.array_equal(gB0, gB1) and np.array_equal(gB1, gB2)

    @given(
        model_strategy(),
        st.lists(cascade_strategy(), min_size=1, max_size=4),
        st.floats(min_value=0.0, max_value=0.01),
    )
    @settings(max_examples=40)
    def test_background_rate_paths_agree(self, model, cascades, mu):
        comp = CompiledCorpus.from_cascades(CascadeSet(N_NODES, cascades))
        gA1, gB1 = np.zeros_like(model.A), np.zeros_like(model.B)
        gA2, gB2 = np.zeros_like(model.A), np.zeros_like(model.B)
        ll_ws = corpus_gradients(
            model.A, model.B, comp, gA1, gB1,
            background_rate=mu, workspace=WS,
        )
        ll_fresh = corpus_gradients(
            model.A, model.B, comp, gA2, gB2, background_rate=mu
        )
        assert ll_ws == ll_fresh
        assert np.array_equal(gA1, gA2)
        assert np.array_equal(gB1, gB2)
