"""Property-based tests for the prediction stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel
from repro.prediction.features import EXTENDED_FEATURES, extract_features
from repro.prediction.pointprocess import SelfExcitingSizePredictor
from repro.prediction.regression import RidgeRegression, r2_score
from repro.prediction.svm import LinearSVM

N = 8
K = 3


@st.composite
def model_strategy(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return EmbeddingModel(
        rng.uniform(0, 2, (N, K)), rng.uniform(0, 2, (N, K))
    )


@st.composite
def prefix_strategy(draw):
    size = draw(st.integers(min_value=0, max_value=N))
    nodes = draw(st.permutations(list(range(N))).map(lambda p: p[:size]))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=1, allow_nan=False),
                min_size=size,
                max_size=size,
            )
        )
    )
    return Cascade(list(nodes), times)


class TestFeatureProperties:
    @given(model_strategy(), prefix_strategy())
    @settings(max_examples=60)
    def test_features_finite_nonnegative(self, model, prefix):
        f = extract_features(model, prefix, EXTENDED_FEATURES)
        assert np.all(np.isfinite(f))
        assert np.all(f >= 0)  # non-negative embeddings => non-negative stats

    @given(model_strategy(), prefix_strategy())
    @settings(max_examples=60)
    def test_norm_dominates_max(self, model, prefix):
        f = extract_features(model, prefix, ["normA", "maxA"])
        assert f[0] >= f[1] - 1e-12  # ||v||_2 >= max component for v >= 0

    @given(model_strategy(), prefix_strategy())
    @settings(max_examples=60)
    def test_adding_adopter_grows_sums(self, model, prefix):
        if prefix.size >= N or prefix.size == 0:
            return
        missing = next(
            v for v in range(N) if v not in set(prefix.nodes.tolist())
        )
        bigger = Cascade(
            np.concatenate([prefix.nodes, [missing]]),
            np.concatenate([prefix.times, [prefix.times[-1] + 1.0]]),
        )
        f_small = extract_features(model, prefix, ["maxA"])
        f_big = extract_features(model, bigger, ["maxA"])
        assert f_big[0] >= f_small[0] - 1e-12


class TestPointProcessProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    @settings(max_examples=60)
    def test_prediction_at_least_observed(self, times):
        times = sorted(times)
        c = Cascade(list(range(len(times))), times)
        pp = SelfExcitingSizePredictor(omega=3.0)
        assert pp.predict_final_size(c, 1.0) >= c.size - 1e-9

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
            min_size=2,
            max_size=8,
            unique=True,
        )
    )
    @settings(max_examples=60)
    def test_branching_in_unit_range(self, times):
        c = Cascade(list(range(len(times))), sorted(times))
        pp = SelfExcitingSizePredictor(omega=3.0, max_branching=0.95)
        p = pp.branching_factor(c, 1.0)
        assert 0.0 <= p <= 0.95


class TestRegressionProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30)
    def test_r2_nonincreasing_in_noise(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(80, 2))
        y_clean = X @ np.array([1.0, -2.0]) + 3.0
        scores = []
        for noise in (0.1, 5.0):
            y = y_clean + rng.normal(scale=noise, size=80)
            m = RidgeRegression(lam=1e-4).fit(X, y)
            scores.append(r2_score(y, m.predict(X)))
        assert scores[0] >= scores[1] - 1e-9

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30)
    def test_svm_predicts_valid_labels(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 3))
        y = rng.choice([-1.0, 1.0], size=30)
        if np.unique(y).size < 2:
            return
        svm = LinearSVM(n_epochs=3, seed=0).fit(X, y)
        pred = svm.predict(X)
        assert set(np.unique(pred)) <= {-1, 1}
