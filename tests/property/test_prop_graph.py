"""Property-based tests for the Graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph


@st.composite
def graph_strategy(draw, max_nodes=10, max_edges=30):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda p: p[0] != p[1]),
            min_size=m,
            max_size=m,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    src = [p[0] for p in pairs]
    dst = [p[1] for p in pairs]
    return Graph(n, src, dst, weights)


class TestGraphInvariants:
    @given(graph_strategy())
    @settings(max_examples=60)
    def test_in_out_degree_sums_equal(self, g):
        assert g.out_degree().sum() == g.in_degree().sum() == g.n_edges

    @given(graph_strategy())
    @settings(max_examples=60)
    def test_successor_predecessor_duality(self, g):
        for u in range(g.n_nodes):
            for v in g.successors(u):
                assert u in g.predecessors(int(v))

    @given(graph_strategy())
    @settings(max_examples=60)
    def test_edge_arrays_roundtrip(self, g):
        src, dst, w = g.edge_arrays()
        assert Graph(g.n_nodes, src, dst, w) == g

    @given(graph_strategy())
    @settings(max_examples=60)
    def test_reverse_involution(self, g):
        assert g.reverse().reverse() == g

    @given(graph_strategy())
    @settings(max_examples=60)
    def test_reverse_swaps_degrees(self, g):
        r = g.reverse()
        assert np.array_equal(g.out_degree(), r.in_degree())

    @given(graph_strategy())
    @settings(max_examples=40)
    def test_subgraph_edge_subset(self, g):
        nodes = np.arange(0, g.n_nodes, 2)
        sub, mapping = g.subgraph(nodes)
        for u, v, w in sub.edges():
            assert g.has_edge(int(mapping[u]), int(mapping[v]))

    @given(graph_strategy())
    @settings(max_examples=40)
    def test_to_undirected_weight_conservation(self, g):
        u = g.to_undirected()
        _, _, w_u = u.edge_arrays()
        _, _, w_g = g.edge_arrays()
        assert np.isclose(w_u.sum(), 2 * w_g.sum())

    @given(graph_strategy(), st.floats(min_value=0.0, max_value=12.0))
    @settings(max_examples=40)
    def test_filter_edges_monotone(self, g, thresh):
        f = g.filter_edges(thresh)
        assert f.n_edges <= g.n_edges
        _, _, w = f.edge_arrays()
        assert np.all(w >= thresh)
