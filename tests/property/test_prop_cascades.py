"""Property-based tests for cascade containers and splitting invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.types import Cascade, CascadeSet
from repro.community.partition import Partition
from repro.parallel.splitting import split_cascades


@st.composite
def cascade_strategy(draw, max_nodes=12):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    size = draw(st.integers(min_value=0, max_value=n))
    nodes = draw(
        st.permutations(list(range(n))).map(lambda p: p[:size])
    )
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    return n, Cascade(list(nodes), times)


@st.composite
def corpus_strategy(draw, n_nodes=10, max_cascades=6):
    n_casc = draw(st.integers(min_value=0, max_value=max_cascades))
    cs = CascadeSet(n_nodes)
    for _ in range(n_casc):
        size = draw(st.integers(min_value=0, max_value=n_nodes))
        nodes = draw(st.permutations(list(range(n_nodes))).map(lambda p: p[:size]))
        times = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=size,
                max_size=size,
            )
        )
        cs.append(Cascade(list(nodes), times))
    return cs


class TestCascadeInvariants:
    @given(cascade_strategy())
    def test_times_sorted_nodes_unique(self, nc):
        _, c = nc
        assert np.all(np.diff(c.times) >= 0)
        assert np.unique(c.nodes).size == c.size

    @given(cascade_strategy(), st.floats(min_value=-50, max_value=150, allow_nan=False))
    def test_prefix_by_time_is_prefix(self, nc, t):
        _, c = nc
        p = c.prefix_by_time(t)
        assert p.size <= c.size
        assert np.array_equal(p.nodes, c.nodes[: p.size])
        if p.size:
            assert p.times[-1] <= t

    @given(cascade_strategy(), st.integers(min_value=0, max_value=20))
    def test_prefix_by_count_size(self, nc, k):
        _, c = nc
        assert c.prefix_by_count(k).size == min(k, c.size)

    @given(cascade_strategy(), st.floats(min_value=-10, max_value=10, allow_nan=False))
    def test_shift_preserves_structure(self, nc, dt):
        _, c = nc
        s = c.shifted(dt)
        assert np.array_equal(s.nodes, c.nodes)
        assert s.duration == c.duration or abs(s.duration - c.duration) < 1e-9


class TestSplittingInvariants:
    @given(corpus_strategy(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40)
    def test_split_conserves_infections(self, cs, n_comm):
        rng = np.random.default_rng(0)
        part = Partition(rng.integers(0, n_comm, size=cs.n_nodes))
        subs = split_cascades(cs, part, min_size=1)
        assert len(subs) == part.n_communities
        total = sum(sub.total_infections() for sub in subs)
        assert total == cs.total_infections()

    @given(corpus_strategy())
    @settings(max_examples=40)
    def test_split_membership_respected(self, cs):
        rng = np.random.default_rng(1)
        part = Partition(rng.integers(0, 3, size=cs.n_nodes))
        subs = split_cascades(cs, part, min_size=1)
        for cid, sub in enumerate(subs):
            for c in sub:
                assert np.all(part.membership[c.nodes] == cid)

    @given(corpus_strategy())
    @settings(max_examples=40)
    def test_subcascade_times_are_subsequences(self, cs):
        part = Partition(np.arange(cs.n_nodes) % 2)
        subs = split_cascades(cs, part, min_size=1)
        for sub in subs:
            for c in sub:
                assert np.all(np.diff(c.times) >= 0)
