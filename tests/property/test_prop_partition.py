"""Property-based tests for Partition and MergeTree invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community.mergetree import MergeTree
from repro.community.partition import Partition


@st.composite
def partition_strategy(draw, max_nodes=30, max_labels=8):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_labels - 1),
            min_size=n,
            max_size=n,
        )
    )
    return Partition(labels)


class TestPartitionInvariants:
    @given(partition_strategy())
    def test_ids_dense(self, p):
        if p.n_nodes:
            assert set(np.unique(p.membership)) == set(range(p.n_communities))

    @given(partition_strategy())
    def test_sizes_sum_to_n(self, p):
        assert p.sizes().sum() == p.n_nodes

    @given(partition_strategy())
    def test_communities_disjoint_cover(self, p):
        seen = np.concatenate(p.communities()) if p.n_communities else np.array([])
        assert np.sort(seen).tolist() == list(range(p.n_nodes))

    @given(partition_strategy())
    def test_agreement_reflexive(self, p):
        assert p.agreement(p) == 1.0

    @given(partition_strategy(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_agreement_symmetric(self, p, seed):
        rng = np.random.default_rng(seed)
        q = Partition(rng.integers(0, 4, size=p.n_nodes))
        assert abs(p.agreement(q) - q.agreement(p)) < 1e-12


class TestMergeTreeInvariants:
    @given(partition_strategy(), st.sampled_from(["tree", "graph"]))
    @settings(max_examples=40)
    def test_widths_halve(self, p, strategy):
        tree = MergeTree(p, stop_at=1, strategy=strategy)
        widths = tree.widths()
        assert widths[0] == p.n_communities
        for a, b in zip(widths, widths[1:]):
            assert b == (a + 1) // 2
        assert widths[-1] == 1

    @given(partition_strategy(), st.sampled_from(["tree", "graph"]))
    @settings(max_examples=40)
    def test_levels_are_coarsenings(self, p, strategy):
        tree = MergeTree(p, stop_at=1, strategy=strategy)
        for fine, coarse in zip(tree.levels, tree.levels[1:]):
            for cid in range(fine.n_communities):
                nodes = fine.members(cid)
                assert np.unique(coarse.membership[nodes]).size == 1

    @given(partition_strategy())
    @settings(max_examples=40)
    def test_node_count_conserved_per_level(self, p):
        tree = MergeTree(p, stop_at=1)
        for level in tree.levels:
            assert level.sizes().sum() == p.n_nodes

    @given(partition_strategy(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40)
    def test_stop_at_respected(self, p, q):
        tree = MergeTree(p, stop_at=q)
        assert tree.widths()[-1] <= max(q, 1) or tree.widths() == [p.n_communities]
        # only the last level may be <= q
        for w in tree.widths()[:-1]:
            assert w > q
