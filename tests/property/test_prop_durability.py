"""Property-based crash-recovery tests for the write-ahead journal.

The acceptance property (ISSUE/DESIGN.md §14): kill the service at a
*random* journal append — before the write, after it, or tearing a
random prefix of the frame onto disk — then recover, and the rebuilt
service is **bit-identical** to an uninterrupted run over the journaled
record stream: same tracked cascades, same LRU/eviction order, same
observed logs, same feature vectors, same scores.  Random interleavings
of ingest bursts, duplicate adopters, model hot-swaps, capacity-forced
evictions, and mid-stream compactions all ride along.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.model import EmbeddingModel
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.batching import BatchPolicy
from repro.serving.durability import (
    EventJournal,
    InjectedCrash,
    JournalConfig,
    _ChaosPlan,
    recover_service,
)
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService
from repro.serving.tracker import StoreConfig

N = 12
K = 3


def _fit_predictor():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(60, K))
    sizes = np.where(X[:, 0] > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=7).fit(ds)


#: fitting the SVM once keeps each hypothesis example cheap
PREDICTOR = _fit_predictor()


def make_model(seed):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 2, (N, K)), rng.uniform(0, 2, (N, K)))


def make_service(capacity):
    return ScoringService(
        ModelRegistry(),
        store_config=StoreConfig(capacity=capacity),
        policy=BatchPolicy(max_batch=8, max_delay=0.001),
    )


@st.composite
def op_stream(draw):
    """A random op sequence: ingest bursts, hot-swaps, compactions."""
    n_ops = draw(st.integers(min_value=1, max_value=10))
    ops = []
    t = 0.0
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["burst", "burst", "burst", "swap", "compact"]))
        if kind == "burst":
            size = draw(st.integers(min_value=1, max_value=5))
            burst = []
            for _ in range(size):
                cid = f"c{draw(st.integers(min_value=0, max_value=4))}"
                node = draw(st.integers(min_value=0, max_value=N - 1))
                t += draw(st.floats(min_value=0.01, max_value=0.2))
                burst.append((cid, node, t))
            ops.append(("burst", burst))
        elif kind == "swap":
            ops.append(("swap", draw(st.integers(min_value=1, max_value=50))))
        else:
            ops.append(("compact", None))
    return ops


@st.composite
def crash_plan(draw, ops):
    """A chaos plan aimed at a random append of the given op stream."""
    appends = 1 + sum(1 for kind, _ in ops if kind != "compact")
    if appends == 1:
        # All-compact op stream: the only reachable append is the seed
        # publish (append 0, 0-based), and killing *before* it would
        # leave an empty journal with nothing to recover — so crash
        # right after it.
        return _ChaosPlan(at_append=0, action="kill", point="after")
    at = draw(st.integers(min_value=1, max_value=appends - 1))
    action = draw(st.sampled_from(["kill", "kill", "torn"]))
    if action == "torn":
        return _ChaosPlan(
            at_append=at, action="torn",
            torn_bytes=draw(st.integers(min_value=1, max_value=11)),
        )
    return _ChaosPlan(
        at_append=at, action="kill",
        point=draw(st.sampled_from(["before", "after"])),
    )


def apply_op(service, op, journaled):
    kind, arg = op
    if kind == "burst":
        service.ingest_many(arg)
    elif kind == "swap":
        if journaled:
            service.publish(make_model(arg), source=f"swap{arg}")
        else:
            service.registry.publish(make_model(arg), source=f"swap{arg}")
    elif journaled:  # compact: a no-op without a journal
        service.compact()


def surviving_ops(ops, chaos):
    """The prefix of ops whose journal records survived the crash.

    Append 0 is the seed publish; each burst/swap op is one append.
    ``point="after"`` keeps the record of the crashing append; a torn
    or killed-before append is lost.
    """
    keep = chaos.at_append if chaos.action != "kill" or chaos.point == "before" \
        else chaos.at_append + 1
    out, appends = [], 1  # the seed publish
    for op in ops:
        if op[0] == "compact":
            out.append(op)
            continue
        if appends >= keep:
            break
        out.append(op)
        appends += 1
    return out


def assert_bit_identical(recovered, reference):
    r_cids, r_off, r_nodes, r_times = recovered.store.export_state()
    e_cids, e_off, e_nodes, e_times = reference.store.export_state()
    assert r_cids == e_cids
    assert np.array_equal(r_off, e_off)
    assert np.array_equal(r_nodes, e_nodes)
    assert np.array_equal(r_times, e_times)
    for cid in e_cids:
        got = recovered.score(cid, include_features=True)
        want = reference.score(cid, include_features=True)
        assert got.status == want.status == "ok"
        assert got.score == want.score
        assert got.label == want.label
        assert np.array_equal(got.features, want.features)
    assert (
        recovered.registry.current().fingerprint
        == reference.registry.current().fingerprint
    )


@st.composite
def crash_case(draw):
    ops = draw(op_stream())
    return ops, draw(crash_plan(ops)), draw(st.sampled_from([3, 4, 1000]))


class TestCrashRecovery:
    @given(crash_case())
    @settings(max_examples=30, deadline=None)
    def test_recovery_is_bit_identical_after_random_crash(self, case):
        ops, chaos, capacity = case
        with tempfile.TemporaryDirectory() as tmp:
            config = JournalConfig(directory=Path(tmp) / "wal", fsync="off")
            store_config = StoreConfig(capacity=capacity)
            service = ScoringService(
                ModelRegistry(),
                store_config=store_config,
                policy=BatchPolicy(max_batch=8, max_delay=0.001),
            )
            service.attach_journal(EventJournal(config, _chaos=chaos))
            crashed = False
            try:
                service.publish(
                    make_model(0), predictor=PREDICTOR, source="seed"
                )
                for op in ops:
                    apply_op(service, op, journaled=True)
            except InjectedCrash:
                crashed = True
            assert crashed  # the plan always targets a reachable append

            reference = ScoringService(
                ModelRegistry(),
                store_config=StoreConfig(capacity=capacity),
                policy=BatchPolicy(max_batch=8, max_delay=0.001),
            )
            reference.registry.publish(
                make_model(0), predictor=PREDICTOR, source="seed"
            )
            for op in surviving_ops(ops, chaos):
                apply_op(reference, op, journaled=False)

            recovered, report = recover_service(
                config, store_config=StoreConfig(capacity=capacity)
            )
            assert_bit_identical(recovered, reference)
            if chaos.action == "torn":
                assert report.torn_tail_repaired

    @given(crash_case())
    @settings(max_examples=10, deadline=None)
    def test_double_crash_double_recovery(self, case):
        """Recover, crash nothing further, recover again: the second
        recovery (from the first one's compaction snapshot) must equal
        the first."""
        ops, chaos, capacity = case
        with tempfile.TemporaryDirectory() as tmp:
            config = JournalConfig(directory=Path(tmp) / "wal", fsync="off")
            service = ScoringService(
                ModelRegistry(),
                store_config=StoreConfig(capacity=capacity),
                policy=BatchPolicy(max_batch=8, max_delay=0.001),
            )
            service.attach_journal(EventJournal(config, _chaos=chaos))
            try:
                service.publish(
                    make_model(0), predictor=PREDICTOR, source="seed"
                )
                for op in ops:
                    apply_op(service, op, journaled=True)
            except InjectedCrash:
                pass
            first, _ = recover_service(
                config, store_config=StoreConfig(capacity=capacity)
            )
            first.seal_journal()  # simulated second death, post-compaction
            second, report = recover_service(
                config, store_config=StoreConfig(capacity=capacity)
            )
            assert report.snapshot_loaded  # the first recovery compacted
            assert_bit_identical(second, first)
