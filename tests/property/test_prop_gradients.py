"""Property-based tests of the likelihood/gradient machinery.

The compiled kernel, the per-cascade two-sweep path, and the naive
O(s²) transcription of Eq. 8 must agree on arbitrary cascades — ties,
repeats across cascades, degenerate sizes and all.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.compiled import CompiledCorpus, corpus_gradients
from repro.embedding.gradients import accumulate_gradients, cascade_gradients
from repro.embedding.likelihood import (
    log_likelihood,
    log_likelihood_naive,
)
from repro.embedding.model import EmbeddingModel

N_NODES = 8
N_TOPICS = 3


@st.composite
def model_strategy(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    A = rng.uniform(0.05, 1.5, size=(N_NODES, N_TOPICS))
    B = rng.uniform(0.05, 1.5, size=(N_NODES, N_TOPICS))
    return EmbeddingModel(A, B)


@st.composite
def cascade_strategy(draw):
    size = draw(st.integers(min_value=0, max_value=N_NODES))
    nodes = draw(st.permutations(list(range(N_NODES))).map(lambda p: p[:size]))
    # coarse grid of times induces frequent ties
    times = draw(
        st.lists(
            st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0, 2.0]),
            min_size=size,
            max_size=size,
        )
    )
    return Cascade(list(nodes), times)


class TestLikelihoodConsistency:
    @given(model_strategy(), cascade_strategy())
    @settings(max_examples=60)
    def test_vectorized_equals_naive(self, model, cascade):
        assert log_likelihood(model, cascade) == pytest.approx(
            log_likelihood_naive(model, cascade), abs=1e-8
        )

    @given(model_strategy(), cascade_strategy())
    @settings(max_examples=60)
    def test_loglik_nonpositive_contributions_bounded(self, model, cascade):
        ll = log_likelihood(model, cascade)
        assert np.isfinite(ll)


class TestGradientConsistency:
    @given(model_strategy(), st.lists(cascade_strategy(), max_size=4))
    @settings(max_examples=40)
    def test_compiled_equals_per_cascade(self, model, cascades):
        cs = CascadeSet(N_NODES, cascades)
        gA1 = np.zeros_like(model.A)
        gB1 = np.zeros_like(model.B)
        ll1 = sum(
            accumulate_gradients(model.A, model.B, c, gA1, gB1) for c in cs
        )
        comp = CompiledCorpus.from_cascades(cs)
        gA2 = np.zeros_like(model.A)
        gB2 = np.zeros_like(model.B)
        ll2 = corpus_gradients(model.A, model.B, comp, gA2, gB2)
        assert ll1 == pytest.approx(ll2, abs=1e-8)
        assert np.allclose(gA1, gA2, atol=1e-10)
        assert np.allclose(gB1, gB2, atol=1e-10)

    @given(model_strategy(), cascade_strategy())
    @settings(max_examples=30)
    def test_gradient_matches_finite_differences(self, model, cascade):
        if cascade.size < 2:
            return
        gA, gB, _ = cascade_gradients(model, cascade)
        # spot-check one random coordinate per matrix (full FD is slow)
        rng = np.random.default_rng(0)
        v = int(rng.choice(cascade.nodes))
        k = int(rng.integers(N_TOPICS))
        h = 1e-6
        for mat, grad in ((model.A, gA), (model.B, gB)):
            orig = mat[v, k]
            mat[v, k] = orig + h
            up = log_likelihood(model, cascade)
            mat[v, k] = orig - h
            down = log_likelihood(model, cascade)
            mat[v, k] = orig
            fd = (up - down) / (2 * h)
            assert grad[v, k] == pytest.approx(fd, abs=1e-4)

    @given(model_strategy(), cascade_strategy())
    @settings(max_examples=30)
    def test_small_ascent_step_never_decreases(self, model, cascade):
        if cascade.size < 2:
            return
        gA, gB, ll0 = cascade_gradients(model, cascade)
        norm = np.linalg.norm(gA) + np.linalg.norm(gB)
        if norm == 0:
            return
        eps = 1e-7 / max(norm, 1.0)
        m2 = model.copy()
        m2.A += eps * gA
        m2.B += eps * gB
        m2.project()
        assert log_likelihood(m2, cascade) >= ll0 - 1e-9
