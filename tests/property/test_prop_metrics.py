"""Property-based tests for metrics and the cost model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.costmodel import CostModelParams, ParallelCostModel, lpt_makespan
from repro.prediction.metrics import accuracy, confusion_counts, f1_score, precision, recall

labels = st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=40)


@st.composite
def label_pair(draw):
    y_true = draw(labels)
    y_pred = draw(
        st.lists(st.sampled_from([-1, 1]), min_size=len(y_true), max_size=len(y_true))
    )
    return np.asarray(y_true), np.asarray(y_pred)


class TestMetricProperties:
    @given(label_pair())
    def test_counts_sum(self, pair):
        y_true, y_pred = pair
        tp, fp, fn, tn = confusion_counts(y_true, y_pred)
        assert tp + fp + fn + tn == y_true.size

    @given(label_pair())
    def test_ranges(self, pair):
        y_true, y_pred = pair
        for m in (precision, recall, f1_score, accuracy):
            v = m(y_true, y_pred)
            assert 0.0 <= v <= 1.0

    @given(label_pair())
    def test_f1_between_min_and_max_of_p_r(self, pair):
        y_true, y_pred = pair
        p = precision(y_true, y_pred)
        r = recall(y_true, y_pred)
        f = f1_score(y_true, y_pred)
        assert min(p, r) - 1e-12 <= f <= max(p, r) + 1e-12

    @given(labels)
    def test_perfect_prediction(self, ys):
        y = np.asarray(ys)
        assert accuracy(y, y) == 1.0
        if np.any(y == 1):
            assert f1_score(y, y) == 1.0

    @given(label_pair())
    def test_f1_symmetric_under_swap_of_pred_true(self, pair):
        """F1 = 2tp/(2tp+fp+fn) is invariant to swapping y_true/y_pred."""
        y_true, y_pred = pair
        assert f1_score(y_true, y_pred) == f1_score(y_pred, y_true)


durations = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=0,
    max_size=20,
)


class TestCostModelProperties:
    @given(durations, st.integers(min_value=1, max_value=64))
    def test_lpt_bounds(self, jobs, p):
        ms = lpt_makespan(jobs, p)
        pos = [j for j in jobs if j > 0]
        if not pos:
            assert ms == 0.0
            return
        assert ms >= max(pos) - 1e-9
        assert ms >= sum(pos) / p - 1e-9
        assert ms <= sum(pos) + 1e-9

    @given(durations)
    def test_lpt_monotone_in_cores(self, jobs):
        prev = None
        for p in (1, 2, 4, 8):
            ms = lpt_makespan(jobs, p)
            if prev is not None:
                assert ms <= prev + 1e-9
            prev = ms

    @given(
        st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=16),
        st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=50)
    def test_speedup_at_least_one_core_sane(self, work, p):
        model = ParallelCostModel(
            [work],
            [[5] * len(work)],
            CostModelParams(seconds_per_work_unit=1e-4),
        )
        assert model.execution_time(1) > 0
        assert model.speedup(1) == 1.0
        assert model.efficiency(p) <= 1.0 + 1e-9
