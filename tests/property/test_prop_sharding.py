"""Property-based tests for the sharded serving tier.

The whole-service property: for *any* interleaved event stream — dup
adopters, out-of-order timestamps, cascades scattered arbitrarily
across the hash ranges — a sharded service and one in-process
:class:`ScoringService` are bit-identical: the same applied-event
count, the same scores/labels/early-counts/features, the same
duplicate statistics.  A second property pins the eviction story:
under a tight per-shard capacity, each shard behaves exactly like a
single-process store fed only that shard's substream.

Examples are deliberately few (each one forks worker processes); the
cheap single-process half of the invariant is hammered separately in
``test_prop_serving.py``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.model import EmbeddingModel
from repro.prediction.pipeline import PredictionDataset, ViralityPredictor
from repro.serving.registry import ModelRegistry
from repro.serving.service import ScoringService
from repro.serving.sharding import ShardedScoringService, shard_of
from repro.serving.tracker import StoreConfig

N = 12
K = 3
CASCADE_IDS = tuple(f"cascade-{i}" for i in range(8))


def make_model(seed):
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 2, (N, K)), rng.uniform(0, 2, (N, K)))


def make_predictor(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(40, K))
    sizes = np.where(X[:, 0] > 0, 30, 3).astype(np.int64)
    ds = PredictionDataset(X=X, final_sizes=sizes, feature_names=tuple("xyz"))
    return ViralityPredictor(threshold=10, seed=seed).fit(ds)


@st.composite
def stream_strategy(draw, max_events=40):
    """Interleaved (cascade_id, node, t) events, dups and ties allowed."""
    size = draw(st.integers(min_value=1, max_value=max_events))
    events = []
    for j in range(size):
        cid = draw(st.sampled_from(CASCADE_IDS))
        node = draw(st.integers(min_value=0, max_value=N - 1))
        t = draw(st.floats(min_value=0, max_value=1, allow_nan=False))
        events.append((cid, node, t))
    return events


def assert_columns_equal(got, want):
    assert np.array_equal(got.ok, want.ok)
    assert np.array_equal(got.n_early, want.n_early)
    for field in ("scores", "labels", "features"):
        g, w = getattr(got, field), getattr(want, field)
        if w is None:
            assert g is None
        else:
            assert g is not None and np.array_equal(g, w, equal_nan=True)


class TestShardedParity:
    @given(
        stream_strategy(),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=8, deadline=None)
    def test_sharded_matches_single_process(self, events, seed, n_shards):
        sharded = ShardedScoringService(n_shards=n_shards)
        try:
            model, predictor = make_model(seed), make_predictor(seed)
            sharded.publish(model, predictor=predictor)
            reg = ModelRegistry()
            reg.publish(model, predictor=predictor)
            reference = ScoringService(reg)
            assert sharded.ingest_many(events) == reference.ingest_many(events)
            probe = list(CASCADE_IDS)
            assert_columns_equal(
                sharded.score_columns(probe, include_features=True),
                reference.score_columns(probe, include_features=True),
            )
            got, want = sharded.stats(), reference.stats()
            for key in ("ingested", "duplicates", "tracked_cascades"):
                assert got[key] == want[key]
        finally:
            sharded.close()

    @given(
        stream_strategy(max_events=60),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=6, deadline=None)
    def test_shard_equals_single_process_on_its_substream(self, events, seed):
        # tight capacity: LRU eviction must be confined to each hash
        # range, i.e. shard 0 == a capacity-2 store fed only its ids
        n_shards, capacity = 2, 2
        sharded = ShardedScoringService(n_shards=n_shards, capacity=capacity)
        try:
            model, predictor = make_model(seed), make_predictor(seed)
            sharded.publish(model, predictor=predictor)
            reg = ModelRegistry()
            reg.publish(model, predictor=predictor)
            reference = ScoringService(
                reg, store_config=StoreConfig(capacity=capacity)
            )
            substream = [e for e in events if shard_of(e[0], n_shards) == 0]
            sub_ids = [c for c in CASCADE_IDS if shard_of(c, n_shards) == 0]
            sharded.ingest_many(events)
            reference.ingest_many(substream)
            assert_columns_equal(
                sharded.score_columns(sub_ids, include_features=True),
                reference.score_columns(sub_ids, include_features=True),
            )
            assert (
                sharded.stats()["shards"][0]["evictions"]
                == reference.stats()["evictions"]
            )
        finally:
            sharded.close()
