"""Property-based tests for the serving layer.

The load-bearing property: a :class:`CascadeTracker` fed events one at a
time is **bit-identical** to batch :func:`extract_features` over the
observed prefix — after *every* event, for random adoption orders
(including out-of-order timestamps and duplicate adopters), across both
feature sets, and through LRU eviction / re-admission.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel
from repro.prediction.features import (
    EXTENDED_FEATURES,
    PAPER_FEATURES,
    IncrementalFeatures,
    extract_features,
)
from repro.serving.registry import ModelRegistry
from repro.serving.tracker import FeatureStore, StoreConfig

N = 10
K = 3


@st.composite
def model_strategy(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 2, (N, K)), rng.uniform(0, 2, (N, K)))


@st.composite
def event_stream(draw, min_size=0, max_size=N):
    """Adoption events in *arrival* order: distinct nodes, arbitrary
    (possibly non-monotone) finite timestamps."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    nodes = draw(st.permutations(list(range(N))).map(lambda p: list(p[:size])))
    times = draw(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    return list(zip(nodes, times))


class TestStreamedBatchParity:
    @given(model_strategy(), event_stream(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_after_every_event(self, model, events, extended):
        feature_set = EXTENDED_FEATURES if extended else PAPER_FEATURES
        inc = IncrementalFeatures(model, feature_set)
        seen = []
        for node, t in events:
            assert inc.update(node, t)
            seen.append((node, t))
            batch = extract_features(
                model,
                Cascade([n for n, _ in seen], [tt for _, tt in seen]),
                feature_set,
            )
            streamed = inc.features()
            assert np.array_equal(streamed, batch), (seen, streamed, batch)

    @given(model_strategy(), event_stream(min_size=1))
    @settings(max_examples=40, deadline=None)
    def test_duplicate_adopters_do_not_change_state(self, model, events):
        inc = IncrementalFeatures(model, EXTENDED_FEATURES)
        for node, t in events:
            inc.update(node, t)
        before = inc.features()
        node0, _ = events[0]
        assert not inc.update(node0, 2.0)  # at-least-once redelivery
        assert np.array_equal(inc.features(), before)

    @given(model_strategy(), event_stream(min_size=2))
    @settings(max_examples=40, deadline=None)
    def test_rebind_replays_identically(self, model, events):
        inc = IncrementalFeatures(model, EXTENDED_FEATURES)
        for node, t in events:
            inc.update(node, t)
        before = inc.features()
        inc.rebind(model)  # same model: a rebuild must change nothing
        assert np.array_equal(inc.features(), before)


class TestStoreParityUnderEviction:
    @given(
        model_strategy(),
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.integers(min_value=0, max_value=N - 1),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_store_features_match_observed_prefix(self, model, events, capacity):
        """Under LRU pressure the tracked state is exactly the events
        observed since (re-)admission — bit-identical to a batch
        extraction over that suffix, after every single event."""
        reg = ModelRegistry()
        snap = reg.publish(model)
        store = FeatureStore(config=StoreConfig(capacity=capacity))
        observed = {}  # cid -> [(node, t)] since last (re-)admission
        for cid, node, t in events:
            if cid not in store:
                observed[cid] = []  # fresh or re-admitted: history gone
            applied = store.ingest(cid, node, t, snap)
            dup = node in {n for n, _ in observed[cid]}
            assert applied != dup
            if applied:
                observed[cid].append((node, t))
            # eviction may have dropped other cascades; prune our view
            observed = {c: ev for c, ev in observed.items() if c in store}
            assert cid in store  # the cascade just touched is never evicted
            vec = store.features(cid, snap)
            batch = extract_features(
                model,
                Cascade(
                    [n for n, _ in observed[cid]],
                    [tt for _, tt in observed[cid]],
                ),
            )
            assert np.array_equal(vec, batch)
