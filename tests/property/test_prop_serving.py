"""Property-based tests for the serving layer.

The load-bearing property: a :class:`CascadeTracker` fed events one at a
time is **bit-identical** to batch :func:`extract_features` over the
observed prefix — after *every* event, for random adoption orders
(including out-of-order timestamps and duplicate adopters), across both
feature sets, and through LRU eviction / re-admission.

The batched-ingest twin carries the same invariant: folding events
through :meth:`IncrementalFeatures.update_many` /
:meth:`FeatureStore.ingest_many` in arbitrary burst sizes — interleaved
across cascades, through mid-burst LRU eviction, re-admission, and
model hot-swap replay — produces bit-identical features, identical LRU
order, and identical stats to the one-at-a-time path.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel
from repro.prediction.features import (
    EXTENDED_FEATURES,
    PAPER_FEATURES,
    IncrementalFeatures,
    extract_features,
)
from repro.serving.registry import ModelRegistry
from repro.serving.tracker import FeatureStore, StoreConfig

N = 10
K = 3


@st.composite
def model_strategy(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return EmbeddingModel(rng.uniform(0, 2, (N, K)), rng.uniform(0, 2, (N, K)))


@st.composite
def event_stream(draw, min_size=0, max_size=N):
    """Adoption events in *arrival* order: distinct nodes, arbitrary
    (possibly non-monotone) finite timestamps."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    nodes = draw(st.permutations(list(range(N))).map(lambda p: list(p[:size])))
    times = draw(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    return list(zip(nodes, times))


class TestStreamedBatchParity:
    @given(model_strategy(), event_stream(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_after_every_event(self, model, events, extended):
        feature_set = EXTENDED_FEATURES if extended else PAPER_FEATURES
        inc = IncrementalFeatures(model, feature_set)
        seen = []
        for node, t in events:
            assert inc.update(node, t)
            seen.append((node, t))
            batch = extract_features(
                model,
                Cascade([n for n, _ in seen], [tt for _, tt in seen]),
                feature_set,
            )
            streamed = inc.features()
            assert np.array_equal(streamed, batch), (seen, streamed, batch)

    @given(model_strategy(), event_stream(min_size=1))
    @settings(max_examples=40, deadline=None)
    def test_duplicate_adopters_do_not_change_state(self, model, events):
        inc = IncrementalFeatures(model, EXTENDED_FEATURES)
        for node, t in events:
            inc.update(node, t)
        before = inc.features()
        node0, _ = events[0]
        assert not inc.update(node0, 2.0)  # at-least-once redelivery
        assert np.array_equal(inc.features(), before)

    @given(model_strategy(), event_stream(min_size=2))
    @settings(max_examples=40, deadline=None)
    def test_rebind_replays_identically(self, model, events):
        inc = IncrementalFeatures(model, EXTENDED_FEATURES)
        for node, t in events:
            inc.update(node, t)
        before = inc.features()
        inc.rebind(model)  # same model: a rebuild must change nothing
        assert np.array_equal(inc.features(), before)


class TestStoreParityUnderEviction:
    @given(
        model_strategy(),
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.integers(min_value=0, max_value=N - 1),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_store_features_match_observed_prefix(self, model, events, capacity):
        """Under LRU pressure the tracked state is exactly the events
        observed since (re-)admission — bit-identical to a batch
        extraction over that suffix, after every single event."""
        reg = ModelRegistry()
        snap = reg.publish(model)
        store = FeatureStore(config=StoreConfig(capacity=capacity))
        observed = {}  # cid -> [(node, t)] since last (re-)admission
        for cid, node, t in events:
            if cid not in store:
                observed[cid] = []  # fresh or re-admitted: history gone
            applied = store.ingest(cid, node, t, snap)
            dup = node in {n for n, _ in observed[cid]}
            assert applied != dup
            if applied:
                observed[cid].append((node, t))
            # eviction may have dropped other cascades; prune our view
            observed = {c: ev for c, ev in observed.items() if c in store}
            assert cid in store  # the cascade just touched is never evicted
            vec = store.features(cid, snap)
            batch = extract_features(
                model,
                Cascade(
                    [n for n, _ in observed[cid]],
                    [tt for _, tt in observed[cid]],
                ),
            )
            assert np.array_equal(vec, batch)


class TestBatchedIngestParity:
    """`update_many` / `ingest_many` ≡ one-at-a-time ≡ batch extraction."""

    @given(
        model_strategy(),
        event_stream(),
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=20),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_update_many_bit_identical_at_every_burst_boundary(
        self, model, events, lengths, extended
    ):
        feature_set = EXTENDED_FEATURES if extended else PAPER_FEATURES
        inc = IncrementalFeatures(model, feature_set)
        seen = []
        i = b = 0
        while i < len(events):
            burst = events[i : i + lengths[b % len(lengths)]]
            i += len(burst)
            b += 1
            applied = inc.update_many(
                [n for n, _ in burst], [t for _, t in burst]
            )
            assert applied == len(burst)  # nodes are distinct by construction
            seen.extend(burst)
            batch = extract_features(
                model,
                Cascade([n for n, _ in seen], [tt for _, tt in seen]),
                feature_set,
            )
            assert np.array_equal(inc.features(), batch)

    @given(
        model_strategy(),
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.integers(min_value=0, max_value=N - 1),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            min_size=0,
            max_size=36,
        ),
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=12),
        st.lists(st.booleans(), min_size=12, max_size=12),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_ingest_many_matches_sequential_store(
        self, model, events, lengths, swaps, capacity, seed, extended
    ):
        """Interleaved bursts ≡ sequential ≡ batch: same features (bit
        for bit, against `extract_features` over the events observed
        since (re-)admission), same LRU order, same stats — through
        mid-burst eviction, re-admission, and hot-swap replay."""
        feature_set = EXTENDED_FEATURES if extended else PAPER_FEATURES
        reg = ModelRegistry()
        snap = reg.publish(model)
        cfg = StoreConfig(capacity=capacity)
        seq = FeatureStore(feature_set, config=cfg)
        bat = FeatureStore(feature_set, config=cfg)
        rng = np.random.default_rng(seed)
        observed = {}  # cid -> [(node, t)] since last (re-)admission
        i = b = 0
        while i < len(events):
            if swaps[b % len(swaps)]:  # hot-swap between bursts
                snap = reg.publish(
                    EmbeddingModel(
                        rng.uniform(0, 2, (N, K)), rng.uniform(0, 2, (N, K))
                    )
                )
            burst = events[i : i + lengths[b % len(lengths)]]
            i += len(burst)
            b += 1
            applied_seq = 0
            for cid, node, t in burst:
                if cid not in seq:
                    observed[cid] = []
                if seq.ingest(cid, node, t, snap):
                    observed[cid].append((node, t))
                    applied_seq += 1
                observed = {c: ev for c, ev in observed.items() if c in seq}
            assert bat.ingest_many(burst, snap) == applied_seq
            assert bat.cascade_ids() == seq.cascade_ids()
            for cid in bat.cascade_ids():  # LRU-order touch, same on both
                vec = bat.features(cid, snap)
                assert vec is not None
                batch = extract_features(
                    snap.model,
                    Cascade(
                        [n for n, _ in observed[cid]],
                        [tt for _, tt in observed[cid]],
                    ),
                    feature_set,
                )
                assert np.array_equal(vec, batch)
                assert np.array_equal(vec, seq.features(cid, snap))
        assert vars(bat.stats) == vars(seq.stats)
