"""Property-based tests: our Ward linkage vs scipy on random point sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.cluster.hierarchy import linkage
from scipy.spatial.distance import squareform

from repro.clustering.ward import ward_linkage
from repro.community.partition import Partition


@st.composite
def point_distance_matrix(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n = draw(st.integers(min_value=2, max_value=18))
    dim = draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, dim))
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt((diff**2).sum(-1))


class TestWardAgainstScipy:
    @given(point_distance_matrix())
    @settings(max_examples=30, deadline=None)
    def test_merge_heights_match(self, D):
        ours = np.sort(ward_linkage(D).heights())
        theirs = np.sort(
            linkage(squareform(D, checks=False), method="ward")[:, 2]
        )
        assert np.allclose(ours, theirs, atol=1e-8)

    @given(point_distance_matrix(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_cluster_sizes_consistent(self, D, k):
        n = D.shape[0]
        k = min(k, n)
        labels = ward_linkage(D).cut(k)
        assert np.unique(labels).size == k
        assert labels.shape == (n,)

    @given(point_distance_matrix())
    @settings(max_examples=20, deadline=None)
    def test_cut_nesting(self, D):
        """Cutting at k clusters refines the cut at k-1 clusters."""
        n = D.shape[0]
        if n < 3:
            return
        d = ward_linkage(D)
        coarse = Partition(d.cut(2))
        fine = Partition(d.cut(3))
        # every fine cluster lies entirely inside one coarse cluster
        for cid in range(fine.n_communities):
            nodes = fine.members(cid)
            assert np.unique(coarse.membership[nodes]).size == 1

    @given(point_distance_matrix())
    @settings(max_examples=20, deadline=None)
    def test_leaf_count_bookkeeping(self, D):
        d = ward_linkage(D)
        if d.Z.shape[0]:
            assert int(d.Z[-1, 3]) == D.shape[0]
