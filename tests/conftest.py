"""Shared fixtures (small deterministic corpora/models) + suite watchdog.

The fault-tolerance tests deliberately hang and kill worker processes; a
supervision bug would otherwise wedge the whole suite.  Every test runs
under a per-test deadline (``REPRO_TEST_TIMEOUT`` seconds, default 600):

* with the ``pytest-timeout`` plugin installed (a declared test extra),
  its default timeout is set and the plugin does the enforcement;
* without it — this container, for one — a SIGALRM fallback below fails
  the test from the alarm handler.  Main-thread/main-process only, which
  is where pytest runs tests; worker subprocesses are unaffected.
"""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.model import EmbeddingModel
from repro.graphs.generators import stochastic_block_model

_SUITE_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "600"))
_HAVE_PLUGIN = False


def pytest_configure(config):
    global _HAVE_PLUGIN
    _HAVE_PLUGIN = config.pluginmanager.hasplugin("timeout")
    if _HAVE_PLUGIN and getattr(config.option, "timeout", None) in (None, 0):
        config.option.timeout = _SUITE_TIMEOUT


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    use_alarm = (
        not _HAVE_PLUGIN
        and _SUITE_TIMEOUT > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return (yield)

    def _expired(signum, frame):
        pytest.fail(
            f"watchdog: test exceeded {_SUITE_TIMEOUT:.0f}s "
            f"(REPRO_TEST_TIMEOUT to adjust)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, _SUITE_TIMEOUT)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_cascade() -> Cascade:
    """Four infections with distinct times."""
    return Cascade([3, 1, 4, 0], [0.0, 0.5, 1.25, 2.0])


@pytest.fixture
def tied_cascade() -> Cascade:
    """Cascade containing simultaneous infections (tie-group edge case)."""
    return Cascade([0, 1, 2, 3, 4], [0.0, 1.0, 1.0, 1.0, 2.5])


@pytest.fixture
def small_corpus() -> CascadeSet:
    """Hand-written corpus over 6 nodes."""
    cs = CascadeSet(6)
    cs.append(Cascade([0, 1, 2], [0.0, 0.3, 0.9]))
    cs.append(Cascade([3, 4], [0.0, 0.7]))
    cs.append(Cascade([1, 0, 5], [0.0, 0.2, 1.1]))
    cs.append(Cascade([2, 1], [0.0, 0.4]))
    return cs


@pytest.fixture
def small_model() -> EmbeddingModel:
    return EmbeddingModel.random(6, 3, scale=0.8, seed=7)


@pytest.fixture(scope="session")
def sbm_graph():
    """A small SBM graph with planted 25-node communities (session-cached)."""
    graph, membership = stochastic_block_model(
        n_nodes=100, community_size=25, p_in=0.3, p_out=0.01, seed=42
    )
    return graph, membership


@pytest.fixture(scope="session")
def sim_corpus(sbm_graph):
    """A simulated corpus on the session SBM graph."""
    from repro.cascades.simulate import simulate_corpus

    graph, membership = sbm_graph
    cascades = simulate_corpus(
        graph, n_cascades=60, rates="weight", window=0.4, seed=9, min_size=2
    )
    return cascades, membership
