PYTHON ?= python
export PYTHONPATH := src
# Per-test watchdog (seconds) — enforced by pytest-timeout when installed,
# by the SIGALRM fallback in tests/conftest.py otherwise.  The fault-injection
# tests hang/kill workers on purpose; this keeps a supervision bug from
# wedging the suite.
export REPRO_TEST_TIMEOUT ?= 600

.PHONY: check fast test bench bench-dispatch bench-kernel bench-serving bench-ingest chaos lint analyze typecheck

## tier-1 gate: lint, analyze, typecheck, then the full test suite (what CI runs)
check: lint analyze typecheck
	$(PYTHON) -m pytest -x -q

## project-specific correctness lint (syntactic rules REP001–REP009), then
## ruff when installed.  The repro.devtools.lint pass always runs (stdlib-only);
## ruff is optional — absent ruff prints a skip notice, an installed-but-failing
## ruff fails the target.  The interprocedural REP10x analyzers live in the
## separate `analyze` target.
lint:
	$(PYTHON) -m repro.devtools.lint --ignore REP101,REP102,REP103,REP104 src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed — skipping (pip install -e '.[dev]')"; \
	fi

## interprocedural concurrency analysis (stdlib-only, DESIGN.md §15):
## REP101 guarded-by discipline, REP102 lock-order cycles, REP103 blocking
## calls under a lock, REP104 fork-unsafe captures
analyze:
	$(PYTHON) -m repro.devtools.lint --select REP101,REP102,REP103,REP104 src

## mypy strict profile (embedding/, parallel/, cascades/, serving/, ingest/); skipped when absent
typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed — skipping (pip install -e '.[dev]')"; \
	fi

## quick dev loop: skip slow (multiprocess-pool / fault-injection / benchmark) tests
fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

test: check

## regenerate every figure bench (CI scale; REPRO_BENCH_SCALE=paper for full)
bench:
	$(PYTHON) -m pytest -x -q benchmarks

## chaos suite: crash-kill / torn-write / slow-disk / task-death injection
## against the journal, recovery, the supervised server, and the sharded
## tier (SIGKILL a shard mid-burst → watchdog restart + journal replay to
## bit-identical state), plus the replay legs (slow consumer, scoring
## server restart mid-replay, SIGKILL a shard mid-replay) — run with the
## runtime sanitizer armed so dispatch-side invariants are checked too
chaos:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q \
		tests/unit/serving/test_durability.py \
		tests/unit/serving/test_server.py \
		tests/unit/serving/test_sharding.py \
		tests/unit/serving/test_tcp_client.py \
		tests/unit/ingest/test_replay_chaos.py \
		tests/unit/devtools/test_lock_sanitizer.py \
		tests/property/test_prop_durability.py

## arena-vs-legacy dispatch benchmark; writes BENCH_parallel.json
bench-dispatch:
	$(PYTHON) -m pytest -x -q benchmarks/test_perf_dispatch.py

## gradient-kernel benchmark (scatter plan vs np.add.at, allocation audit);
## writes BENCH_kernel.json
bench-kernel:
	$(PYTHON) -m pytest -x -q benchmarks/test_perf_kernel.py

## scoring-service benchmark (micro-batched vs one-at-a-time scoring,
## burst vs scalar ingest, flush allocation audit, latency percentiles,
## sharded scale-out + zero-copy publish gates); writes BENCH_serving.json
bench-serving:
	$(PYTHON) -m pytest -x -q benchmarks/test_perf_serving.py

## recorded-stream replay benchmark (flat-out throughput, replay/direct
## bit-identity, paced 10x+ replay vs the sharded tier with SLO gates);
## writes BENCH_ingest.json
bench-ingest:
	$(PYTHON) -m pytest -x -q benchmarks/test_perf_ingest.py
