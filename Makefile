PYTHON ?= python
export PYTHONPATH := src

.PHONY: check fast test bench bench-dispatch

## tier-1 gate: full test suite, fail fast (what CI runs)
check:
	$(PYTHON) -m pytest -x -q

## quick dev loop: skip slow (multiprocess-pool / benchmark) tests
fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

test: check

## regenerate every figure bench (CI scale; REPRO_BENCH_SCALE=paper for full)
bench:
	$(PYTHON) -m pytest -x -q benchmarks

## arena-vs-legacy dispatch benchmark; writes BENCH_parallel.json
bench-dispatch:
	$(PYTHON) -m pytest -x -q benchmarks/test_perf_dispatch.py
