PYTHON ?= python
export PYTHONPATH := src
# Per-test watchdog (seconds) — enforced by pytest-timeout when installed,
# by the SIGALRM fallback in tests/conftest.py otherwise.  The fault-injection
# tests hang/kill workers on purpose; this keeps a supervision bug from
# wedging the suite.
export REPRO_TEST_TIMEOUT ?= 600

.PHONY: check fast test bench bench-dispatch

## tier-1 gate: full test suite incl. slow fault-injection tests (what CI runs)
check:
	$(PYTHON) -m pytest -x -q

## quick dev loop: skip slow (multiprocess-pool / fault-injection / benchmark) tests
fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

test: check

## regenerate every figure bench (CI scale; REPRO_BENCH_SCALE=paper for full)
bench:
	$(PYTHON) -m pytest -x -q benchmarks

## arena-vs-legacy dispatch benchmark; writes BENCH_parallel.json
bench-dispatch:
	$(PYTHON) -m pytest -x -q benchmarks/test_perf_dispatch.py
