"""The §VI-A SBM experiment end to end, with feature diagnostics.

Reproduces the analysis behind Figs. 6–9: train embeddings on 2/3 of an
SBM cascade corpus, extract the early-adopter features diverA / normA /
maxA on the held-out third, show how they separate viral from non-viral
cascades, and sweep size thresholds to get the F1 curve.

Usage::

    python examples/sbm_virality.py
"""

import numpy as np

from repro import infer_embeddings, make_sbm_experiment, threshold_sweep
from repro.bench import format_series, format_table
from repro.prediction import build_dataset


def main() -> None:
    print("=== Generate the §VI-A corpus (scaled)")
    exp = make_sbm_experiment(
        n_nodes=600,
        community_size=40,
        n_train=500,
        n_test=250,
        seed=31,
    )
    sizes = exp.test.sizes()
    print(
        f"  train={len(exp.train)}, test={len(exp.test)}; "
        f"test sizes: median={np.median(sizes):.0f}, "
        f"p90={np.percentile(sizes, 90):.0f}, max={sizes.max()}"
    )

    print("\n=== Infer embeddings on the training corpus")
    model, result, tree = infer_embeddings(exp.train, n_topics=10, seed=32)
    print(f"  merge tree: {tree.widths()}")

    print("\n=== Figs. 6-8: early-adopter features vs final size")
    ds = build_dataset(
        model, exp.test, early_fraction=2 / 7, window=exp.window
    )
    viral_threshold = int(np.quantile(sizes, 0.8))
    is_viral = ds.final_sizes >= viral_threshold
    rows = []
    for j, name in enumerate(ds.feature_names):
        r = np.corrcoef(ds.X[:, j], ds.final_sizes)[0, 1]
        rows.append(
            (
                name,
                r,
                float(ds.X[is_viral, j].mean()),
                float(ds.X[~is_viral, j].mean()),
            )
        )
    print(
        format_table(
            ["feature", "corr(final size)", "mean | viral", "mean | normal"],
            rows,
        )
    )
    print(
        "  (the paper's Fig. 6 observation: large cascades have clearly "
        "larger diverA/normA/maxA)"
    )

    print("\n=== Fig. 9: F1 vs size threshold (10-fold CV)")
    thresholds = sorted(
        {int(np.quantile(sizes, q)) for q in (0.3, 0.5, 0.65, 0.8, 0.9, 0.95)}
    )
    sweep = threshold_sweep(
        model, exp.test, thresholds=thresholds, window=exp.window, seed=33
    )
    print(format_table(["threshold", "F1", "pos fraction"], sweep.rows()))
    print(format_series(
        "size histogram (bin start, count)",
        sweep.hist_edges[:-1].tolist(),
        sweep.hist_counts.tolist(),
    ))
    print(
        f"\n  F1 at top-20%: {sweep.f1_at_top_fraction(0.2):.2f} "
        f"(paper: ~0.8 on the full-scale corpus)"
    )


if __name__ == "__main__":
    main()
