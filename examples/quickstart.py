"""Quickstart: infer embeddings from cascades and predict viral ones.

Runs the paper's full pipeline on a small synthetic instance in under a
minute:

1. generate an SBM world with ground-truth influence/selectivity and
   simulate a cascade corpus (§VI-A);
2. infer node embeddings with the community-parallel algorithm
   (Algorithms 1–2);
3. predict which held-out cascades go viral from their early adopters
   (§V), and report F1 across size thresholds (Fig. 9).

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import infer_embeddings, make_sbm_experiment, threshold_sweep
from repro.analysis import rank_influencers
from repro.bench import format_table


def main() -> None:
    print("=== 1. Generate an SBM cascade corpus (paper §VI-A, scaled down)")
    exp = make_sbm_experiment(
        n_nodes=400,
        community_size=40,
        n_train=300,
        n_test=150,
        seed=21,
    )
    sizes = exp.cascades.sizes()
    print(
        f"  {len(exp.cascades)} cascades over {exp.graph.n_nodes} nodes; "
        f"sizes: median={np.median(sizes):.0f}, max={sizes.max()}"
    )

    print("\n=== 2. Infer influence/selectivity embeddings (Alg. 1 + 2)")
    model, result, tree = infer_embeddings(exp.train, n_topics=10, seed=21)
    print(f"  merge tree widths: {tree.widths()}")
    print(f"  total work: {result.total_work_units} iteration-infections")
    print(f"  final block log-likelihood: {result.final_loglik:.1f}")

    print("\n=== 3. Influencer identification inside the most active community")
    # Influence magnitudes are comparable among nodes that compete to
    # explain the same infections (one community); across communities the
    # partial likelihood of Eq. 8 does not pin a common scale.
    from repro.cascades.stats import node_participation_counts

    counts = node_participation_counts(exp.train)
    comm_activity = np.bincount(
        exp.membership, weights=counts, minlength=exp.membership.max() + 1
    )
    hub = int(np.argmax(comm_activity))
    members = np.flatnonzero(exp.membership == hub)
    inferred = model.A[members].sum(axis=1)
    true = exp.truth.A[members].sum(axis=1)
    order = np.argsort(inferred)[::-1][:5]
    print(f"  community {hub} ({members.size} nodes, most cascade activity):")
    for i in order:
        print(
            f"  node {members[i]:4d}  inferred={inferred[i]:6.2f}  "
            f"true={true[i]:6.2f}"
        )
    rho = np.corrcoef(
        np.argsort(np.argsort(inferred)), np.argsort(np.argsort(true))
    )[0, 1]
    print(f"  within-community rank correlation with ground truth: {rho:.2f}")

    print("\n=== 4. Early-stage virality prediction (first 2/7 of the window)")
    sizes_test = exp.test.sizes()
    thresholds = [
        int(np.quantile(sizes_test, q)) for q in (0.5, 0.7, 0.8, 0.9)
    ]
    sweep = threshold_sweep(
        model, exp.test, thresholds=thresholds, window=exp.window, seed=21
    )
    print(
        format_table(
            ["size threshold", "F1 (10-fold CV)", "positive fraction"],
            sweep.rows(),
        )
    )
    print(
        f"\n  F1 at the top-20% threshold: "
        f"{sweep.f1_at_top_fraction(0.2):.2f} — a quick small-instance demo; "
        f"the benchmark-scale run (800 nodes, benchmarks/) reaches ~0.72, "
        f"the paper reports ~0.8"
    )


if __name__ == "__main__":
    main()
