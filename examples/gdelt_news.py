"""News-event analysis on the synthetic GDELT world (paper §II + §VI-B).

Reproduces the paper's exploratory findings on news-event data:

* hierarchical clustering of cascades groups them by region (Fig. 1);
* the co-reporting backbone of sites is regionally modular (Fig. 2);
* events-reported-per-site follows a power law — the Matthew effect
  (Fig. 3);
* viral news events are predictable from the first 5 hours of reports
  (Fig. 12).

Usage::

    python examples/gdelt_news.py
"""

import numpy as np

from repro import infer_embeddings, threshold_sweep
from repro.analysis import fit_power_law, log_binned_histogram
from repro.bench import format_table
from repro.cascades.stats import node_participation_counts
from repro.clustering import jaccard_distance_matrix, ward_linkage
from repro.community import Partition, slpa
from repro.cooccurrence import build_coreporting_backbone
from repro.datasets import GDELTConfig, SyntheticGDELT


def main() -> None:
    print("=== Build the synthetic news world")
    world = SyntheticGDELT(GDELTConfig(n_sites=800), seed=11)
    events = world.sample_events(500, seed=12)
    sizes = events.sizes()
    print(
        f"  {world.n_sites} sites in {len(world.region_names)} regions "
        f"({world.n_clusters} topical clusters); {len(events)} events, "
        f"median size {np.median(sizes):.0f}"
    )
    t90 = [np.quantile(c.times - c.times[0], 0.9) for c in events]
    print(
        f"  life cycle: median time-to-90%-of-reports = {np.median(t90):.1f}h "
        f"(window {world.config.window_hours:.0f}h) — 'most news events are "
        f"reported within the first 50 hours'"
    )

    print("\n=== Fig. 1: Ward dendrogram of event cascades (Jaccard distance)")
    sample = events[:300]
    dend = ward_linkage(jaccard_distance_matrix(sample))
    print("  top merges (Ward distance, #cascades):")
    for h, count in dend.top_merges(6):
        print(f"    [{h:6.2f} , {count}]")
    labels = dend.cut(len(world.region_names))
    # purity: do dendrogram clusters align with the seed region?
    seed_regions = np.array([world.regions[c.source] for c in sample])
    purities = []
    for lab in np.unique(labels):
        members = seed_regions[labels == lab]
        purities.append(np.bincount(members).max() / members.size)
    print(f"  cluster/region purity at {len(set(labels))} clusters: "
          f"{np.mean(purities):.2f}")

    print("\n=== Fig. 2: co-reporting backbone of news sites")
    backbone = build_coreporting_backbone(events, min_count=8)
    active = int(np.sum(backbone.out_degree() > 0))
    print(f"  backbone: {active} sites, {backbone.n_edges // 2} links")
    part = slpa(backbone, seed=13)
    nontrivial = [c for c in part.communities() if len(c) >= 5]
    print(f"  SLPA finds {len(nontrivial)} clusters of >= 5 sites")
    agreement = part.agreement(world.region_partition)
    print(f"  pairwise agreement with true regions: {agreement:.2f}")

    print("\n=== Fig. 3: Matthew effect in events-per-site")
    counts = node_participation_counts(events).astype(float)
    centers, hist = log_binned_histogram(counts[counts > 0], n_bins=8)
    for c, h in zip(centers, hist):
        bar = "#" * int(np.ceil(40 * h / max(hist.max(), 1)))
        print(f"    {c:8.1f} events | {h:4d} sites {bar}")
    alpha, xmin = fit_power_law(counts[counts > 0], x_min=np.median(counts))
    print(f"  fitted tail exponent alpha = {alpha:.2f} (x_min={xmin:.0f})")

    print("\n=== Fig. 12: predict viral events from the first 5 hours")
    train, test = world.split_for_prediction(events, 350)
    model, _, tree = infer_embeddings(train, n_topics=10, seed=14)
    print(f"  embeddings inferred via merge tree {tree.widths()}")
    thresholds = [int(np.quantile(test.sizes(), q)) for q in (0.5, 0.8, 0.9)]
    sweep = threshold_sweep(
        model,
        test,
        thresholds=thresholds,
        early_fraction=world.early_fraction,
        window=world.config.window_hours,
        seed=15,
    )
    print(
        format_table(
            ["size threshold", "F1 (10-fold CV)", "positive fraction"],
            sweep.rows(),
        )
    )


if __name__ == "__main__":
    main()
