"""Streaming scenario: monitor an event feed and flag viral events live.

The paper's motivation is *emergent* news events — by the time a batch
refit finishes, the story has moved.  This example runs the streaming
estimator (`OnlineEmbeddingInference.partial_fit`) over an arriving event
feed and, for each new event, predicts virality from its first hours
using three predictors side by side:

* embedding features + linear SVM (the paper's method, §V first family);
* the SEISMIC-style self-exciting point process (§V second family);
* a naive early-size threshold.

Usage::

    python examples/online_monitoring.py
"""

import numpy as np

from repro import OnlineEmbeddingInference, SelfExcitingSizePredictor
from repro.bench import format_table
from repro.datasets import GDELTConfig, SyntheticGDELT
from repro.prediction import LinearSVM, build_dataset
from repro.prediction.metrics import f1_score


def main() -> None:
    print("=== Build the news world and an event stream")
    world = SyntheticGDELT(GDELTConfig(n_sites=600), seed=41)
    stream = world.sample_events(700, seed=42)
    window = world.config.window_hours
    early = world.early_fraction
    print(
        f"  {len(stream)} events over {world.n_sites} sites; predictions "
        f"use the first {world.config.early_hours:.0f}h of each event"
    )

    print("\n=== Stream phase 1: warm up the online estimator (400 events)")
    online = OnlineEmbeddingInference(world.n_sites, n_topics=10, seed=43)
    warmup, live = world.split_for_prediction(stream, 400)
    for start in range(0, len(warmup), 50):  # arrives in batches of ~50
        online.partial_fit(list(warmup)[start : start + 50])
    print(f"  processed {online.t} cascade updates")

    print("\n=== Stream phase 2: classify the next 300 events as they arrive")
    sizes = live.sizes()
    threshold = int(np.quantile(sizes, 0.8))
    y_true = np.where(sizes >= threshold, 1, -1)
    print(f"  'viral' = more than {threshold} reporting sites (top 20%)")

    # paper's method on the online embeddings (train the SVM on warmup)
    ds_warm = build_dataset(online.model, warmup, early_fraction=early, window=window)
    svm = LinearSVM(seed=44)
    y_warm = ds_warm.labels(threshold)
    mu, sd = ds_warm.X.mean(axis=0), ds_warm.X.std(axis=0)
    sd[sd == 0] = 1.0
    svm.fit((ds_warm.X - mu) / sd, y_warm)
    ds_live = build_dataset(online.model, live, early_fraction=early, window=window)
    y_feat = svm.predict((ds_live.X - mu) / sd)

    # point process (timestamps only)
    pp = SelfExcitingSizePredictor(omega=0.5)
    y_pp = pp.classify(live, threshold=threshold, early_fraction=early, window=window)

    # naive: current size at the early horizon
    early_sizes = np.asarray(
        [c.prefix_by_time(c.times[0] + early * window).size for c in live]
    )
    naive_cut = np.quantile(early_sizes, 0.8)
    y_naive = np.where(early_sizes >= naive_cut, 1, -1)

    rows = [
        ("embeddings + SVM (paper)", f1_score(y_true, y_feat)),
        ("self-exciting point process", f1_score(y_true, y_pp)),
        ("naive early-size cut", f1_score(y_true, y_naive)),
    ]
    print(format_table(["predictor", "F1 on live events"], rows))

    print(
        "\n  The online estimator never refits from scratch: each batch of "
        "events is folded in with decaying-step SGD, so the monitor keeps "
        "up with the feed."
    )


if __name__ == "__main__":
    main()
