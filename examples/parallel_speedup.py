"""Community-parallel inference: real multiprocess run + scaling replay.

Demonstrates the paper's systems contribution:

1. runs the hierarchical engine with the **multiprocess** backend (real
   OS processes, shared-memory embeddings) and verifies the result is
   numerically identical to the serial engine — the write-write
   conflict-freedom of §IV-B;
2. calibrates the parallel cost model from the measured run and replays
   the schedule on a simulated 1–64-core machine, regenerating the
   shape of Figs. 10 and 13 (near-linear scaling to 8–16 cores, best
   speedup around 32, efficiency decay at 64).

Usage::

    python examples/parallel_speedup.py
"""

import numpy as np

from repro import (
    CostModelParams,
    HierarchicalInference,
    MergeTree,
    MultiprocessBackend,
    ParallelCostModel,
    SerialBackend,
    make_sbm_experiment,
)
from repro.bench import format_table
from repro.community import Partition, slpa
from repro.cooccurrence import build_cooccurrence_graph
from repro.embedding import EmbeddingModel, OptimizerConfig


def main() -> None:
    print("=== Build an SBM corpus and detect communities")
    # Uniform communities (the paper's plain §VI-A instance) keep the
    # per-community workloads balanced, as in the scaling experiments;
    # the merge tree stops at q=4 communities (Algorithm 2's threshold —
    # a full merge would serialize the last level).
    exp = make_sbm_experiment(
        n_nodes=800,
        community_size=40,
        n_train=500,
        n_test=0,
        hub_communities=False,
        rate_scale=0.85,
        seed=21,
    )
    graph = build_cooccurrence_graph(exp.train).filter_edges(0.1)
    partition = slpa(graph, seed=22)
    print(
        f"  SLPA: {partition.n_communities} communities "
        f"(planted: {exp.planted_partition.n_communities})"
    )
    tree = MergeTree(partition, stop_at=4)
    print(f"  merge tree widths: {tree.widths()}")

    cfg = OptimizerConfig(max_iters=40)

    print("\n=== Serial vs multiprocess: identical results")
    m_serial = EmbeddingModel.random(800, 10, seed=23)
    result = HierarchicalInference(tree, cfg, SerialBackend()).fit(
        m_serial, exp.train
    )
    m_par = EmbeddingModel.random(800, 10, seed=23)
    with MultiprocessBackend(n_workers=2) as backend:
        HierarchicalInference(tree, cfg, backend).fit(m_par, exp.train)
    diff = m_serial.frobenius_distance(m_par)
    print(f"  ||serial - parallel||_F = {diff:.2e}  (conflict-free by design)")

    print("\n=== Replay the measured schedule on a simulated cluster")
    print(f"  measured 1-core compute: {result.serial_seconds:.2f}s "
          f"({result.total_work_units} iteration-infections)")
    model = ParallelCostModel.calibrated(result, CostModelParams())
    cores = [1, 2, 4, 8, 16, 32, 64]
    curves = model.curves(cores)
    rows = [
        (p, t, s, e)
        for p, t, s, e in zip(
            curves["cores"], curves["time"], curves["speedup"], curves["efficiency"]
        )
    ]
    print(
        format_table(
            ["cores", "time (s)", "speedup", "efficiency"], rows
        )
    )
    best = cores[int(np.argmax(curves["speedup"]))]
    print(f"\n  best speedup at {best} cores "
          f"(paper: best at 32, decaying toward 64)")


if __name__ == "__main__":
    main()
