"""Real-time scoring: train → checkpoint → serve → hot-swap → crash →
recover → scale out (DESIGN.md §12, §14, §16).

The paper's predictor is an offline artifact; this example runs the
deployment half.  It trains embeddings and a virality SVM, saves both as
the ``.npz`` artifacts ``repro serve`` consumes, assembles the scoring
service from them — with a write-ahead journal armed — replays held-out
cascades' early adopters as a live event stream, scores them through the
micro-batched path, hot-swaps in a refit model mid-stream without
dropping a request, then kills the service without ceremony and rebuilds
it from the journal: the recovered scores are bit-identical.  It then
stands the same artifacts up behind a sharded multi-process tier and
shows the scores don't change — sharding is a deployment knob, not a
semantics knob.  Finally it records the event stream to a crc-framed
``.evs`` file and replays it 50× real time against the sharded tier
(DESIGN.md §17), grading the run with an SLO report and checking the
replayed store fingerprint against a direct ingest.

The same service speaks newline-JSON over TCP or stdio::

    repro serve --model model.npz --predictor svm.npz --port 7569 \
        --journal-dir wal/
    repro serve --journal-dir wal/ --recover --port 7569   # after a crash
    repro serve --model model.npz --predictor svm.npz --port 7569 \
        --shards 4                                         # sharded tier

Usage::

    python examples/scoring_service.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import infer_embeddings, make_sbm_experiment
from repro.bench import format_table
from repro.ingest import (
    ReplayConfig,
    StreamWriter,
    batches_from_cascades,
    replay_recording,
    stream_info,
)
from repro.prediction.pipeline import ViralityPredictor, build_dataset
from repro.serving import (
    JournalConfig,
    ScoringClient,
    build_service,
    build_sharded_service,
    recover_service,
)


def main() -> None:
    print("=== 1. Train: embeddings + virality SVM on the training corpus")
    exp = make_sbm_experiment(
        n_nodes=300,
        community_size=30,
        n_train=150,
        n_test=100,
        seed=33,
    )
    model, result, _ = infer_embeddings(exp.train, n_topics=8, seed=33)
    threshold = int(np.quantile(exp.train.sizes(), 0.8))
    dataset = build_dataset(model, exp.train, window=exp.window)
    predictor = ViralityPredictor(threshold=threshold, seed=33).fit(dataset)
    print(
        f"  {len(exp.train)} training cascades, final block "
        f"log-likelihood {result.final_loglik:.1f}; "
        f"'viral' = final size >= {threshold} (top 20%)"
    )

    print("\n=== 2. Checkpoint the artifacts and assemble the service (journaled)")
    workdir = Path(tempfile.mkdtemp(prefix="repro-serving-"))
    model.save(workdir / "model.npz")
    predictor.save(workdir / "svm.npz")
    # journal_dir arms the write-ahead log (DESIGN.md §14): every
    # admitted ingest burst and model swap is journaled, so the service
    # can be rebuilt bit-identically after a crash (step 5).
    service = build_service(
        str(workdir / "model.npz"),
        predictor_path=str(workdir / "svm.npz"),
        max_batch=32,
        max_delay=0.002,
        journal_dir=workdir / "wal",
    )
    client = ScoringClient(service)
    print(
        f"  artifacts in {workdir}; model version "
        f"{service.stats()['model_version']}; journaling to {workdir / 'wal'}"
    )

    print("\n=== 3. Stream each held-out cascade's early adopters, then score")
    # The service sees exactly what an online monitor would: the events
    # inside the early window, in arrival order.  Each cascade's prefix
    # is already struct-of-arrays (node column + time column), so it
    # goes down the columnar burst path — one vectorized fold per
    # cascade, no per-event tuple boxing.
    cascade_ids = []
    for i, cascade in enumerate(exp.test):
        cid = f"event-{i}"
        cascade_ids.append(cid)
        cutoff = cascade.times[0] + exp.early_fraction * exp.window
        prefix = cascade.prefix_by_time(cutoff)
        client.ingest_columns(
            [cid] * len(prefix.nodes),
            np.asarray(prefix.nodes),
            np.asarray(prefix.times),
        )
    results = client.score_many(cascade_ids)
    stats = service.stats()
    print(
        f"  {stats['ingested']} events folded in; {stats['scored']} requests "
        f"scored in {stats['batches']} micro-batches"
    )

    final_sizes = exp.test.sizes()
    order = np.argsort([-r.score for r in results])[:5]
    rows = [
        (
            results[i].cascade_id,
            results[i].n_early,
            f"{results[i].score:+.2f}",
            "viral" if results[i].label > 0 else "-",
            int(final_sizes[i]),
            "viral" if final_sizes[i] >= threshold else "-",
        )
        for i in order
    ]
    print("  top 5 by score:")
    table = format_table(
        ("cascade", "early", "score", "predicted", "final size", "actual"), rows
    )
    print("\n".join("    " + line for line in table.splitlines()))
    predicted = np.array([r.label for r in results])
    actual = np.where(final_sizes >= threshold, 1, -1)
    agree = float(np.mean(predicted == actual))
    print(f"  prediction/outcome agreement: {agree:.0%}")

    print("\n=== 4. Hot-swap a refit model mid-stream")
    # A refit on the full corpus finishes; publish it.  In-flight
    # trackers rebind lazily (replaying their observed events under the
    # new embeddings), so the same cascades re-score under version 2.
    model2, _, _ = infer_embeddings(exp.cascades, n_topics=8, seed=33)
    dataset2 = build_dataset(model2, exp.train, window=exp.window)
    predictor2 = ViralityPredictor(threshold=threshold, seed=33).fit(dataset2)
    # service.publish is the journaled twin of registry.publish: the new
    # snapshot also goes down as a swap record, so recovery re-swaps it.
    service.publish(model2, predictor=predictor2, source="refit")
    results2 = client.score_many(cascade_ids)
    stats = service.stats()
    sample = results[int(order[0])], results2[int(order[0])]
    print(
        f"  model version {sample[0].model_version} -> "
        f"{sample[1].model_version}; {stats['rebuilds']} trackers rebuilt; "
        f"top cascade rescored {sample[0].score:+.2f} -> {sample[1].score:+.2f}"
    )
    predicted2 = np.array([r.label for r in results2])
    agree2 = float(np.mean(predicted2 == actual))
    print(f"  agreement after swap: {agree2:.0%}")

    print("\n=== 5. Crash, then recover from the journal")
    # Simulate a hard crash: walk away from the service without drain()
    # or seal — no goodbye flush.  Every appended record already reached
    # the OS (the journal flushes per frame; the fsync policy decides
    # when it hits the platter), so recovery sees the full stream.
    reference = {r.cascade_id: r.score for r in results2}
    del service, client
    recovered, report = recover_service(JournalConfig(directory=workdir / "wal"))
    results3 = ScoringClient(recovered).score_many(cascade_ids)
    identical = all(reference[r.cascade_id] == r.score for r in results3)
    print(
        f"  replayed {report.snapshot_events + report.events_replayed} events "
        f"+ {report.swaps_replayed} model swaps across "
        f"{report.segments_replayed} segments in {report.elapsed_s * 1e3:.0f} ms"
    )
    print(f"  recovered scores bit-identical to pre-crash: {identical}")
    assert identical
    recovered.drain()  # graceful this time: flush, seal, stop

    print("\n=== 6. Scale out: the same artifacts behind a sharded tier")
    # DESIGN.md §16: ``--shards N`` splits tracker state across N worker
    # processes by cascade-id hash.  The router fans each burst out over
    # per-shard pipes and merges replies in request order; a model
    # publish crosses the plane bytes once, through a shared-memory
    # segment every shard attaches read-only.  Same client, same wire
    # protocol, same scores.
    sharded = build_sharded_service(
        str(workdir / "model.npz"),
        n_shards=2,
        predictor_path=str(workdir / "svm.npz"),
        max_batch=32,
        max_delay=0.002,
    )
    try:
        sh_client = ScoringClient(sharded)
        for i, cascade in enumerate(exp.test):
            cutoff = cascade.times[0] + exp.early_fraction * exp.window
            prefix = cascade.prefix_by_time(cutoff)
            sh_client.ingest_columns(
                [cascade_ids[i]] * len(prefix.nodes),
                np.asarray(prefix.nodes),
                np.asarray(prefix.times),
            )
        sh_results = sh_client.score_many(cascade_ids)
        same_v1 = all(a.score == b.score for a, b in zip(sh_results, results))
        # One zero-copy publish swaps every shard to the refit model.
        sharded.publish(model2, predictor=predictor2, source="refit")
        sh_results2 = sh_client.score_many(cascade_ids)
        same_v2 = all(r.score == reference[r.cascade_id] for r in sh_results2)
        sh_stats = sharded.stats()
        per_shard = "+".join(
            str(s["tracked_cascades"]) for s in sh_stats["shards"]
        )
        print(
            f"  {sh_stats['n_shards']} shard processes tracking "
            f"{per_shard} cascades; scores bit-identical to the "
            f"in-process tier (v1: {same_v1}, after swap: {same_v2})"
        )
        assert same_v1 and same_v2
    finally:
        sharded.close()

    print("\n=== 7. Record the event stream, replay it 50x real-time")
    # DESIGN.md §17: capture the test corpus as a crc-framed recording
    # (cascade starts laid onto a 30-second wall-clock timeline), then
    # replay it paced against a fresh sharded tier and grade the run —
    # pacing is a latency knob, never a semantics knob, so the replayed
    # store must fingerprint-match a direct columnar ingest.
    stream_path = workdir / "test.evs"
    batches = batches_from_cascades(list(exp.test), span_s=30.0, seed=7)
    with StreamWriter(stream_path) as writer:
        for batch in batches:
            writer.write_batch(batch)
    info = stream_info(stream_path)
    print(
        f"  recorded {info.n_events} events / {info.n_cascades} cascades "
        f"spanning {info.duration_s:.1f}s -> {stream_path.name}"
    )
    replayed = build_sharded_service(
        str(workdir / "model.npz"),
        n_shards=2,
        predictor_path=str(workdir / "svm.npz"),
        max_batch=32,
        max_delay=0.002,
    )
    try:
        report = replay_recording(
            stream_path,
            replayed,
            ReplayConfig(speed=50.0, score_every=8, slo_p99_ms=250.0),
        )
        direct = build_service(
            str(workdir / "model.npz"),
            predictor_path=str(workdir / "svm.npz"),
        )
        for batch in batches:
            direct.ingest_columns(list(batch.cascade_ids), batch.nodes, batch.times)
        # fingerprints are per-tier (the sharded one folds per-shard
        # state), so cross-tier parity is judged on what the tiers
        # serve: the scores
        stream_cids = sorted({c for b in batches for c in b.cascade_ids})
        got = replayed.score_columns(stream_cids)
        want = direct.score_columns(stream_cids)
        identical = bool(np.array_equal(got.scores, want.scores))
        for line in report.format_lines():
            print("  " + line)
        print(f"  replayed scores bit-identical to direct ingest: {identical}")
        assert report.ok and identical
    finally:
        replayed.close()


if __name__ == "__main__":
    main()
