"""Cascade log-likelihood under the embedding model (Eq. 8).

For a cascade *c* the log-likelihood is

.. math::

    L_c(A, B) = \\sum_{v \\in c} \\Big[ \\sum_{l \\prec_c v} (t_l - t_v)
        A_l B_v^T + \\ln \\sum_{u \\prec_c v} A_u B_v^T \\Big]

where ``l ≺_c v`` means *l* is infected strictly earlier than *v* in *c*.
The cascade's first infection (and any infection tied with it) has no
predecessors; following the survival-analysis convention its occurrence is
treated as exogenous and contributes no term (the paper's Eq. 8 is
otherwise undefined at the source).

Both a vectorized implementation (cumulative sums over the time-sorted
infections, O(s·K)) and a naive O(s²·K) double-loop reference (used as a
test oracle) are provided.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.model import EmbeddingModel

__all__ = [
    "log_likelihood",
    "log_likelihood_naive",
    "corpus_log_likelihood",
    "tie_groups",
]

#: Guard for log/division: denominators below this are clamped.
EPS = 1e-12


def tie_groups(times: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """For sorted *times*, return ``(starts, ends)`` per position.

    ``starts[i]`` is the index of the first position sharing ``times[i]``
    and ``ends[i]`` one past the last — so positions ``< starts[i]`` are
    the *strict* predecessors of position *i* and positions ``>= ends[i]``
    its strict successors.
    """
    starts = np.searchsorted(times, times, side="left")
    ends = np.searchsorted(times, times, side="right")
    return starts, ends


def log_likelihood(
    model: EmbeddingModel, cascade: Cascade, eps: float = EPS
) -> float:
    """Vectorized Eq. 8 for one cascade."""
    s = cascade.size
    if s < 2:
        return 0.0
    nodes, times = cascade.nodes, cascade.times
    A_pos = model.A[nodes]  # (s, K)
    B_pos = model.B[nodes]
    starts, _ = tie_groups(times)
    K = A_pos.shape[1]
    # Exclusive prefix sums: cumA[j] = sum of A over positions < j.
    cumA = np.vstack([np.zeros((1, K)), np.cumsum(A_pos, axis=0)])
    cumtA = np.vstack([np.zeros((1, K)), np.cumsum(times[:, None] * A_pos, axis=0)])
    H = cumA[starts]  # Σ_{l ≺ v} A_l           (Eq. 14)
    G = cumtA[starts]  # Σ_{l ≺ v} t_l A_l       (Eq. 15)
    valid = starts > 0
    if not np.any(valid):
        return 0.0
    lin = np.einsum("ik,ik->i", G - times[:, None] * H, B_pos)
    denom = np.einsum("ik,ik->i", H, B_pos)
    denom = np.maximum(denom, eps)
    return float(np.sum(lin[valid] + np.log(denom[valid])))


def log_likelihood_naive(
    model: EmbeddingModel, cascade: Cascade, eps: float = EPS
) -> float:
    """Literal double-loop transcription of Eq. 8 (test oracle, O(s²·K))."""
    total = 0.0
    items = list(cascade)
    for v, tv in items:
        lin = 0.0
        hazard_sum = 0.0
        has_pred = False
        for l, tl in items:
            if tl < tv:
                has_pred = True
                rate = float(model.A[l] @ model.B[v])
                lin += (tl - tv) * rate
                hazard_sum += rate
        if has_pred:
            total += lin + float(np.log(max(hazard_sum, eps)))
    return total


def corpus_log_likelihood(
    model: EmbeddingModel, cascades: CascadeSet, eps: float = EPS
) -> float:
    """Σ_c L_c — the MLE objective of Eq. 9."""
    return float(sum(log_likelihood(model, c, eps=eps) for c in cascades))
