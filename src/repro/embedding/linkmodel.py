"""Per-link exponential-rate baseline (the O(n²)-parameter comparator).

The related work the paper positions against ([2], NetRate-style) models
each potential propagation *link* with its own rate parameter λ_uv; with
exponential delays the cascade log-likelihood is

.. math::

    L_c(\\Lambda) = \\sum_{v \\in c} \\Big[ -\\!\\sum_{l \\prec v}
        \\lambda_{lv} (t_v - t_l) + \\ln \\sum_{u \\prec v} \\lambda_{uv} \\Big].

Only pairs that co-occur (in order) in at least one cascade can have a
positive MLE rate, but that candidate set still grows ~quadratically with
cascade size — the scalability wall that motivates the paper's node
embedding (§I: "O(n²) potential edges need to be taken into
consideration").  This class exists as the sequential baseline for the
abstract's 50-fold speedup claim and as a sanity comparator for inferred
structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.hazards import ExponentialKernel, HazardKernel
from repro.embedding.likelihood import EPS, tie_groups
from repro.utils.rng import SeedLike, as_generator

__all__ = ["LinkRateModel"]


@dataclass
class _CascadeIndex:
    """Precompiled per-cascade (pair, kernel-feature, segment) triples."""

    pair_idx: np.ndarray  # flat candidate-pair index per (pred, succ) pair
    g: np.ndarray  # cumulative-hazard feature g(t_v - t_l) per pair
    k: np.ndarray  # hazard feature k(t_v - t_l) per pair
    seg: np.ndarray  # dense segment id of the successor position
    n_segments: int  # number of positions with >= 1 predecessor


class LinkRateModel:
    """MLE of per-link exponential rates by projected gradient ascent.

    Parameters
    ----------
    n_nodes:
        Node universe size.

    Attributes
    ----------
    pair_src, pair_dst:
        Candidate ordered pairs (filled by :meth:`fit`).
    rates:
        Estimated λ per candidate pair.
    """

    def __init__(self, n_nodes: int, kernel: HazardKernel = ExponentialKernel()) -> None:
        self.n_nodes = int(n_nodes)
        self.kernel = kernel
        self.pair_src = np.empty(0, dtype=np.int64)
        self.pair_dst = np.empty(0, dtype=np.int64)
        self.rates = np.empty(0, dtype=np.float64)
        self._pair_lookup: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #

    @property
    def n_parameters(self) -> int:
        """Number of free rate parameters (candidate pairs)."""
        return int(self.pair_src.size)

    def rate(self, u: int, v: int) -> float:
        """λ_uv (0 for non-candidate pairs)."""
        idx = self._pair_lookup.get((u, v))
        return float(self.rates[idx]) if idx is not None else 0.0

    # ------------------------------------------------------------------ #

    def _build_candidates(self, cascades: CascadeSet) -> None:
        seen: Dict[Tuple[int, int], int] = {}
        for c in cascades:
            nodes, times = c.nodes, c.times
            starts, _ = tie_groups(times)
            for i in range(c.size):
                vi = int(nodes[i])
                for j in range(starts[i]):
                    key = (int(nodes[j]), vi)
                    if key not in seen:
                        seen[key] = len(seen)
        self._pair_lookup = seen
        if seen:
            pairs = np.asarray(list(seen.keys()), dtype=np.int64)
            self.pair_src = pairs[:, 0]
            self.pair_dst = pairs[:, 1]
        else:
            self.pair_src = np.empty(0, dtype=np.int64)
            self.pair_dst = np.empty(0, dtype=np.int64)

    def _index_cascade(self, c: Cascade) -> Optional[_CascadeIndex]:
        nodes, times = c.nodes, c.times
        starts, _ = tie_groups(times)
        pair_idx: List[int] = []
        dt: List[float] = []
        seg: List[int] = []
        n_segments = 0
        for i in range(c.size):
            if starts[i] == 0:
                continue
            vi = int(nodes[i])
            appended = False
            for j in range(starts[i]):
                # Pairs unseen during training have implicit rate 0 and are
                # skipped (they contribute nothing to either term).
                idx = self._pair_lookup.get((int(nodes[j]), vi))
                if idx is None:
                    continue
                pair_idx.append(idx)
                dt.append(float(times[i] - times[j]))
                seg.append(n_segments)
                appended = True
            if appended:
                n_segments += 1
        if not pair_idx:
            return None
        dt_arr = np.asarray(dt, dtype=np.float64)
        return _CascadeIndex(
            np.asarray(pair_idx, dtype=np.int64),
            self.kernel.g(dt_arr),
            self.kernel.k(dt_arr),
            np.asarray(seg, dtype=np.int64),
            n_segments,
        )

    # ------------------------------------------------------------------ #

    def fit(
        self,
        cascades: CascadeSet,
        learning_rate: float = 0.05,
        max_iters: int = 100,
        tol: float = 1e-7,
        seed: SeedLike = None,
    ) -> List[float]:
        """Estimate rates; returns the log-likelihood trace.

        Full-batch projected gradient ascent with step halving on descent,
        mirroring :class:`repro.embedding.ProjectedGradientAscent` so that
        per-iteration timings are comparable between the two models.
        """
        if cascades.n_nodes != self.n_nodes:
            raise ValueError("cascade universe does not match model")
        rng = as_generator(seed)
        self._build_candidates(cascades)
        m = len(self._pair_lookup)
        self.rates = rng.uniform(0.1, 1.0, size=m)
        indexes = [ix for c in cascades if (ix := self._index_cascade(c))]

        history: List[float] = []
        lr = learning_rate
        grad = np.zeros(m)
        ll = self._pass(indexes, grad)
        history.append(ll)
        for _ in range(max_iters):
            prev = self.rates.copy()
            self.rates += lr * grad
            np.maximum(self.rates, 0.0, out=self.rates)
            new_ll = self._pass(indexes, grad)
            if new_ll < ll:
                self.rates = prev
                lr *= 0.5
                if lr < 1e-10:
                    break
                self._pass(indexes, grad)  # refresh gradient at prev point
                continue
            improvement = new_ll - ll
            ll = new_ll
            history.append(ll)
            if improvement < tol * max(abs(ll), 1.0):
                break
        return history

    def _pass(self, indexes: List[_CascadeIndex], grad: np.ndarray) -> float:
        """One full-batch likelihood + gradient evaluation."""
        grad.fill(0.0)
        total = 0.0
        lam = self.rates
        for ix in indexes:
            rates_flat = lam[ix.pair_idx]
            hazard_flat = rates_flat * ix.k
            denom = np.zeros(ix.n_segments)
            np.add.at(denom, ix.seg, hazard_flat)
            denom = np.maximum(denom, EPS)
            total += float(-np.dot(rates_flat, ix.g) + np.sum(np.log(denom)))
            contrib = -ix.g + ix.k / denom[ix.seg]
            np.add.at(grad, ix.pair_idx, contrib)
        return total

    # ------------------------------------------------------------------ #

    def log_likelihood(self, cascades: CascadeSet) -> float:
        """Corpus log-likelihood at the current rates."""
        indexes = [ix for c in cascades if (ix := self._index_cascade(c))]
        return self._pass(indexes, np.zeros(self.n_parameters))
