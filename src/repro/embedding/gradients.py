"""Two-sweep linear-time gradients of the cascade log-likelihood.

§IV-A: one forward sweep over the time-sorted infections computes the
prefix accumulators

.. math::

    H(v) = \\sum_{l \\prec v} A_l, \\qquad G(v) = \\sum_{l \\prec v} t_l A_l,

giving (Eq. 12–13)

.. math::

    \\nabla_{B_v} L_c = G(v) - t_v H(v) + \\frac{H(v)}{H(v) B_v^T};

a backward sweep computes the suffix accumulators

.. math::

    P(u) = \\sum_{v: u \\prec v} B_v, \\qquad Q(u) = \\sum_{v: u \\prec v} t_v B_v,
    \\qquad R(u) = \\sum_{v: u \\prec v} \\frac{B_v}{H(v) B_v^T},

giving (Eq. 16)

.. math:: \\nabla_{A_u} L_c = t_u P(u) - Q(u) + R(u).

Both sweeps are vectorized with cumulative sums; the cost per cascade of
length *s* is O(s·K) — the linearity property the parallel algorithm
depends on.  Infections without strict predecessors contribute no term
(see :mod:`repro.embedding.likelihood` on the source convention), and the
suffix sums skip them symmetrically.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cascades.types import Cascade
from repro.embedding.likelihood import EPS, tie_groups
from repro.embedding.model import EmbeddingModel

__all__ = ["accumulate_gradients", "cascade_gradients", "numerical_gradients"]


def accumulate_gradients(
    A: np.ndarray,
    B: np.ndarray,
    cascade: Cascade,
    gradA: np.ndarray,
    gradB: np.ndarray,
    eps: float = EPS,
) -> float:
    """Add ∇L_c to *gradA*/*gradB* in place; return L_c.

    Parameters
    ----------
    A, B:
        Current (n, K) embeddings.
    cascade:
        The cascade to process; node ids index rows of A/B.
    gradA, gradB:
        (n, K) accumulators, modified in place.
    eps:
        Denominator guard.

    Returns
    -------
    float
        The cascade's log-likelihood at (A, B).
    """
    s = cascade.size
    if s < 2:
        return 0.0
    nodes, times = cascade.nodes, cascade.times
    A_pos = A[nodes]  # (s, K) gathers
    B_pos = B[nodes]
    K = A_pos.shape[1]
    starts, ends = tie_groups(times)
    t_col = times[:, None]

    # ---- forward sweep: prefix sums for H, G ------------------------- #
    cumA = np.vstack([np.zeros((1, K)), np.cumsum(A_pos, axis=0)])
    cumtA = np.vstack([np.zeros((1, K)), np.cumsum(t_col * A_pos, axis=0)])
    H = cumA[starts]
    G = cumtA[starts]
    valid = starts > 0  # has at least one strict predecessor

    denom = np.einsum("ik,ik->i", H, B_pos)
    denom = np.maximum(denom, eps)
    # Reciprocal-multiply rather than divide: the compiled corpus kernel
    # computes 1/denom once and multiplies, and x * (1/d) differs from
    # x / d in the last bit — this form keeps the per-cascade path
    # bit-identical to :func:`repro.embedding.compiled.corpus_gradients`
    # on single-cascade corpora (the property suite relies on it).
    inv_denom = 1.0 / denom

    # ∇_{B_v}: Eq. 13, zero for invalid positions.
    dB_pos = G - t_col * H + H * inv_denom[:, None]
    dB_pos[~valid] = 0.0

    # ---- backward sweep: suffix sums for P, Q, R over *valid* v ------ #
    vB = np.where(valid[:, None], B_pos, 0.0)
    vtB = np.where(valid[:, None], t_col * B_pos, 0.0)
    vBd = np.where(valid[:, None], B_pos * inv_denom[:, None], 0.0)
    # suffix[p] = Σ_{i >= p} X_i, with suffix[s] = 0.
    sufB = np.vstack([np.cumsum(vB[::-1], axis=0)[::-1], np.zeros((1, K))])
    suftB = np.vstack([np.cumsum(vtB[::-1], axis=0)[::-1], np.zeros((1, K))])
    sufBd = np.vstack([np.cumsum(vBd[::-1], axis=0)[::-1], np.zeros((1, K))])
    # u at position j influences valid v strictly later: i >= ends[j].
    P = sufB[ends]
    Q = suftB[ends]
    R = sufBd[ends]
    dA_pos = t_col * P - Q + R  # Eq. 16

    # Nodes are unique within a cascade, so fancy-index += is safe.
    gradA[nodes] += dA_pos
    gradB[nodes] += dB_pos

    lin = np.einsum("ik,ik->i", G - t_col * H, B_pos)
    return float(np.sum(lin[valid] + np.log(denom[valid])))


def cascade_gradients(
    model: EmbeddingModel, cascade: Cascade, eps: float = EPS
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Return ``(gradA, gradB, loglik)`` as fresh (n, K) arrays."""
    gradA = np.zeros_like(model.A)
    gradB = np.zeros_like(model.B)
    ll = accumulate_gradients(model.A, model.B, cascade, gradA, gradB, eps=eps)
    return gradA, gradB, ll


def numerical_gradients(
    model: EmbeddingModel,
    cascade: Cascade,
    h: float = 1e-6,
    eps: float = EPS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Central finite-difference gradients (test oracle; O(n·K·s²))."""
    from repro.embedding.likelihood import log_likelihood

    gradA = np.zeros_like(model.A)
    gradB = np.zeros_like(model.B)
    nodes = np.unique(cascade.nodes)
    for v in nodes:
        for k in range(model.n_topics):
            for mat, grad in ((model.A, gradA), (model.B, gradB)):
                orig = mat[v, k]
                mat[v, k] = orig + h
                up = log_likelihood(model, cascade, eps=eps)
                mat[v, k] = orig - h
                down = log_likelihood(model, cascade, eps=eps)
                mat[v, k] = orig
                grad[v, k] = (up - down) / (2 * h)
    return gradA, gradB
