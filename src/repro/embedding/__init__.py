"""Influence/selectivity node embeddings — the paper's core contribution.

Every node *u* has a non-negative *influence* vector ``A[u] ∈ R^K₊`` and a
*selectivity* vector ``B[u] ∈ R^K₊`` (§III-B).  The infection delay on
topic *k* from *u* to *v* is exponential with rate ``A[u,k]·B[v,k]``; the
minimum across topics is exponential with rate ``A[u]·B[v]`` (Eq. 6–7),
yielding the cascade log-likelihood of Eq. 8.  Inference is projected
gradient ascent with the linear-time two-sweep gradients of Eq. 12–16.

Modules
-------
model
    :class:`EmbeddingModel` parameter container and hazard/survival maps.
likelihood
    Vectorized (and naive reference) log-likelihood.
gradients
    Two-sweep gradient accumulation, O(s·K) per cascade of length s.
optimizer
    :class:`ProjectedGradientAscent` with early stopping (Alg. 1 inner loop).
linkmodel
    Per-link exponential-rate baseline (O(n²) parameters), the sequential
    comparator behind the abstract's 50× claim.
"""

from repro.embedding.model import EmbeddingModel
from repro.embedding.likelihood import corpus_log_likelihood, log_likelihood
from repro.embedding.gradients import accumulate_gradients
from repro.embedding.optimizer import FitResult, OptimizerConfig, ProjectedGradientAscent
from repro.embedding.linkmodel import LinkRateModel
from repro.embedding.online import OnlineConfig, OnlineEmbeddingInference
from repro.embedding.hazards import (
    ExponentialKernel,
    HazardKernel,
    PowerLawKernel,
    RayleighKernel,
    get_kernel,
)

__all__ = [
    "EmbeddingModel",
    "log_likelihood",
    "corpus_log_likelihood",
    "accumulate_gradients",
    "ProjectedGradientAscent",
    "OptimizerConfig",
    "FitResult",
    "LinkRateModel",
    "HazardKernel",
    "ExponentialKernel",
    "RayleighKernel",
    "PowerLawKernel",
    "get_kernel",
    "OnlineConfig",
    "OnlineEmbeddingInference",
]
