"""Online (streaming) embedding inference.

The paper's motivating scenario is *emergent* news events: cascades
arrive over time, and predictions are wanted while the corpus is still
growing.  The batch optimizer refits from scratch; this module keeps the
embeddings warm and folds new cascades in as they arrive — projected SGD
with a Robbins–Monro step schedule ``lr / (1 + decay · t)`` over
cascades, where *t* counts every cascade ever seen.

Usage::

    online = OnlineEmbeddingInference(n_nodes, n_topics, seed=0)
    for batch in cascade_stream:       # e.g. an hour of new events
        online.partial_fit(batch)
        features = extract_features(online.model, new_prefix)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.compiled import (
    CompiledCorpus,
    GradientWorkspace,
    corpus_gradients,
)
from repro.embedding.likelihood import EPS
from repro.embedding.model import EmbeddingModel
from repro.utils.rng import SeedLike, as_generator

__all__ = ["OnlineConfig", "OnlineEmbeddingInference"]


@dataclass(frozen=True)
class OnlineConfig:
    """Step-size schedule of the streaming solver.

    Attributes
    ----------
    learning_rate:
        Initial per-cascade step (normalized by cascade size, as in the
        Hogwild solver, so long cascades do not dominate).
    decay:
        Robbins–Monro decay: the step for the *t*-th cascade ever seen is
        ``learning_rate / (1 + decay * t)``.
    sweeps_per_batch:
        Local passes over each arriving batch (new data is scarce; a few
        sweeps extract more of it without a full refit).
    max_step:
        Elementwise update cap (divergence guard).
    """

    learning_rate: float = 0.1
    decay: float = 0.002
    sweeps_per_batch: int = 2
    max_step: float = 0.5

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.decay < 0:
            raise ValueError("decay must be >= 0")
        if self.sweeps_per_batch < 1:
            raise ValueError("sweeps_per_batch must be >= 1")
        if self.max_step <= 0:
            raise ValueError("max_step must be positive")


class OnlineEmbeddingInference:
    """Streaming projected-SGD estimator of the influence/selectivity model.

    Parameters
    ----------
    n_nodes, n_topics:
        Model dimensions (the node universe must be known up front).
    config:
        Step-size schedule.
    seed:
        Controls the random initialization and the shuffling of batches.
    """

    def __init__(
        self,
        n_nodes: int,
        n_topics: int,
        config: OnlineConfig = OnlineConfig(),
        init_scale: float = 0.5,
        seed: SeedLike = None,
    ) -> None:
        self.config = config
        self._rng = as_generator(seed)
        self.model = EmbeddingModel.random(
            n_nodes, n_topics, scale=init_scale, seed=self._rng
        )
        self._gradA = np.zeros_like(self.model.A)
        self._gradB = np.zeros_like(self.model.B)
        #: kernel buffers, reused across every batch this estimator sees
        self._workspace = GradientWorkspace()
        #: cascades consumed so far (drives the step-size schedule)
        self.t = 0

    # ------------------------------------------------------------------ #

    def _step(self) -> float:
        return self.config.learning_rate / (1.0 + self.config.decay * self.t)

    def partial_fit(self, cascades: Iterable[Cascade]) -> "OnlineEmbeddingInference":
        """Fold a batch of newly observed cascades into the model.

        An empty batch is a true no-op: no RNG draws, no counter
        advance — ``partial_fit([])`` leaves the estimator bit-identical
        to not having called it (streaming pipelines routinely tick with
        nothing to deliver).
        """
        batch = list(cascades)
        if not batch:
            return self
        for c in batch:
            if c.size and int(c.nodes.max()) >= self.model.n_nodes:
                raise ValueError(
                    "cascade references a node outside the model universe"
                )
        cfg = self.config
        A, B = self.model.A, self.model.B
        # Compile each cascade once per batch: every sweep re-evaluates the
        # same cascades, and the compiled kernel (with the persistent
        # workspace) is bit-identical to per-cascade accumulate_gradients.
        compiled = [
            CompiledCorpus.from_arena(
                c.nodes,
                c.times,
                np.array([0, c.size], dtype=np.int64),
                assume_compact=True,
            )
            if c.size >= 2
            else None
            for c in batch
        ]
        for _ in range(cfg.sweeps_per_batch):
            order = self._rng.permutation(len(batch))
            for idx in order:
                c = batch[idx]
                if c.size < 2:
                    continue
                rows = c.nodes
                self._gradA[rows] = 0.0
                self._gradB[rows] = 0.0
                corpus_gradients(
                    A, B, compiled[idx], self._gradA, self._gradB,
                    eps=EPS, workspace=self._workspace,
                )
                lr = self._step() / c.size
                dA = np.clip(lr * self._gradA[rows], -cfg.max_step, cfg.max_step)
                dB = np.clip(lr * self._gradB[rows], -cfg.max_step, cfg.max_step)
                A[rows] = np.maximum(A[rows] + dA, 0.0)
                B[rows] = np.maximum(B[rows] + dB, 0.0)
                self.t += 1
        return self

    def loglik(self, cascades: CascadeSet) -> float:
        """Corpus log-likelihood under the current model (monitoring)."""
        from repro.embedding.likelihood import corpus_log_likelihood

        return corpus_log_likelihood(self.model, cascades)
