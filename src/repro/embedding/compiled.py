"""Corpus compilation: one vectorized, allocation-free gradient pass.

The two-sweep gradients of :mod:`repro.embedding.gradients` are exact but
pay NumPy call overhead per cascade — ruinous when a corpus holds
thousands of small sub-cascades (the common case inside the parallel
engine).  Since cascade *structure* (node order, tie groups, boundaries)
never changes between optimizer iterations, we compile it once into flat
arrays spanning the whole corpus and evaluate every iteration with a
fixed, small number of NumPy operations over ``(total_infections, K)``
arrays:

* prefix sums run over the concatenation; per-cascade prefixes are
  recovered by subtracting the cumulative value at each cascade's start;
* suffix sums likewise, subtracting at each cascade's end;
* scatter-accumulation into the gradient matrices follows a compile-time
  :class:`ScatterPlan` — an argsort-by-node permutation whose per-node
  segments are reduced by contiguous "rank rounds" (and, for very
  high-multiplicity nodes, power-of-two padded cumsum rectangles), then
  added into the gradient rows with one fancy-index store.  The plan
  applies each node's contributions as a strict left fold in original
  position order, so it is *bit-identical* to ``np.add.at`` while being
  several times faster (``np.add.reduceat`` is not an option: it
  reassociates sums pairwise within segments and changes the bits).

All per-iteration buffers live in a :class:`GradientWorkspace` that is
reused across optimizer iterations, making :func:`corpus_gradients`
allocation-free in steady state.  The result is bit-for-bit the same
math as the per-cascade path (the test suite cross-checks them) at a
fraction of the interpreter and allocator overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.cascades.types import Cascade
from repro.embedding.likelihood import EPS

__all__ = [
    "CompiledCorpus",
    "ScatterPlan",
    "GradientWorkspace",
    "corpus_gradients",
]

#: Per-node segments longer than this leave the rank-round path and are
#: reduced as power-of-two padded cumsum rectangles instead — rank
#: rounds degrade to one NumPy call per occurrence rank, which loses to
#: ``np.add.at`` once a single node dominates the corpus (zipf-style
#: multiplicity).  128 was picked empirically: rounds win decisively
#: below it on CI-scale corpora, rectangles win above it.
ROUND_CAP = 128


@dataclass(frozen=True)
class ScatterPlan:
    """Compile-time recipe turning per-position contributions into
    per-node gradient updates, bit-identical to ``np.add.at``.

    Built once per corpus from the node ids alone.  ``gather_rows``
    permutes the ``(M + 1, K)`` contribution buffer (row ``M`` is an
    always-zero sentinel used as padding) into segment-reduction order:
    first the power-of-two padded rectangles of the high-multiplicity
    nodes, then, for every occurrence rank ``r``, the rank-``r`` rows of
    the remaining nodes (segments sorted by descending length so each
    round is one contiguous slice).  ``gather_rows2`` is the same
    permutation duplicated at plane offset ``M + 1`` so both gradient
    contributions (dA, dB) are gathered with a single ``np.take``.
    """

    gather_rows: np.ndarray  # (G,) rows of the (M+1, K) contribution buffer
    gather_rows2: np.ndarray  # (2G,) dual-plane rows of the (2(M+1), K) view
    targets: np.ndarray  # (U,) gradient row per reduced segment
    bins: Tuple[Tuple[int, int, int, int, int], ...]  # (r0, r1, s0, s1, lb)
    rounds: Tuple[Tuple[int, int, int, int], ...]  # (src0, src1, dst0, dst1)
    n_long: int  # segments reduced via rectangles (acc rows [0, n_long))
    n_unique: int  # U, distinct nodes in the corpus
    n_gather: int  # G, rows in the single-plane gather

    @classmethod
    def from_nodes(cls, nodes: np.ndarray, n_positions: int) -> "ScatterPlan":
        """Build the plan for *nodes*; ``n_positions`` is the sentinel row."""
        M = n_positions
        perm = np.argsort(nodes, kind="stable")
        if M == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(empty, empty, empty, (), (), 0, 0, 0)
        sn = nodes[perm]
        is_start = np.empty(M, dtype=bool)
        is_start[0] = True
        np.not_equal(sn[1:], sn[:-1], out=is_start[1:])
        seg_starts = np.flatnonzero(is_start)
        n_unique = int(seg_starts.size)
        seg_ends = np.append(seg_starts[1:], M)
        lengths = seg_ends - seg_starts
        long_mask = lengths > ROUND_CAP
        long_ids = np.flatnonzero(long_mask)
        short_ids = np.flatnonzero(~long_mask)
        # Descending length makes round r's active set a prefix, so each
        # round reads one contiguous slice of the gathered buffer.
        short_ids = short_ids[np.argsort(-lengths[short_ids], kind="stable")]
        n_long = int(long_ids.size)
        parts = []
        bins = []
        row_off = 0
        seg_off = 0
        if n_long:
            # Pad each long segment to the next power of two with the
            # sentinel row (contributes +0.0, preserving every bit), so
            # one cumsum over a (n_bins, pad, K) rectangle folds all
            # segments of equal padded length at once.
            pad = np.ones(n_long, dtype=np.int64)
            ll = lengths[long_ids]
            while np.any(pad < ll):
                pad[pad < ll] *= 2
            order = np.argsort(pad, kind="stable")
            long_ids = long_ids[order]
            pad = pad[order]
            i = 0
            while i < n_long:
                j = i
                lb = int(pad[i])
                while j < n_long and pad[j] == lb:
                    j += 1
                nb = j - i
                block = np.full((nb, lb), M, dtype=np.int64)
                for row, seg in enumerate(long_ids[i:j]):
                    block[row, : lengths[seg]] = perm[
                        seg_starts[seg] : seg_ends[seg]
                    ]
                parts.append(block.ravel())
                bins.append((row_off, row_off + nb * lb, seg_off, seg_off + nb, lb))
                row_off += nb * lb
                seg_off += nb
                i = j
        rounds = []
        if short_ids.size:
            short_lengths = lengths[short_ids]
            n_rounds = int(short_lengths[0])
            dst0 = n_long
            for r in range(n_rounds):
                n_active = int(np.searchsorted(-short_lengths, -r, side="left"))
                parts.append(perm[seg_starts[short_ids[:n_active]] + r])
                rounds.append((row_off, row_off + n_active, dst0, dst0 + n_active))
                row_off += n_active
        gather_rows = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        gather_rows2 = np.concatenate([gather_rows, gather_rows + (M + 1)])
        targets = np.concatenate(
            [sn[seg_starts[long_ids]], sn[seg_starts[short_ids]]]
        )
        return cls(
            gather_rows=gather_rows,
            gather_rows2=gather_rows2,
            targets=targets,
            bins=tuple(bins),
            rounds=tuple(rounds),
            n_long=n_long,
            n_unique=n_unique,
            n_gather=int(gather_rows.size),
        )

    def reduce_into(self, gathered: np.ndarray, acc: np.ndarray) -> None:
        """Fold one gathered plane ``(n_gather, K)`` into ``acc[:U]``.

        Rectangles first (cumsum along the padded axis, last column is
        the segment total), then rank rounds — round 0 assigns, later
        rounds add, applying occurrences in original position order.
        """
        K = gathered.shape[1]
        for r0, r1, s0, s1, lb in self.bins:
            cube = gathered[r0:r1].reshape(s1 - s0, lb, K)
            np.cumsum(cube, axis=1, out=cube)
            acc[s0:s1] = cube[:, lb - 1, :]
        first = True
        for src0, src1, dst0, dst1 in self.rounds:
            if first:
                acc[dst0:dst1] = gathered[src0:src1]
                first = False
            else:
                acc[dst0:dst1] += gathered[src0:src1]

    def apply_into(
        self, grad: np.ndarray, acc: np.ndarray, gbuf: np.ndarray
    ) -> None:
        """``grad[targets] += acc[:U]`` via gather/add/store (targets are
        unique, so the fancy store is exact)."""
        U = self.n_unique
        g = gbuf[:U]
        np.take(grad, self.targets, axis=0, out=g, mode="clip")
        g += acc[:U]
        grad[self.targets] = g


@dataclass(frozen=True)
class CompiledCorpus:
    """Static structure of a corpus, flattened for vectorized evaluation.

    All index arrays are *global* positions into the concatenated corpus;
    ``starts``/``ends`` delimit each position's strict-tie group,
    ``cascade_begin``/``cascade_end`` the owning cascade.
    """

    nodes: np.ndarray  # (M,) node ids
    times: np.ndarray  # (M,) infection times
    starts: np.ndarray  # (M,) global index of first same-time position
    ends: np.ndarray  # (M,) one past last same-time position
    cascade_begin: np.ndarray  # (M,) global index of cascade's first position
    cascade_end: np.ndarray  # (M,) one past cascade's last position
    valid: np.ndarray  # (M,) has >= 1 strict predecessor

    @classmethod
    def from_cascades(cls, cascades: Iterable[Cascade]) -> "CompiledCorpus":
        """Flatten *cascades* (size-<2 cascades contribute nothing and are
        skipped)."""
        nodes_l, times_l, starts_l, ends_l, cb_l, ce_l = [], [], [], [], [], []
        offset = 0
        for c in cascades:
            s = c.size
            if s < 2:
                continue
            t = c.times
            starts = np.searchsorted(t, t, side="left")
            ends = np.searchsorted(t, t, side="right")
            nodes_l.append(c.nodes)
            times_l.append(t)
            starts_l.append(starts + offset)
            ends_l.append(ends + offset)
            cb_l.append(np.full(s, offset, dtype=np.int64))
            ce_l.append(np.full(s, offset + s, dtype=np.int64))
            offset += s
        if not nodes_l:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=np.float64)
            return cls(
                empty_i, empty_f, empty_i, empty_i, empty_i, empty_i,
                np.empty(0, dtype=bool),
            )
        nodes = np.concatenate(nodes_l)
        times = np.concatenate(times_l)
        starts = np.concatenate(starts_l)
        ends = np.concatenate(ends_l)
        cb = np.concatenate(cb_l)
        ce = np.concatenate(ce_l)
        return cls(nodes, times, starts, ends, cb, ce, starts > cb)

    @classmethod
    def from_arena(
        cls,
        nodes: np.ndarray,
        times: np.ndarray,
        offsets: np.ndarray,
        assume_compact: bool = False,
    ) -> "CompiledCorpus":
        """Compile a flat CSR sub-corpus without materializing ``Cascade``s.

        The zero-copy path of the parallel engine: *nodes*/*times* are the
        concatenated (already time-sorted) sub-cascades a worker gathered
        from the shared-memory arena, *offsets* the ``(S+1,)`` sub-cascade
        boundaries.  Produces bit-identical structure to
        :meth:`from_cascades` over the same sub-cascades — including the
        skip of size-<2 sub-cascades — but with a fixed number of
        vectorized passes instead of a Python loop per cascade.

        ``assume_compact=True`` skips the size-<2 scan entirely; callers
        (the split planner emits groups with ``min_size=2``) use it when
        every sub-cascade is guaranteed to carry likelihood signal.
        """
        nodes = np.ascontiguousarray(nodes, dtype=np.int64)
        times = np.ascontiguousarray(times, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        sizes = np.diff(offsets)
        if not assume_compact and np.any(sizes < 2):
            # Compact away sub-cascades that carry no likelihood signal.
            keep = sizes >= 2
            mask = np.repeat(keep, sizes)
            nodes = nodes[mask]
            times = times[mask]
            sizes = sizes[keep]
            offsets = np.zeros(sizes.size + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
        M = int(nodes.size)
        if M == 0:
            empty_i = np.empty(0, dtype=np.int64)
            return cls(
                empty_i,
                np.empty(0, dtype=np.float64),
                empty_i,
                empty_i,
                empty_i,
                empty_i,
                np.empty(0, dtype=bool),
            )
        idx = np.arange(M, dtype=np.int64)
        cb = np.repeat(offsets[:-1], sizes)
        ce = np.repeat(offsets[1:], sizes)
        # Tie-group starts: first position of each run of equal times
        # within a cascade (== searchsorted(t, t, "left") per cascade).
        is_first = np.empty(M, dtype=bool)
        is_first[0] = True
        is_first[1:] = times[1:] != times[:-1]
        is_first[offsets[:-1]] = True
        starts = np.maximum.accumulate(np.where(is_first, idx, 0))
        # Tie-group ends: one past the last equal-time position.
        is_last = np.empty(M, dtype=bool)
        is_last[M - 1] = True
        is_last[:-1] = times[1:] != times[:-1]
        is_last[offsets[1:] - 1] = True
        ends = np.minimum.accumulate(np.where(is_last, idx + 1, M)[::-1])[::-1]
        return cls(nodes, times, starts, ends, cb, ce, starts > cb)

    @property
    def n_infections(self) -> int:
        return int(self.nodes.size)

    # -- compile-time derived structure (cached; corpus is immutable) -- #

    @cached_property
    def scatter_plan(self) -> ScatterPlan:
        """The segment-reduce plan for this corpus's node multiset."""
        return ScatterPlan.from_nodes(self.nodes, self.n_infections)

    @cached_property
    def ties_free(self) -> bool:
        """True when no two infections share a timestamp within a
        cascade — then ``starts == arange(M)`` / ``ends == arange(M)+1``
        and the kernel reads prefix/suffix rows as views instead of
        gathering them."""
        M = self.n_infections
        idx = np.arange(M, dtype=np.int64)
        return bool(
            np.array_equal(self.starts, idx)
            and np.array_equal(self.ends, idx + 1)
        )

    @cached_property
    def invalid_rows(self) -> np.ndarray:
        """Positions with no strict predecessor (first tie group of each
        cascade); their dB/suffix contributions are zeroed."""
        return np.flatnonzero(~self.valid)

    @cached_property
    def valid_rows(self) -> np.ndarray:
        """Complement of :attr:`invalid_rows` — the positions whose
        likelihood terms are summed.  Cached so the kernel's compaction
        is a plain ``np.take`` (``np.compress`` re-derives this index
        array on every call, ~600 KB of transient heap at CI scale)."""
        return np.flatnonzero(self.valid)

    @cached_property
    def n_valid(self) -> int:
        return int(self.valid.sum())


class GradientWorkspace:
    """Reusable buffer pool for :func:`corpus_gradients` (and the
    optimizer's retract candidates).

    Buffers grow monotonically and are recycled across iterations — in
    steady state (same corpus, same K) a gradient evaluation performs no
    heap allocation.  The workspace may be reused across corpora of
    different shapes; every buffer is fully written before it is read
    within a call, so no stale data can leak between corpora (the
    property suite checks workspace-reuse against fresh allocation
    bitwise).  Not thread-safe: one workspace per thread/process.
    """

    #: Growth slack so a slowly growing corpus sequence doesn't realloc
    #: on every call.
    _SLACK = 1.25

    def __init__(self) -> None:
        self._mats: Dict[str, np.ndarray] = {}
        self._vecs: Dict[str, np.ndarray] = {}

    # -- sizing ------------------------------------------------------- #

    def _mat(self, name: str, rows: int, cols: int) -> np.ndarray:
        buf = self._mats.get(name)
        if buf is None or buf.shape[1] != cols or buf.shape[0] < rows:
            cap = max(rows, int(rows * self._SLACK), 1)
            buf = np.empty((cap, cols), dtype=np.float64)
            self._mats[name] = buf
        return buf[:rows]

    def _vec(self, name: str, size: int) -> np.ndarray:
        buf = self._vecs.get(name)
        if buf is None or buf.size < size:
            cap = max(size, int(size * self._SLACK), 1)
            buf = np.empty(cap, dtype=np.float64)
            self._vecs[name] = buf
        return buf[:size]

    # -- optimizer candidates ------------------------------------------ #

    def model_candidates(
        self, n_rows: int, n_cols: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Two ``(n_rows, n_cols)`` buffers for the optimizer's
        out-of-place candidate step (ping-pong retraction)."""
        a = self._mats.get("candA")
        b = self._mats.get("candB")
        if a is None or a.shape != (n_rows, n_cols):
            a = np.empty((n_rows, n_cols), dtype=np.float64)
            self._mats["candA"] = a
        if b is None or b.shape != (n_rows, n_cols):
            b = np.empty((n_rows, n_cols), dtype=np.float64)
            self._mats["candB"] = b
        return a, b

    def release_candidates(self) -> None:
        """Drop the candidate buffers (they may alias a model's arrays
        after the optimizer's final pointer swap)."""
        self._mats.pop("candA", None)
        self._mats.pop("candB", None)


def corpus_gradients(
    A: np.ndarray,
    B: np.ndarray,
    corpus: CompiledCorpus,
    gradA: np.ndarray,
    gradB: np.ndarray,
    eps: float = EPS,
    background_rate: float = 0.0,
    workspace: Optional[GradientWorkspace] = None,
) -> float:
    """Add the full-corpus ∇L to *gradA*/*gradB* in place; return Σ_c L_c.

    Exactly Eq. 12–16, evaluated in one pass (see module docstring).
    Passing a :class:`GradientWorkspace` makes the evaluation
    allocation-free in steady state; results are bit-identical either
    way.

    *background_rate* adds a constant exogenous hazard μ to every
    infection's denominator (``log(Σ A_u·B_v + μ)``): each adoption can
    always be explained by a tiny out-of-network source.  With μ = 0 the
    objective is the paper's Eq. 8 verbatim, but an infection whose
    predecessors all carry zero rate makes the ε-guarded log's gradient
    explode (≈ 1/ε), which happens systematically when merge-tree levels
    reintroduce cross-community pairs that leaf-level fits zeroed out.  A
    small μ bounds the gradient by 1/μ and keeps the landscape
    optimizable without noticeably moving well-explained infections.
    """
    M = corpus.n_infections
    if M == 0:
        return 0.0
    if workspace is None:
        workspace = GradientWorkspace()
    ws = workspace
    nodes = corpus.nodes
    K = A.shape[1]
    plan = corpus.scatter_plan
    ties_free = corpus.ties_free
    invalid_rows = corpus.invalid_rows
    # Column broadcasts by times / inv_denom all go through einsum
    # "ik,i->ik": multiplying by a (M,1) operand makes numpy's ufunc
    # machinery allocate a 64 KB iterator buffer per call and run ~1.5x
    # slower; the einsum products are bit-identical.
    times = corpus.times

    # All gathers use mode="clip": indices are in bounds by construction
    # and the default "raise" path is ~2.5x slower when writing to out=.
    cumA = ws._mat("cumA", M + 1, K)
    cumtA = ws._mat("cumtA", M + 1, K)
    dual = ws._mat("dual", 2 * (M + 1), K)  # plane 0: dA, plane 1: dB
    dA_plane = dual[: M + 1]
    dB_plane = dual[M + 1 :]
    H = ws._mat("H", M, K)
    Q = ws._mat("Q", M, K)
    T1 = ws._mat("T1", M, K)
    sufB = ws._mat("sufB", M + 1, K)
    suftB = ws._mat("suftB", M + 1, K)
    sufBd = ws._mat("sufBd", M + 1, K)

    # ---- forward sweep ------------------------------------------------ #
    np.take(A, nodes, axis=0, out=cumA[1:], mode="clip")
    np.einsum("ik,i->ik", cumA[1:], times, out=cumtA[1:])
    cumA[0] = 0.0
    cumtA[0] = 0.0
    np.cumsum(cumA[1:], axis=0, out=cumA[1:])
    np.cumsum(cumtA[1:], axis=0, out=cumtA[1:])
    G = dB_plane[:M]
    np.take(cumA, corpus.cascade_begin, axis=0, out=T1, mode="clip")
    if ties_free:
        np.subtract(cumA[:M], T1, out=H)
    else:
        np.take(cumA, corpus.starts, axis=0, out=H, mode="clip")
        H -= T1
    np.take(cumtA, corpus.cascade_begin, axis=0, out=T1, mode="clip")
    if ties_free:
        np.subtract(cumtA[:M], T1, out=G)
    else:
        np.take(cumtA, corpus.starts, axis=0, out=G, mode="clip")
        G -= T1

    B_pos = sufB[:M]
    np.take(B, nodes, axis=0, out=B_pos, mode="clip")
    denom = ws._vec("denom", M)
    inv_denom = ws._vec("inv_denom", M)
    np.einsum("ik,ik->i", H, B_pos, out=denom)
    if background_rate > 0.0:
        denom += background_rate
    np.maximum(denom, eps, out=denom)
    np.divide(1.0, denom, out=inv_denom)

    # lin = G - t*H, then dB = lin + H/denom — both built in the dB plane.
    np.einsum("ik,i->ik", H, times, out=T1)
    np.subtract(G, T1, out=G)
    ll_lin = ws._vec("ll_lin", M)
    np.einsum("ik,ik->i", G, B_pos, out=ll_lin)  # before the dB overwrite
    np.einsum("ik,i->ik", H, inv_denom, out=T1)
    np.add(G, T1, out=G)
    G[invalid_rows] = 0.0
    dB_plane[M] = 0.0  # scatter sentinel row

    # ---- log-likelihood ----------------------------------------------- #
    n_valid = corpus.n_valid
    # np.compress would re-derive the index array every call (~600 KB of
    # transient heap at CI scale); take through the cached valid_rows is
    # allocation-free.  c1 gets its own buffer: take's out must not alias
    # its input.
    c1 = ws._vec("ll_sum", M)[:n_valid]
    c2 = ws._vec("ll_log", M)[:n_valid]
    valid_rows = corpus.valid_rows
    np.take(ll_lin, valid_rows, out=c1, mode="clip")
    np.take(denom, valid_rows, out=c2, mode="clip")
    np.log(c2, out=c2)
    c1 += c2
    ll = float(np.sum(c1))

    # ---- backward sweep ------------------------------------------------ #
    B_pos[invalid_rows] = 0.0  # B_pos becomes vB in place (einsums done)
    np.einsum("ik,i->ik", B_pos, times, out=suftB[:M])
    np.einsum("ik,i->ik", B_pos, inv_denom, out=sufBd[:M])
    for buf in (sufB, suftB, sufBd):
        buf[M] = 0.0
        rev = buf[:M][::-1]
        np.cumsum(rev, axis=0, out=rev)
    P = dA_plane[:M]
    np.take(sufB, corpus.cascade_end, axis=0, out=T1, mode="clip")
    if ties_free:
        np.subtract(sufB[1:], T1, out=P)
    else:
        np.take(sufB, corpus.ends, axis=0, out=P, mode="clip")
        P -= T1
    np.take(suftB, corpus.cascade_end, axis=0, out=T1, mode="clip")
    if ties_free:
        np.subtract(suftB[1:], T1, out=Q)
    else:
        np.take(suftB, corpus.ends, axis=0, out=Q, mode="clip")
        Q -= T1
    np.einsum("ik,i->ik", P, times, out=T1)  # einsum's out must not alias
    np.subtract(T1, Q, out=P)
    np.take(sufBd, corpus.cascade_end, axis=0, out=Q, mode="clip")
    if ties_free:
        np.subtract(sufBd[1:], Q, out=T1)
    else:
        np.take(sufBd, corpus.ends, axis=0, out=T1, mode="clip")
        T1 -= Q
    P += T1  # dA = t*P - Q + R
    dA_plane[M] = 0.0  # scatter sentinel row

    # ---- scatter ------------------------------------------------------- #
    if plan.n_unique:
        gathered = ws._mat("gather", max(2 * plan.n_gather, 1), K)
        accA = ws._mat("accA", max(plan.n_unique, 1), K)
        accB = ws._mat("accB", max(plan.n_unique, 1), K)
        gbuf = ws._mat("gbuf", max(plan.n_unique, 1), K)
        both = gathered[: 2 * plan.n_gather]
        np.take(dual, plan.gather_rows2, axis=0, out=both, mode="clip")
        plan.reduce_into(both[: plan.n_gather], accA)
        plan.reduce_into(both[plan.n_gather :], accB)
        plan.apply_into(gradA, accA, gbuf)
        plan.apply_into(gradB, accB, gbuf)
    return ll
