"""Corpus compilation: one vectorized gradient pass over all cascades.

The two-sweep gradients of :mod:`repro.embedding.gradients` are exact but
pay NumPy call overhead per cascade — ruinous when a corpus holds
thousands of small sub-cascades (the common case inside the parallel
engine).  Since cascade *structure* (node order, tie groups, boundaries)
never changes between optimizer iterations, we compile it once into flat
arrays spanning the whole corpus and evaluate every iteration with a
fixed, small number of NumPy operations over ``(total_infections, K)``
arrays:

* prefix sums run over the concatenation; per-cascade prefixes are
  recovered by subtracting the cumulative value at each cascade's start;
* suffix sums likewise, subtracting at each cascade's end;
* scatter-accumulation into the gradient matrices is one ``np.add.at``.

The result is bit-for-bit the same math as the per-cascade path (the test
suite cross-checks them) at a fraction of the interpreter overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.likelihood import EPS

__all__ = ["CompiledCorpus", "corpus_gradients"]


@dataclass(frozen=True)
class CompiledCorpus:
    """Static structure of a corpus, flattened for vectorized evaluation.

    All index arrays are *global* positions into the concatenated corpus;
    ``starts``/``ends`` delimit each position's strict-tie group,
    ``cascade_begin``/``cascade_end`` the owning cascade.
    """

    nodes: np.ndarray  # (M,) node ids
    times: np.ndarray  # (M,) infection times
    starts: np.ndarray  # (M,) global index of first same-time position
    ends: np.ndarray  # (M,) one past last same-time position
    cascade_begin: np.ndarray  # (M,) global index of cascade's first position
    cascade_end: np.ndarray  # (M,) one past cascade's last position
    valid: np.ndarray  # (M,) has >= 1 strict predecessor

    @classmethod
    def from_cascades(cls, cascades: Iterable[Cascade]) -> "CompiledCorpus":
        """Flatten *cascades* (size-<2 cascades contribute nothing and are
        skipped)."""
        nodes_l, times_l, starts_l, ends_l, cb_l, ce_l = [], [], [], [], [], []
        offset = 0
        for c in cascades:
            s = c.size
            if s < 2:
                continue
            t = c.times
            starts = np.searchsorted(t, t, side="left")
            ends = np.searchsorted(t, t, side="right")
            nodes_l.append(c.nodes)
            times_l.append(t)
            starts_l.append(starts + offset)
            ends_l.append(ends + offset)
            cb_l.append(np.full(s, offset, dtype=np.int64))
            ce_l.append(np.full(s, offset + s, dtype=np.int64))
            offset += s
        if not nodes_l:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=np.float64)
            return cls(
                empty_i, empty_f, empty_i, empty_i, empty_i, empty_i,
                np.empty(0, dtype=bool),
            )
        nodes = np.concatenate(nodes_l)
        times = np.concatenate(times_l)
        starts = np.concatenate(starts_l)
        ends = np.concatenate(ends_l)
        cb = np.concatenate(cb_l)
        ce = np.concatenate(ce_l)
        return cls(nodes, times, starts, ends, cb, ce, starts > cb)

    @classmethod
    def from_arena(
        cls,
        nodes: np.ndarray,
        times: np.ndarray,
        offsets: np.ndarray,
    ) -> "CompiledCorpus":
        """Compile a flat CSR sub-corpus without materializing ``Cascade``s.

        The zero-copy path of the parallel engine: *nodes*/*times* are the
        concatenated (already time-sorted) sub-cascades a worker gathered
        from the shared-memory arena, *offsets* the ``(S+1,)`` sub-cascade
        boundaries.  Produces bit-identical structure to
        :meth:`from_cascades` over the same sub-cascades — including the
        skip of size-<2 sub-cascades — but with a fixed number of
        vectorized passes instead of a Python loop per cascade.
        """
        nodes = np.ascontiguousarray(nodes, dtype=np.int64)
        times = np.ascontiguousarray(times, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        sizes = np.diff(offsets)
        if np.any(sizes < 2):
            # Compact away sub-cascades that carry no likelihood signal.
            keep = sizes >= 2
            mask = np.repeat(keep, sizes)
            nodes = nodes[mask]
            times = times[mask]
            sizes = sizes[keep]
            offsets = np.zeros(sizes.size + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
        M = int(nodes.size)
        if M == 0:
            empty_i = np.empty(0, dtype=np.int64)
            return cls(
                empty_i,
                np.empty(0, dtype=np.float64),
                empty_i,
                empty_i,
                empty_i,
                empty_i,
                np.empty(0, dtype=bool),
            )
        idx = np.arange(M, dtype=np.int64)
        cb = np.repeat(offsets[:-1], sizes)
        ce = np.repeat(offsets[1:], sizes)
        # Tie-group starts: first position of each run of equal times
        # within a cascade (== searchsorted(t, t, "left") per cascade).
        is_first = np.empty(M, dtype=bool)
        is_first[0] = True
        is_first[1:] = times[1:] != times[:-1]
        is_first[offsets[:-1]] = True
        starts = np.maximum.accumulate(np.where(is_first, idx, 0))
        # Tie-group ends: one past the last equal-time position.
        is_last = np.empty(M, dtype=bool)
        is_last[M - 1] = True
        is_last[:-1] = times[1:] != times[:-1]
        is_last[offsets[1:] - 1] = True
        ends = np.minimum.accumulate(np.where(is_last, idx + 1, M)[::-1])[::-1]
        return cls(nodes, times, starts, ends, cb, ce, starts > cb)

    @property
    def n_infections(self) -> int:
        return int(self.nodes.size)


def corpus_gradients(
    A: np.ndarray,
    B: np.ndarray,
    corpus: CompiledCorpus,
    gradA: np.ndarray,
    gradB: np.ndarray,
    eps: float = EPS,
    background_rate: float = 0.0,
) -> float:
    """Add the full-corpus ∇L to *gradA*/*gradB* in place; return Σ_c L_c.

    Exactly Eq. 12–16, evaluated in one pass (see module docstring).

    *background_rate* adds a constant exogenous hazard μ to every
    infection's denominator (``log(Σ A_u·B_v + μ)``): each adoption can
    always be explained by a tiny out-of-network source.  With μ = 0 the
    objective is the paper's Eq. 8 verbatim, but an infection whose
    predecessors all carry zero rate makes the ε-guarded log's gradient
    explode (≈ 1/ε), which happens systematically when merge-tree levels
    reintroduce cross-community pairs that leaf-level fits zeroed out.  A
    small μ bounds the gradient by 1/μ and keeps the landscape
    optimizable without noticeably moving well-explained infections.
    """
    M = corpus.n_infections
    if M == 0:
        return 0.0
    nodes = corpus.nodes
    t = corpus.times
    K = A.shape[1]
    A_pos = A[nodes]
    B_pos = B[nodes]
    t_col = t[:, None]

    # ---- forward sweep ------------------------------------------------ #
    cumA = np.empty((M + 1, K))
    cumA[0] = 0.0
    np.cumsum(A_pos, axis=0, out=cumA[1:])
    cumtA = np.empty((M + 1, K))
    cumtA[0] = 0.0
    np.cumsum(t_col * A_pos, axis=0, out=cumtA[1:])
    H = cumA[corpus.starts] - cumA[corpus.cascade_begin]
    G = cumtA[corpus.starts] - cumtA[corpus.cascade_begin]

    valid = corpus.valid
    denom = np.einsum("ik,ik->i", H, B_pos)
    if background_rate > 0.0:
        denom += background_rate
    np.maximum(denom, eps, out=denom)
    inv_denom = 1.0 / denom

    lin = G - t_col * H
    dB_pos = lin + H * inv_denom[:, None]
    dB_pos[~valid] = 0.0

    # ---- backward sweep ------------------------------------------------ #
    vmask = valid[:, None]
    vB = np.where(vmask, B_pos, 0.0)
    vtB = t_col * vB
    vBd = vB * inv_denom[:, None]
    def suffix(x: np.ndarray) -> np.ndarray:
        out = np.empty((M + 1, K))
        out[M] = 0.0
        out[:M] = np.cumsum(x[::-1], axis=0)[::-1]
        return out

    sufB = suffix(vB)
    suftB = suffix(vtB)
    sufBd = suffix(vBd)
    P = sufB[corpus.ends] - sufB[corpus.cascade_end]
    Q = suftB[corpus.ends] - suftB[corpus.cascade_end]
    R = sufBd[corpus.ends] - sufBd[corpus.cascade_end]
    dA_pos = t_col * P - Q + R

    np.add.at(gradA, nodes, dA_pos)
    np.add.at(gradB, nodes, dB_pos)

    ll_lin = np.einsum("ik,ik->i", lin, B_pos)
    return float(np.sum(ll_lin[valid] + np.log(denom[valid])))
