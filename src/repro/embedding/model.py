"""Parameter container for the influence/selectivity embedding model."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array_shape, check_nonnegative

__all__ = ["EmbeddingModel"]


class EmbeddingModel:
    """Non-negative node embeddings ``(A, B)`` of shape (n_nodes, n_topics).

    ``A[u, k]`` is node *u*'s influence on topic *k* — the probability-rate
    that others pick up content *u* emitted; ``B[v, k]`` is *v*'s
    selectivity — how readily *v* accepts inputs on topic *k* (§III-B).
    The two are not assumed correlated.

    Parameters
    ----------
    A, B:
        Non-negative float64 matrices of identical shape.

    Notes
    -----
    The matrices are owned (not copied) so the parallel engine can alias
    shared memory; mutate through the provided methods.
    """

    __slots__ = ("A", "B")

    def __init__(self, A: np.ndarray, B: np.ndarray) -> None:
        A = np.asarray(A, dtype=np.float64)
        B = np.asarray(B, dtype=np.float64)
        if A.ndim != 2 or A.shape != B.shape:
            raise ValueError(
                f"A and B must be equal-shape 2-D matrices, got {A.shape} vs {B.shape}"
            )
        if A.size and (A.min() < 0 or B.min() < 0):
            raise ValueError("embeddings must be non-negative")
        self.A = A
        self.B = B

    # ------------------------------------------------------------------ #

    @classmethod
    def random(
        cls,
        n_nodes: int,
        n_topics: int,
        scale: float = 1.0,
        seed: SeedLike = None,
    ) -> "EmbeddingModel":
        """Uniform(0, scale) initialization — the optimizer's starting point."""
        check_nonnegative(scale, "scale")
        rng = as_generator(seed)
        A = rng.uniform(0.0, scale, size=(n_nodes, n_topics))
        B = rng.uniform(0.0, scale, size=(n_nodes, n_topics))
        return cls(A, B)

    @classmethod
    def zeros(cls, n_nodes: int, n_topics: int) -> "EmbeddingModel":
        return cls(
            np.zeros((n_nodes, n_topics)), np.zeros((n_nodes, n_topics))
        )

    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        return self.A.shape[0]

    @property
    def n_topics(self) -> int:
        """K, the latent topic dimensionality."""
        return self.A.shape[1]

    def copy(self) -> "EmbeddingModel":
        return EmbeddingModel(self.A.copy(), self.B.copy())

    def hazard_rate(self, u: int, v: int) -> float:
        """``h_uv`` rate parameter: ``A[u] · B[v]`` (Eq. 6 at Δt-rate form)."""
        return float(self.A[u] @ self.B[v])

    def hazard(self, u: int, v: int, dt: float) -> float:
        """Hazard function value ``h_uv(Δt) = A_u·B_v`` (constant in Δt for
        exponential delays), defined for ``dt >= 0``."""
        if dt < 0:
            raise ValueError("dt must be >= 0")
        return self.hazard_rate(u, v)

    def survival(self, u: int, v: int, dt: float) -> float:
        """Survival ``S_uv(Δt) = exp(−A_u·B_v Δt)`` (Eq. 7)."""
        if dt < 0:
            raise ValueError("dt must be >= 0")
        return float(np.exp(-self.hazard_rate(u, v) * dt))

    def rate_matrix(self) -> np.ndarray:
        """Dense (n, n) matrix of pairwise rates ``A @ B.T`` — O(n²) memory,
        intended for small diagnostic graphs only."""
        return self.A @ self.B.T

    def project(self, min_value: float = 0.0) -> None:
        """Clip both matrices at *min_value* in place (the projection step
        of projected gradient ascent)."""
        np.maximum(self.A, min_value, out=self.A)
        np.maximum(self.B, min_value, out=self.B)

    def frobenius_distance(self, other: "EmbeddingModel") -> float:
        """‖A−A'‖_F + ‖B−B'‖_F, for convergence diagnostics and tests."""
        if other.A.shape != self.A.shape:
            raise ValueError("models have different shapes")
        return float(
            np.linalg.norm(self.A - other.A) + np.linalg.norm(self.B - other.B)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EmbeddingModel):
            return NotImplemented
        return np.array_equal(self.A, other.A) and np.array_equal(self.B, other.B)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EmbeddingModel(n_nodes={self.n_nodes}, n_topics={self.n_topics})"

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str | Path) -> None:
        """Serialize to an ``.npz`` archive with arrays ``A`` and ``B``."""
        np.savez_compressed(path, A=self.A, B=self.B)

    @classmethod
    def load(cls, path: str | Path) -> EmbeddingModel:
        """Load a model written by :meth:`save`."""
        with np.load(path) as data:
            if "A" not in data or "B" not in data:
                raise ValueError(f"{path}: not an embedding archive (need A, B)")
            return cls(data["A"].copy(), data["B"].copy())
