"""Projected (block-coordinate) gradient ascent — Algorithm 1's inner loop.

Each iteration accumulates full-batch gradients over the supplied cascades
(lines 14–21 of Algorithm 1), applies the scaled update to the rows being
optimized, and projects onto the non-negative orthant (the constraints of
Eq. 10–11, enforced exactly as in Lin's projected-gradient NMF method).

Early stopping follows the paper: "the inference algorithm ... terminates
when the corresponding log-likelihood no longer increases or the max number
of iterations is exceeded."  As a practical safeguard the step size is
halved whenever an update *decreases* the log-likelihood (and the step is
retracted), which keeps full-batch ascent stable without a line search.

The optional ``update_rows`` mask makes this a *block-coordinate* solver:
gradient information outside the block is discarded, which is exactly how
the per-community processes of Algorithm 1 behave after sub-cascade
splitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.cascades.types import CascadeSet
from repro.embedding.compiled import (
    CompiledCorpus,
    GradientWorkspace,
    corpus_gradients,
)
from repro.embedding.likelihood import EPS
from repro.embedding.model import EmbeddingModel

__all__ = [
    "OptimizerConfig",
    "FitResult",
    "NumericalDivergenceError",
    "ProjectedGradientAscent",
]


class NumericalDivergenceError(RuntimeError):
    """The objective or its gradients became non-finite and stayed so.

    Raised when repeated step-halving (``max_nonfinite_retries``
    retractions in a row, or step-size underflow while retracting) fails
    to return the iterate to a finite region — e.g. an extreme learning
    rate overflowing ``exp``-free but unbounded rate sums.  Distinct from
    ordinary convergence failure: the model state is not trustworthy, so
    callers (the parallel engine's retry ladder in particular) should
    treat the task as faulted rather than accept the result.
    """


@dataclass(frozen=True)
class OptimizerConfig:
    """Hyper-parameters of the projected gradient ascent.

    Attributes
    ----------
    learning_rate:
        Initial step size α (Algorithm 1 line 18).
    max_iters:
        Hard iteration cap (Algorithm 1 line 26).
    tol:
        Minimum relative log-likelihood improvement still counted as
        progress.
    patience:
        Consecutive no-progress iterations tolerated before stopping.
    step_decay:
        Multiplier applied to the step size after a rejected (descending)
        step.
    min_step:
        Stop when the step size decays below this.
    eps:
        Likelihood denominator guard.
    l2:
        Optional ridge penalty ``l2/2 (‖A‖² + ‖B‖²)`` subtracted from the
        objective.  Eq. 8 is a *partial* likelihood (no censoring), so
        rates of rarely observed nodes are high-variance — their MLE is
        ``1/Δt`` from a handful of observations; a small ridge shrinks
        those unconstrained rows without noticeably moving well-observed
        ones.  0 (default) reproduces the paper's unregularized objective.
    max_nonfinite_retries:
        Consecutive non-finite evaluations (nan/inf log-likelihood or
        gradients) tolerated while step-halving before the fit aborts
        with :class:`NumericalDivergenceError`.
    background_rate:
        Exogenous hazard μ added inside every ``log Σ A_u·B_v`` term.
        When a merge-tree level reintroduces predecessor pairs whose rates
        the previous (block-restricted) level projected to zero, Eq. 8's
        bare log makes the gradient explode (≈1/ε) and no feasible ascent
        step exists, so warm-started upper levels stop early (step-size
        underflow) instead of refining.  A small μ (e.g. 1e-3) bounds the
        gradient by 1/μ and lets upper levels keep optimizing.
        Empirically this is a trade-off: with μ the merged levels refine
        longer (better parallel-scaling realism) but give up the implicit
        sparsity of hard-zero cross-community rates, which costs a few F1
        points of prediction accuracy.  The default 0 is the paper's
        verbatim objective.
    """

    learning_rate: float = 0.05
    max_iters: int = 200
    tol: float = 1e-7
    patience: int = 3
    step_decay: float = 0.5
    min_step: float = 1e-10
    eps: float = EPS
    l2: float = 0.0
    max_nonfinite_retries: int = 8
    background_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.max_iters < 1:
            raise ValueError("max_iters must be >= 1")
        if not (0 < self.step_decay < 1):
            raise ValueError("step_decay must lie in (0, 1)")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.l2 < 0:
            raise ValueError("l2 must be >= 0")
        if self.max_nonfinite_retries < 1:
            raise ValueError("max_nonfinite_retries must be >= 1")
        if self.background_rate < 0:
            raise ValueError("background_rate must be >= 0")


@dataclass
class FitResult:
    """Outcome of a fit: log-likelihood trace and termination reason."""

    history: List[float] = field(default_factory=list)
    n_iters: int = 0
    converged: bool = False
    reason: str = ""

    @property
    def final_loglik(self) -> float:
        return self.history[-1] if self.history else float("-inf")


class ProjectedGradientAscent:
    """Full-batch projected gradient ascent on Eq. 9.

    Parameters
    ----------
    config:
        Hyper-parameters; defaults follow DESIGN.md §7.
    """

    def __init__(self, config: Optional[OptimizerConfig] = None) -> None:
        self.config = config or OptimizerConfig()

    def fit(
        self,
        model: EmbeddingModel,
        cascades: Union[CascadeSet, CompiledCorpus],
        update_rows: Optional[np.ndarray] = None,
        callback: Optional[Callable[[int, float], None]] = None,
        workspace: Optional[GradientWorkspace] = None,
    ) -> FitResult:
        """Optimize *model* in place on *cascades*.

        Parameters
        ----------
        model:
            Updated in place.
        cascades:
            Training corpus (already split into sub-cascades when running
            per community).  A pre-built :class:`CompiledCorpus` is
            accepted directly — the parallel engine's zero-copy path
            compiles worker-side from the shared-memory arena (and caches
            the result), so re-compiling here would waste the savings.
        update_rows:
            Optional boolean mask or integer index array restricting which
            embedding rows may change (block-coordinate mode).  Rows outside
            the block neither move nor contribute gradient mass.
        callback:
            Called as ``callback(iteration, loglik)`` after each accepted
            step.
        workspace:
            Optional :class:`GradientWorkspace` reused across iterations
            (and, by long-lived callers such as the parallel workers,
            across fits).  Supplies every kernel buffer plus the
            candidate arrays of the step loop; results are bit-identical
            with or without it.

        Returns
        -------
        FitResult
        """
        cfg = self.config
        n = model.n_nodes
        if isinstance(cascades, CompiledCorpus):
            if cascades.n_infections and int(cascades.nodes.max()) >= n:
                raise ValueError(
                    f"compiled corpus references node {int(cascades.nodes.max())} "
                    f"but model has {n} rows"
                )
        elif cascades.n_nodes > n:
            raise ValueError(
                f"cascades cover {cascades.n_nodes} nodes but model has {n} rows"
            )
        if update_rows is None:
            row_mask = None
        else:
            update_rows = np.asarray(update_rows)
            if update_rows.dtype == bool:
                if update_rows.shape != (n,):
                    raise ValueError("boolean update_rows must have length n_nodes")
                row_mask = update_rows
            else:
                row_mask = np.zeros(n, dtype=bool)
                row_mask[update_rows] = True

        # Cascade structure is static across iterations: compile once,
        # evaluate each pass with a fixed number of vectorized NumPy ops.
        if isinstance(cascades, CompiledCorpus):
            corpus = cascades
        else:
            corpus = CompiledCorpus.from_cascades(cascades)
        if workspace is None:
            workspace = GradientWorkspace()
        gradA = np.zeros_like(model.A)
        gradB = np.zeros_like(model.B)
        frozen_rows = (
            None if row_mask is None else np.flatnonzero(~row_mask)
        )
        result = FitResult()
        lr = cfg.learning_rate
        best_ll = self._loglik_and_grads(
            model.A, model.B, corpus, gradA, gradB, cfg.eps, workspace
        )
        if not self._all_finite(best_ll, gradA, gradB):
            raise NumericalDivergenceError(
                "objective or gradients non-finite at the starting point; "
                "nothing to retract to — check initial embeddings and eps"
            )
        result.history.append(best_ll)
        stall = 0
        nonfinite_streak = 0

        # The step loop ping-pongs between the model's arrays and a pair
        # of candidate buffers: the candidate point is built out of place,
        # so a rejected step retracts by simply not swapping — no
        # per-iteration prevA/prevB copies.  The model may therefore
        # temporarily point at workspace-owned arrays; the finally block
        # restores the original array *objects* (copying values back) so
        # callers that alias model.A/model.B — the parallel engine's
        # shared-memory blocks in particular — always see the result in
        # the arrays they handed in.
        origA, origB = model.A, model.B
        candA, candB = workspace.model_candidates(n, model.n_topics)
        try:
            for it in range(cfg.max_iters):
                if frozen_rows is not None:
                    gradA[frozen_rows] = 0.0
                    gradB[frozen_rows] = 0.0
                np.multiply(gradA, lr, out=candA)
                candA += model.A
                np.multiply(gradB, lr, out=candB)
                candB += model.B
                np.maximum(candA, 0.0, out=candA)
                np.maximum(candB, 0.0, out=candB)

                ll = self._loglik_and_grads(
                    candA, candB, corpus, gradA, gradB, cfg.eps, workspace
                )
                result.n_iters = it + 1

                if not self._all_finite(ll, gradA, gradB):
                    # The step left the finite region (overflowed rates,
                    # nan gradients).  Treat like a rejected step — the
                    # model never moved, so just halve — but track the
                    # streak: if halving cannot recover, the fit is
                    # numerically dead and the caller must not trust the
                    # iterate.
                    lr *= cfg.step_decay
                    nonfinite_streak += 1
                    if nonfinite_streak > cfg.max_nonfinite_retries:
                        raise NumericalDivergenceError(
                            f"objective/gradients non-finite for "
                            f"{nonfinite_streak} consecutive steps at "
                            f"iteration {it + 1}; aborting"
                        )
                    if lr < cfg.min_step:
                        raise NumericalDivergenceError(
                            f"step size underflowed ({lr:.3e}) while "
                            f"retreating from a non-finite region at "
                            f"iteration {it + 1}"
                        )
                    self._loglik_and_grads(
                        model.A, model.B, corpus, gradA, gradB, cfg.eps,
                        workspace,
                    )
                    continue
                nonfinite_streak = 0

                if ll < best_ll - abs(best_ll) * 1e-12:
                    # Reject: keep the model where it was, shrink step.
                    lr *= cfg.step_decay
                    if lr < cfg.min_step:
                        result.converged = True
                        result.reason = "step size underflow"
                        break
                    # gradA/gradB currently hold gradients at the rejected
                    # candidate; recompute them at the retained point.
                    self._loglik_and_grads(
                        model.A, model.B, corpus, gradA, gradB, cfg.eps,
                        workspace,
                    )
                    continue

                # Accept: the candidate becomes the model; the displaced
                # arrays become the next candidate buffers.
                model.A, candA = candA, model.A
                model.B, candB = candB, model.B
                result.history.append(ll)
                if callback is not None:
                    callback(it, ll)
                improvement = ll - best_ll
                rel = improvement / max(abs(best_ll), 1.0)
                if rel < cfg.tol:
                    stall += 1
                    if stall >= cfg.patience:
                        result.converged = True
                        result.reason = "log-likelihood plateau"
                        break
                else:
                    stall = 0
                best_ll = max(best_ll, ll)
            else:
                result.reason = "max iterations"
        finally:
            if model.A is not origA:
                origA[:] = model.A
                model.A = origA
            if model.B is not origB:
                origB[:] = model.B
                model.B = origB
            # The displaced buffers may be the caller's arrays after an
            # odd number of swaps; drop them so a later fit through the
            # same workspace cannot scribble over a finished model.
            workspace.release_candidates()

        return result

    @staticmethod
    def _all_finite(ll: float, gradA: np.ndarray, gradB: np.ndarray) -> bool:
        """True when the objective and both gradient blocks are finite."""
        return (
            bool(np.isfinite(ll))
            and bool(np.all(np.isfinite(gradA)))
            and bool(np.all(np.isfinite(gradB)))
        )

    def _loglik_and_grads(
        self,
        A: np.ndarray,
        B: np.ndarray,
        corpus: CompiledCorpus,
        gradA: np.ndarray,
        gradB: np.ndarray,
        eps: float,
        workspace: GradientWorkspace,
    ) -> float:
        """Zero the accumulators, then one full pass (Alg. 1 lines 14–21).

        Takes the evaluation point as raw arrays (not a model) because the
        step loop evaluates candidate points that are not yet the model.
        Returns the (optionally ridge-penalized) objective so the step
        accept/reject logic tracks what the update actually ascends.
        """
        gradA.fill(0.0)
        gradB.fill(0.0)
        ll = corpus_gradients(
            A, B, corpus, gradA, gradB,
            eps=eps, background_rate=self.config.background_rate,
            workspace=workspace,
        )
        l2 = self.config.l2
        if l2 > 0.0:
            gradA -= l2 * A
            gradB -= l2 * B
            ll -= 0.5 * l2 * (
                float(np.sum(A**2)) + float(np.sum(B**2))
            )
        return ll
