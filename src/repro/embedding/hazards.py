"""Parametric hazard kernels for link-based inference (NetRate family).

§III-A grounds the model in survival analysis: ``h()`` and ``S()`` are
hazard and survival functions, and "a common choice of the hazard
function is the exponentially decaying".  The link-based comparator
family (Gomez-Rodriguez et al.) supports three standard transmission
kernels, all *linear in the rate parameter* λ:

========== ============================ =============================
kernel      hazard ``h(τ) = λ·k(τ)``     cumulative ``H(τ) = λ·g(τ)``
========== ============================ =============================
exponential ``λ``                        ``λ τ``
Rayleigh    ``λ τ``                      ``λ τ²/2``
power-law   ``λ / (τ + δ)``              ``λ ln(1 + τ/δ)``
========== ============================ =============================

Because both terms are linear in λ, the cascade log-likelihood

.. math::

    L_c = \\sum_v \\Big[ -\\sum_{l \\prec v} λ_{lv}\\, g(t_v - t_l)
          + \\ln \\sum_{l \\prec v} λ_{lv}\\, k(t_v - t_l) \\Big]

keeps the same concave-in-λ structure for every kernel, and
:class:`repro.embedding.linkmodel.LinkRateModel` becomes kernel-generic:
only the per-pair features ``g(τ)`` and ``k(τ)`` change.

The *node* model (Eq. 6–8) is intrinsically exponential — the
"minimum of K exponentials is exponential with the summed rate" argument
does not transfer to the other kernels — which is itself a modeling
trade-off this module makes explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "HazardKernel",
    "ExponentialKernel",
    "RayleighKernel",
    "PowerLawKernel",
    "get_kernel",
]


class HazardKernel:
    """Interface: per-pair features of a rate-linear hazard family."""

    name: str = "abstract"

    def k(self, tau: np.ndarray) -> np.ndarray:
        """Hazard shape: ``h(τ) = λ k(τ)`` for delays ``τ > 0``."""
        raise NotImplementedError

    def g(self, tau: np.ndarray) -> np.ndarray:
        """Cumulative hazard shape: ``H(τ) = λ g(τ)``."""
        raise NotImplementedError

    def survival(self, tau: np.ndarray, rate: float) -> np.ndarray:
        """``S(τ) = exp(-λ g(τ))``."""
        tau = np.asarray(tau, dtype=np.float64)
        if np.any(tau < 0):
            raise ValueError("delays must be non-negative")
        return np.exp(-rate * self.g(tau))

    def density(self, tau: np.ndarray, rate: float) -> np.ndarray:
        """Transmission density ``f(τ) = h(τ) S(τ)``."""
        tau = np.asarray(tau, dtype=np.float64)
        return rate * self.k(tau) * self.survival(tau, rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class ExponentialKernel(HazardKernel):
    """Constant hazard — the paper's (and the node model's) choice."""

    name: str = "exponential"

    def k(self, tau: np.ndarray) -> np.ndarray:
        tau = np.asarray(tau, dtype=np.float64)
        return np.ones_like(tau)

    def g(self, tau: np.ndarray) -> np.ndarray:
        return np.asarray(tau, dtype=np.float64)


@dataclass(frozen=True, repr=False)
class RayleighKernel(HazardKernel):
    """Linearly growing hazard (delays concentrate around a mode)."""

    name: str = "rayleigh"

    def k(self, tau: np.ndarray) -> np.ndarray:
        return np.asarray(tau, dtype=np.float64)

    def g(self, tau: np.ndarray) -> np.ndarray:
        tau = np.asarray(tau, dtype=np.float64)
        return 0.5 * tau**2


@dataclass(frozen=True, repr=False)
class PowerLawKernel(HazardKernel):
    """Heavy-tailed hazard ``λ/(τ+δ)`` (long-memory transmission).

    Parameters
    ----------
    delta:
        Offset keeping the hazard finite at τ = 0.
    """

    delta: float = 0.1
    name: str = "powerlaw"

    def __post_init__(self) -> None:
        check_positive(self.delta, "delta")

    def k(self, tau: np.ndarray) -> np.ndarray:
        tau = np.asarray(tau, dtype=np.float64)
        return 1.0 / (tau + self.delta)

    def g(self, tau: np.ndarray) -> np.ndarray:
        tau = np.asarray(tau, dtype=np.float64)
        return np.log1p(tau / self.delta)


_KERNELS = {
    "exponential": ExponentialKernel,
    "rayleigh": RayleighKernel,
    "powerlaw": PowerLawKernel,
}


def get_kernel(name: str, **kwargs) -> HazardKernel:
    """Kernel factory by name (``exponential`` / ``rayleigh`` / ``powerlaw``)."""
    try:
        return _KERNELS[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {sorted(_KERNELS)}"
        ) from None
