"""Early-stage virality prediction (§V, Figs. 5–9, 12).

Given inferred embeddings and the *early adopters* of a new cascade (the
infections observed in the first fraction of the observation window), three
features are extracted from the adopters' influence vectors —

* ``diverA`` (Eq. 17): max pairwise Euclidean distance,
* ``normA``  (Eq. 18): norm of the summed influence,
* ``maxA``   (Eq. 19): largest component of the summed influence —

and fed to a linear SVM that classifies whether the final cascade size will
exceed a threshold.  Evaluation is F1 under 10-fold cross-validation,
swept over thresholds (the red curves of Figs. 9 and 12).
"""

from repro.prediction.features import FeatureExtractor, extract_features
from repro.prediction.svm import LinearSVM
from repro.prediction.metrics import (
    accuracy,
    confusion_counts,
    f1_score,
    precision,
    recall,
)
from repro.prediction.crossval import cross_val_f1, kfold_indices
from repro.prediction.pipeline import (
    PredictionDataset,
    ThresholdSweepResult,
    ViralityPredictor,
    build_dataset,
    threshold_sweep,
)
from repro.prediction.curves import (
    average_precision,
    best_informedness,
    precision_recall_curve,
    roc_auc,
    roc_curve,
)
from repro.prediction.pointprocess import SelfExcitingSizePredictor
from repro.prediction.regression import (
    RidgeRegression,
    mean_absolute_error,
    r2_score,
)

__all__ = [
    "FeatureExtractor",
    "extract_features",
    "LinearSVM",
    "confusion_counts",
    "precision",
    "recall",
    "f1_score",
    "accuracy",
    "kfold_indices",
    "cross_val_f1",
    "ViralityPredictor",
    "PredictionDataset",
    "build_dataset",
    "threshold_sweep",
    "ThresholdSweepResult",
    "SelfExcitingSizePredictor",
    "roc_curve",
    "roc_auc",
    "precision_recall_curve",
    "average_precision",
    "best_informedness",
    "RidgeRegression",
    "r2_score",
    "mean_absolute_error",
]
