"""Binary classification metrics (Powers 2011 conventions, as cited §VI-A).

Labels are ±1 with +1 the positive ("viral") class.  All metrics define
0/0 as 0, the usual convention when a fold contains no positive
predictions or no positive truths.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["confusion_counts", "precision", "recall", "f1_score", "accuracy"]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be equal-length 1-D arrays")
    for arr, name in ((y_true, "y_true"), (y_pred, "y_pred")):
        if arr.size and not np.all(np.isin(arr, (-1, 1))):
            raise ValueError(f"{name} must contain only -1/+1 labels")
    return y_true, y_pred


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[int, int, int, int]:
    """Return ``(tp, fp, fn, tn)``."""
    y_true, y_pred = _validate(y_true, y_pred)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == -1) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == -1)))
    tn = int(np.sum((y_true == -1) & (y_pred == -1)))
    return tp, fp, fn, tn


def precision(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """tp / (tp + fp), 0 when no positive predictions."""
    tp, fp, _, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fp) if (tp + fp) else 0.0


def recall(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """tp / (tp + fn), 0 when no positive truths."""
    tp, _, fn, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fn) if (tp + fn) else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall (the paper's F1-measure)."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct labels."""
    y_true, y_pred = _validate(y_true, y_pred)
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))
