"""Early-adopter feature extraction (Eq. 17–19), batch and streaming.

The features deliberately use only the *influence* vectors of the early
adopters — no topology — which is what lets the predictor work when the
propagation network is hidden (§V).  Selectivity-based analogues
(``diverB``/``normB``/``maxB``) and the raw early-adopter count are
provided as extensions; the paper's feature set is the default.

Streaming evaluation
--------------------
:class:`IncrementalFeatures` folds adoption events in one at a time —
``normA``/``maxA`` as running sums, ``diverA`` via an O(mK) new-adopter
distance update, the MAP-infector-tree statistics via appending to the
parent forest — instead of the O(m²K) recompute a batch call performs on
every prefix.  :func:`extract_features` *is* this class replayed over a
prefix, so the streamed and batch feature vectors are bit-identical on
every observed prefix by construction (the serving layer's parity
guarantee, property-tested in ``tests/property/test_prop_serving.py``).

A consequence worth stating: the canonical summation order of ``sumA``
is the *left fold in adoption order* (not numpy's pairwise ``sum``), and
``diverA`` is the max over per-adopter distance updates (not one Gram
matrix).  Both are mathematically the quantities of Eq. 17–19; only the
float rounding path is pinned down so that two implementations can agree
bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel

__all__ = [
    "PAPER_FEATURES",
    "EXTENDED_FEATURES",
    "extract_features",
    "FeatureExtractor",
    "IncrementalFeatures",
]

PAPER_FEATURES: Tuple[str, ...] = ("diverA", "normA", "maxA")
EXTENDED_FEATURES: Tuple[str, ...] = (
    "diverA",
    "normA",
    "maxA",
    "diverB",
    "normB",
    "maxB",
    "n_early",
    # structural features of the MAP infector tree of the early prefix
    # (the Cheng et al. family the paper cites as [21])
    "depth",
    "breadth",
    "sviral",
)

#: initial per-cascade buffer capacity (doubled on demand)
_INIT_CAPACITY = 8


def _row_sq_norm(v: np.ndarray) -> float:
    """Squared Euclidean norm of one embedding row, the canonical way.

    Both the batch path and the incremental tracker compute ‖x‖² through
    this single call so the bits can never diverge.
    """
    return float(np.einsum("k,k->", v, v))


class _SideState:
    """Incremental state for one embedding plane (A or B).

    Maintains what the requested features need and nothing more: the
    adopter rows + squared norms and the running max pairwise squared
    distance when ``diver*`` is wanted; the running left-fold sum when
    ``norm*``/``max*`` are.
    """

    __slots__ = ("need_diver", "need_sum", "V", "sq", "d2max", "vec_sum")

    def __init__(self, n_topics: int, need_diver: bool, need_sum: bool) -> None:
        self.need_diver = need_diver
        self.need_sum = need_sum
        self.V: Optional[np.ndarray] = (
            np.empty((_INIT_CAPACITY, n_topics)) if need_diver else None
        )
        self.sq: Optional[np.ndarray] = (
            np.empty(_INIT_CAPACITY) if need_diver else None
        )
        self.d2max = float("-inf")
        self.vec_sum: Optional[np.ndarray] = (
            np.zeros(n_topics) if need_sum else None
        )

    def grow(self, capacity: int) -> None:
        if self.V is not None and self.sq is not None:
            V = np.empty((capacity, self.V.shape[1]))
            V[: self.V.shape[0]] = self.V
            self.V = V
            sq = np.empty(capacity)
            sq[: self.sq.shape[0]] = self.sq
            self.sq = sq

    def append(self, i: int, row: np.ndarray) -> None:
        """Fold adopter *i*'s embedding row into the running state.

        The ``diver`` update is the O(mK) step: squared distances of the
        new adopter against every previous one via one mat-vec, folded
        into the running max (max is order-independent, so the running
        fold equals the batch max bit-for-bit).
        """
        if self.V is not None and self.sq is not None:
            self.V[i] = row
            sq_new = _row_sq_norm(self.V[i])
            self.sq[i] = sq_new
            if i >= 1:
                d2 = self.sq[:i] + sq_new - 2.0 * (self.V[:i] @ self.V[i])
                self.d2max = max(self.d2max, float(d2.max()))
        if self.vec_sum is not None:
            # left fold in adoption order — the canonical summation
            self.vec_sum = self.vec_sum + row

    # -- feature reads ------------------------------------------------- #

    def diver(self, m: int) -> float:
        """Max pairwise Euclidean distance (Eq. 17), 0 for < 2 adopters."""
        if m < 2:
            return 0.0
        return float(np.sqrt(max(self.d2max, 0.0)))

    def norm(self) -> float:
        assert self.vec_sum is not None
        return float(np.linalg.norm(self.vec_sum))

    def max(self) -> float:
        assert self.vec_sum is not None
        return float(self.vec_sum.max()) if self.vec_sum.size else 0.0


class _TreeState:
    """Incremental MAP infector forest + Cheng-et-al. structure stats.

    Parents only ever *append* under time-ordered arrival (a new adopter
    cannot change an earlier adopter's MAP parent — its strict
    predecessors are fixed), so depth/breadth are O(1) updates and the
    Wiener total is an O(m·depth) LCA sweep per event.  All quantities
    are integers accumulated exactly, so the running totals match the
    batch recompute bit-for-bit in any arrival order.
    """

    __slots__ = (
        "parents",
        "depths",
        "depth_counts",
        "max_depth",
        "max_breadth",
        "anc_sets",
        "sv_total",
        "track_sviral",
    )

    def __init__(self, track_sviral: bool) -> None:
        self.parents = np.empty(_INIT_CAPACITY, dtype=np.int64)
        self.depths = np.empty(_INIT_CAPACITY, dtype=np.int64)
        self.depth_counts: List[int] = []
        self.max_depth = 0
        self.max_breadth = 0
        #: per-position {ancestor position: distance}; -1 is the virtual
        #: origin every root hangs off (structural_virality's convention)
        self.anc_sets: List[Dict[int, int]] = []
        self.sv_total = 0.0
        self.track_sviral = track_sviral

    def grow(self, capacity: int) -> None:
        parents = np.empty(capacity, dtype=np.int64)
        parents[: self.parents.shape[0]] = self.parents
        self.parents = parents
        depths = np.empty(capacity, dtype=np.int64)
        depths[: self.depths.shape[0]] = self.depths
        self.depths = depths

    def append(
        self,
        model: EmbeddingModel,
        nodes: np.ndarray,
        times: np.ndarray,
        i: int,
    ) -> None:
        from repro.cascades.trees import map_parent

        start = int(np.searchsorted(times, times[i], side="left"))
        p = map_parent(model, nodes, times, i, start)
        self.parents[i] = p
        d = 0 if p < 0 else int(self.depths[p]) + 1
        self.depths[i] = d
        if d >= len(self.depth_counts):
            self.depth_counts.append(0)
        self.depth_counts[d] += 1
        self.max_depth = max(self.max_depth, d)
        self.max_breadth = max(self.max_breadth, self.depth_counts[d])
        if not self.track_sviral:
            return
        chain = [i]
        while self.parents[chain[-1]] >= 0:
            chain.append(int(self.parents[chain[-1]]))
        chain.append(-1)  # virtual origin above every root
        for j in range(i):
            set_j = self.anc_sets[j]
            for d_i, n in enumerate(chain):
                if n in set_j:
                    self.sv_total += set_j[n] + d_i  # ints: exact in any order
                    break
        self.anc_sets.append({n: d for d, n in enumerate(chain)})

    def sviral(self, m: int) -> float:
        """Mean pairwise tree distance (Wiener index), 0 for < 2 adopters."""
        if m < 2:
            return 0.0
        return self.sv_total / (m * (m - 1) // 2)


class IncrementalFeatures:
    """Streaming evaluator of one cascade's early-adopter features.

    Feed adoption events through :meth:`update`; read the current
    feature vector with :meth:`features`.  Designed for the serving
    layer's per-cascade trackers, and *the* definition of the feature
    math: :func:`extract_features` replays this class over a prefix, so
    stream and batch agree bit-for-bit on every observed prefix.

    Parameters
    ----------
    model:
        Trained embeddings.  Swap with :meth:`rebind` (replays the
        observed events under the new model).
    feature_set:
        Names from :data:`EXTENDED_FEATURES`; order defines the output
        layout.

    Notes
    -----
    * Events may arrive out of time order; the tracker then rebuilds its
      state over the stable time-sorted event log — the same ordering
      :class:`~repro.cascades.types.Cascade` applies — so the result is
      always the feature vector of ``Cascade(nodes_seen, times_seen)``.
      In-order (and tied-time) arrivals take the cheap append path.
    * A node adopting twice is ignored (:meth:`update` returns ``False``)
      — cascades are SI processes, re-deliveries are expected in an
      at-least-once event stream.
    * Zero observed adopters yield a well-defined all-zero vector.
    """

    def __init__(
        self,
        model: EmbeddingModel,
        feature_set: Sequence[str] = PAPER_FEATURES,
    ) -> None:
        for name in feature_set:
            if name not in EXTENDED_FEATURES:
                raise ValueError(
                    f"unknown feature {name!r}; valid: {EXTENDED_FEATURES}"
                )
        self.model = model
        self.feature_set = tuple(feature_set)
        fs = frozenset(self.feature_set)
        self._need_a = ("diverA" in fs, bool(fs & {"normA", "maxA"}))
        self._need_b = ("diverB" in fs, bool(fs & {"normB", "maxB"}))
        self._need_tree = bool(fs & {"depth", "breadth", "sviral"})
        self._need_sviral = "sviral" in fs
        #: arrival-order event log; the source of truth for rebuilds
        self._events: List[Tuple[int, float]] = []
        self._node_set: Set[int] = set()
        self._init_derived()

    # ------------------------------------------------------------------ #

    def _init_derived(self) -> None:
        K = self.model.n_topics
        self._m = 0
        self._capacity = _INIT_CAPACITY
        self._nodes = np.empty(_INIT_CAPACITY, dtype=np.int64)
        self._times = np.empty(_INIT_CAPACITY, dtype=np.float64)
        self._side_a = _SideState(K, *self._need_a)
        self._side_b = _SideState(K, *self._need_b)
        self._tree = _TreeState(self._need_sviral) if self._need_tree else None

    def _ensure_capacity(self, n: int) -> None:
        if n <= self._capacity:
            return
        capacity = self._capacity
        while capacity < n:
            capacity *= 2
        nodes = np.empty(capacity, dtype=np.int64)
        nodes[: self._m] = self._nodes[: self._m]
        self._nodes = nodes
        times = np.empty(capacity, dtype=np.float64)
        times[: self._m] = self._times[: self._m]
        self._times = times
        self._side_a.grow(capacity)
        self._side_b.grow(capacity)
        if self._tree is not None:
            self._tree.grow(capacity)
        self._capacity = capacity

    # ------------------------------------------------------------------ #

    @property
    def n_events(self) -> int:
        """Number of distinct adopters observed so far."""
        return self._m

    @property
    def last_time(self) -> float:
        """Latest adoption time observed (-inf before any event)."""
        return float(self._times[self._m - 1]) if self._m else float("-inf")

    def observed(self) -> Cascade:
        """The observed prefix as a :class:`Cascade` (stable time order)."""
        if not self._events:
            return Cascade([], [])
        nodes, times = zip(*self._events)
        return Cascade(list(nodes), list(times))

    # ------------------------------------------------------------------ #

    def update(self, node: int, t: float) -> bool:
        """Observe one adoption event; ``False`` if the node is a re-adopt.

        In-order arrivals (``t`` at or after the latest observed time)
        take the O(mK) append path; an out-of-order arrival triggers a
        rebuild over the stable time-sorted log.
        """
        node = int(node)
        t = float(t)
        if not np.isfinite(t):
            raise ValueError("adoption times must be finite")
        if node < 0 or node >= self.model.n_nodes:
            raise ValueError(
                f"node {node} outside the model universe of "
                f"{self.model.n_nodes} nodes"
            )
        if node in self._node_set:
            return False
        self._events.append((node, t))
        self._node_set.add(node)
        if self._m and t < float(self._times[self._m - 1]):
            self._rebuild()
        else:
            self._append(node, t)
        return True

    def rebind(self, model: EmbeddingModel) -> None:
        """Swap the embedding model and replay the event log under it."""
        if self._node_set and max(self._node_set) >= model.n_nodes:
            raise ValueError(
                "new model's node universe does not cover the observed nodes"
            )
        self.model = model
        self._rebuild()

    def _rebuild(self) -> None:
        events = self._events
        self._init_derived()
        if not events:
            return
        nodes = np.asarray([n for n, _ in events], dtype=np.int64)
        times = np.asarray([t for _, t in events], dtype=np.float64)
        order = np.argsort(times, kind="stable")  # Cascade's ordering
        for i in order:
            self._append(int(nodes[i]), float(times[i]))

    def _append(self, node: int, t: float) -> None:
        i = self._m
        self._ensure_capacity(i + 1)
        self._nodes[i] = node
        self._times[i] = t
        self._m = i + 1
        if self._side_a.need_diver or self._side_a.need_sum:
            self._side_a.append(i, self.model.A[node])
        if self._side_b.need_diver or self._side_b.need_sum:
            self._side_b.append(i, self.model.B[node])
        if self._tree is not None:
            self._tree.append(
                self.model, self._nodes[: self._m], self._times[: self._m], i
            )

    # ------------------------------------------------------------------ #

    def features(self) -> np.ndarray:
        """Current feature vector, shape ``(len(feature_set),)``.

        Zero observed adopters yield the all-zero vector — every feature
        is identically 0 for an empty prefix, stated here explicitly
        rather than left to downstream arithmetic.
        """
        out = np.zeros(len(self.feature_set), dtype=np.float64)
        m = self._m
        if m == 0:
            return out
        for idx, name in enumerate(self.feature_set):
            out[idx] = self._value(name, m)
        return out

    def _value(self, name: str, m: int) -> float:
        if name == "diverA":
            return self._side_a.diver(m)
        if name == "normA":
            return self._side_a.norm()
        if name == "maxA":
            return self._side_a.max()
        if name == "diverB":
            return self._side_b.diver(m)
        if name == "normB":
            return self._side_b.norm()
        if name == "maxB":
            return self._side_b.max()
        if name == "n_early":
            return float(m)
        tree = self._tree
        assert tree is not None
        if name == "depth":
            return float(tree.max_depth)
        if name == "breadth":
            return float(tree.max_breadth)
        if name == "sviral":
            return float(tree.sviral(m))
        raise ValueError(
            f"unknown feature {name!r}; valid: {EXTENDED_FEATURES}"
        )  # pragma: no cover - names validated at construction


def extract_features(
    model: EmbeddingModel,
    early: Cascade,
    feature_set: Sequence[str] = PAPER_FEATURES,
) -> np.ndarray:
    """Feature vector of one cascade's early adopters.

    Implemented as a replay of :class:`IncrementalFeatures` — the batch
    and streaming paths are literally the same code, which is what makes
    the serving tracker's features bit-identical to this function on
    every prefix.  An empty prefix returns the all-zero vector.

    Parameters
    ----------
    model:
        Trained embeddings.
    early:
        The early-adopter prefix of a cascade (e.g.
        ``cascade.prefix_by_time(t0 + window * 2 / 7)``).
    feature_set:
        Names from :data:`EXTENDED_FEATURES`; order defines the output
        layout.

    Returns
    -------
    numpy.ndarray of shape (len(feature_set),)
    """
    inc = IncrementalFeatures(model, feature_set)
    for v, t in zip(early.nodes, early.times):
        inc.update(int(v), float(t))
    return inc.features()


class FeatureExtractor:
    """Batch extraction over many cascades with a fixed feature set."""

    def __init__(
        self,
        model: EmbeddingModel,
        feature_set: Sequence[str] = PAPER_FEATURES,
    ) -> None:
        for name in feature_set:
            if name not in EXTENDED_FEATURES:
                raise ValueError(f"unknown feature {name!r}")
        self.model = model
        self.feature_set = tuple(feature_set)

    @property
    def n_features(self) -> int:
        return len(self.feature_set)

    def transform(self, prefixes: Sequence[Cascade]) -> np.ndarray:
        """(n_cascades × n_features) design matrix."""
        X = np.empty((len(prefixes), self.n_features), dtype=np.float64)
        for i, c in enumerate(prefixes):
            X[i] = extract_features(self.model, c, self.feature_set)
        return X
