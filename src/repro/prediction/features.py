"""Early-adopter feature extraction (Eq. 17–19), batch and streaming.

The features deliberately use only the *influence* vectors of the early
adopters — no topology — which is what lets the predictor work when the
propagation network is hidden (§V).  Selectivity-based analogues
(``diverB``/``normB``/``maxB``) and the raw early-adopter count are
provided as extensions; the paper's feature set is the default.

Streaming evaluation
--------------------
:class:`IncrementalFeatures` folds adoption events in one at a time —
``normA``/``maxA`` as running sums, ``diverA`` via an O(mK) new-adopter
distance update, the MAP-infector-tree statistics via appending to the
parent forest — instead of the O(m²K) recompute a batch call performs on
every prefix.  :func:`extract_features` *is* this class replayed over a
prefix, so the streamed and batch feature vectors are bit-identical on
every observed prefix by construction (the serving layer's parity
guarantee, property-tested in ``tests/property/test_prop_serving.py``).

A consequence worth stating: the canonical summation order of ``sumA``
is the *left fold in adoption order* (not numpy's pairwise ``sum``), and
``diverA`` is the max over per-adopter distance updates (not one Gram
matrix).  Both are mathematically the quantities of Eq. 17–19; only the
float rounding path is pinned down so that two implementations can agree
bit-for-bit.

Batched folding
---------------
:meth:`IncrementalFeatures.update_many` folds a *burst* of events for
one cascade in a handful of vectorized calls instead of one python
round-trip per event — the kernel the serving layer's
``FeatureStore.ingest_many`` drives.  Bit-identity with the scalar path
holds because every primitive is chosen to be *block-stable*:

* history dot products go through :func:`_hist_dots` (numpy's einsum
  core, whose per-element contraction over ``k`` is identical whether
  the output is a vector or a block — unlike BLAS, whose gemv and gemm
  kernels round differently);
* squared row norms go through :func:`_row_sq_norms`, the batched twin
  of :func:`_row_sq_norm` (same einsum core);
* the running ``sum`` is folded with a row-prepended ``np.cumsum``,
  which numpy evaluates as a strict sequential scan — exactly the
  per-event left fold;
* ``diver*``'s running max commutes with batching (max is exact).
"""

from __future__ import annotations

import threading
from typing import AbstractSet, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel

__all__ = [
    "PAPER_FEATURES",
    "EXTENDED_FEATURES",
    "extract_features",
    "FeatureExtractor",
    "IncrementalFeatures",
]

PAPER_FEATURES: Tuple[str, ...] = ("diverA", "normA", "maxA")
EXTENDED_FEATURES: Tuple[str, ...] = (
    "diverA",
    "normA",
    "maxA",
    "diverB",
    "normB",
    "maxB",
    "n_early",
    # structural features of the MAP infector tree of the early prefix
    # (the Cheng et al. family the paper cites as [21])
    "depth",
    "breadth",
    "sviral",
)

#: initial per-cascade buffer capacity (doubled on demand)
_INIT_CAPACITY = 8

#: max events folded per vectorized append; larger bursts run as
#: sequential sub-folds (bit-identical — see ``_append_many``).  128
#: keeps a ~100-event serving burst in a single fold (halving the
#: fixed per-fold cost vs 64) while the pair-distance temporaries
#: (``history × chunk`` doubles) still fit comfortably in L2.
_FOLD_CHUNK = 128

#: shared 0..chunk index ramp (read-only; sliced per fold)
_CHUNK_ARANGE = np.arange(_FOLD_CHUNK)

#: largest pair-matrix scratch retained between folds (in doubles);
#: pathological history×chunk shapes beyond this fall back to fresh
#: temporaries rather than pinning tens of megabytes per thread
_PAIR_SCRATCH_MAX = 1 << 20


class _FoldScratch(threading.local):
    """Reusable per-thread buffers for the vectorized fold temporaries.

    One fold fully writes and fully consumes its temporaries before
    returning, so every engine on a thread can share one set — the
    serving store tracks thousands of cascades and per-engine scratch
    would multiply, while per-fold ``np.empty`` calls put two
    ``history × chunk`` mallocs on the hot path.  Thread-locality keeps
    concurrent services from racing on the buffers.
    """

    def __init__(self) -> None:
        self.pair = np.empty(0)
        self.fold = np.empty((0, 0))

    def pair_views(self, end: int, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Two ``(end, j)`` work matrices (dot block, distance block)."""
        need = 2 * end * j
        if self.pair.shape[0] < need:
            self.pair = np.empty(need)
        half = end * j
        return (
            self.pair[:half].reshape(end, j),
            self.pair[half:need].reshape(end, j),
        )

    def fold_view(self, j: int, n_topics: int) -> np.ndarray:
        """A ``(j + 1, n_topics)`` matrix for the cumsum scan."""
        if self.fold.shape[0] < j + 1 or self.fold.shape[1] != n_topics:
            self.fold = np.empty((max(j + 1, _FOLD_CHUNK + 1), n_topics))
        return self.fold[: j + 1]


_scratch = _FoldScratch()


def _row_sq_norm(v: np.ndarray) -> float:
    """Squared Euclidean norm of one embedding row, the canonical way.

    Both the batch path and the incremental tracker compute ‖x‖² through
    this single call so the bits can never diverge.
    """
    return float(np.einsum("k,k->", v, v))


def _row_sq_norms(
    rows: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Squared norms of many rows at once, bit-identical per row to
    :func:`_row_sq_norm` (same einsum sum-of-products core, contraction
    over the same axis — the outer dimension only changes the stride
    walk, not the per-element arithmetic).  ``out`` only redirects where
    the identical results land."""
    if out is not None:
        return np.einsum("ik,ik->i", rows, rows, out=out)
    return np.einsum("ik,ik->i", rows, rows)


def _hist_dots(
    history: np.ndarray,
    new_rows: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dot products of every history row against every new row.

    ``(c, K) × (j, K) → (c, j)`` — THE canonical contraction of the
    ``diver*`` update.  Evaluated through numpy's einsum core rather
    than BLAS: einsum contracts over ``k`` with the same inner loop for
    any output shape, so one block call over ``j`` new rows produces
    bit-for-bit the columns a per-event vector call would (BLAS does
    not give that guarantee — its gemv and gemm micro-kernels accumulate
    in different orders).  ``out`` (a preallocated ``(c, j)`` buffer)
    only changes where the bits land, never what they are.
    """
    if out is not None:
        return np.einsum("ck,jk->cj", history, new_rows, out=out)
    return np.einsum("ck,jk->cj", history, new_rows)


class _SideState:
    """Incremental state for one embedding plane (A or B).

    Maintains what the requested features need and nothing more: the
    adopter rows + squared norms and the running max pairwise squared
    distance when ``diver*`` is wanted; the running left-fold sum when
    ``norm*``/``max*`` are.
    """

    __slots__ = (
        "need_diver",
        "need_sum",
        "V",
        "sq",
        "d2max",
        "vec_sum",
    )

    def __init__(self, n_topics: int, need_diver: bool, need_sum: bool) -> None:
        self.need_diver = need_diver
        self.need_sum = need_sum
        self.V: Optional[np.ndarray] = (
            np.empty((_INIT_CAPACITY, n_topics)) if need_diver else None
        )
        self.sq: Optional[np.ndarray] = (
            np.empty(_INIT_CAPACITY) if need_diver else None
        )
        self.d2max = float("-inf")
        self.vec_sum: Optional[np.ndarray] = (
            np.zeros(n_topics) if need_sum else None
        )

    def grow(self, capacity: int) -> None:
        if self.V is not None and self.sq is not None:
            V = np.empty((capacity, self.V.shape[1]))
            V[: self.V.shape[0]] = self.V
            self.V = V
            sq = np.empty(capacity)
            sq[: self.sq.shape[0]] = self.sq
            self.sq = sq

    def reset(self) -> None:
        """Forget all folded state but keep the grown buffers (the slot
        pool in the serving store recycles side states across cascade
        incarnations; re-admission must not re-allocate)."""
        self.d2max = float("-inf")
        if self.vec_sum is not None:
            self.vec_sum.fill(0.0)

    def append(self, i: int, row: np.ndarray) -> None:
        """Fold adopter *i*'s embedding row into the running state.

        The ``diver`` update is the O(mK) step: squared distances of the
        new adopter against every previous one via one :func:`_hist_dots`
        call, folded into the running max (max is order-independent, so
        the running fold equals the batch max bit-for-bit).
        """
        if self.V is not None and self.sq is not None:
            self.V[i] = row
            sq_new = _row_sq_norm(self.V[i])
            self.sq[i] = sq_new
            if i >= 1:
                dots = _hist_dots(self.V[:i], self.V[i : i + 1])[:, 0]
                d2 = self.sq[:i] + sq_new - 2.0 * dots
                self.d2max = max(self.d2max, float(d2.max()))
        if self.vec_sum is not None:
            # left fold in adoption order — the canonical summation
            self.vec_sum = self.vec_sum + row

    def append_many(self, i0: int, rows: np.ndarray) -> None:
        """Fold ``j`` adopters (positions ``i0 .. i0+j-1``) in a handful
        of vectorized calls, bit-identical to ``j`` :meth:`append` calls.

        * ``diver``: one :func:`_hist_dots` block over history + new
          rows; each column restricted to that adopter's strict
          predecessors (a pair ``(p, c)`` is valid iff ``p < i0 + c``),
          then one exact max fold.
        * ``sum``: the left fold is evaluated as a row-prepended
          ``np.cumsum`` — a strict sequential scan, so the final row
          carries exactly ``((sum + r0) + r1) + …``.
        """
        j = rows.shape[0]
        if j == 0:
            return
        if self.V is not None and self.sq is not None:
            end = i0 + j
            self.V[i0:end] = rows
            new_rows = self.V[i0:end]
            sq_new = _row_sq_norms(new_rows, out=self.sq[i0:end])
            if end >= 2:
                # work matrices from the shared scratch when they fit —
                # the two ``history × chunk`` temporaries are the only
                # mallocs left on this path
                if 2 * end * j <= _PAIR_SCRATCH_MAX:
                    dots, d2 = _scratch.pair_views(end, j)
                else:
                    dots, d2 = None, np.empty((end, j))
                dots = _hist_dots(self.V[:end], new_rows, out=dots)
                # (sq_p + sq_c) - 2·dot, grouped exactly as the scalar
                # append writes it, evaluated entirely in-place
                np.add(self.sq[:end, None], sq_new[None, :], out=d2)
                np.multiply(dots, 2.0, out=dots)
                np.subtract(d2, dots, out=d2)
                # A pair (p, c) is valid iff p strictly precedes c.  The
                # invalid region below the diagonal holds only *mirrors*
                # of valid entries — (p, c) with p > i0+c reappears as
                # the valid (i0+c, p-i0), and the mirrored dot/sum are
                # bitwise equal because float multiply-and-add commute
                # exactly.  So after striking the self-pair diagonal,
                # one contiguous full-matrix max equals the masked max
                # bit-for-bit, with no mask materialization.
                cols = _CHUNK_ARANGE[:j]
                d2[i0 + cols, cols] = float("-inf")
                self.d2max = max(self.d2max, float(d2.max()))
        if self.vec_sum is not None:
            fold = _scratch.fold_view(j, rows.shape[1])
            fold[0] = self.vec_sum
            fold[1:] = rows
            np.cumsum(fold, axis=0, out=fold)  # strict sequential scan
            self.vec_sum = fold[j].copy()

    # -- feature reads ------------------------------------------------- #

    def diver(self, m: int) -> float:
        """Max pairwise Euclidean distance (Eq. 17), 0 for < 2 adopters."""
        if m < 2:
            return 0.0
        return float(np.sqrt(max(self.d2max, 0.0)))

    def norm(self) -> float:
        assert self.vec_sum is not None
        return float(np.linalg.norm(self.vec_sum))

    def max(self) -> float:
        assert self.vec_sum is not None
        return float(self.vec_sum.max()) if self.vec_sum.size else 0.0


class _TreeState:
    """Incremental MAP infector forest + Cheng-et-al. structure stats.

    Parents only ever *append* under time-ordered arrival (a new adopter
    cannot change an earlier adopter's MAP parent — its strict
    predecessors are fixed), so depth/breadth are O(1) updates and the
    Wiener total is an O(m·depth) LCA sweep per event.  All quantities
    are integers accumulated exactly, so the running totals match the
    batch recompute bit-for-bit in any arrival order.
    """

    __slots__ = (
        "parents",
        "depths",
        "depth_counts",
        "max_depth",
        "max_breadth",
        "anc_sets",
        "sv_total",
        "track_sviral",
    )

    def __init__(self, track_sviral: bool) -> None:
        self.parents = np.empty(_INIT_CAPACITY, dtype=np.int64)
        self.depths = np.empty(_INIT_CAPACITY, dtype=np.int64)
        self.depth_counts: List[int] = []
        self.max_depth = 0
        self.max_breadth = 0
        #: per-position {ancestor position: distance}; -1 is the virtual
        #: origin every root hangs off (structural_virality's convention)
        self.anc_sets: List[Dict[int, int]] = []
        self.sv_total = 0.0
        self.track_sviral = track_sviral

    def grow(self, capacity: int) -> None:
        parents = np.empty(capacity, dtype=np.int64)
        parents[: self.parents.shape[0]] = self.parents
        self.parents = parents
        depths = np.empty(capacity, dtype=np.int64)
        depths[: self.depths.shape[0]] = self.depths
        self.depths = depths

    def reset(self) -> None:
        """Forget the forest but keep the grown parent/depth buffers."""
        self.depth_counts.clear()
        self.max_depth = 0
        self.max_breadth = 0
        self.anc_sets.clear()
        self.sv_total = 0.0

    def append(
        self,
        model: EmbeddingModel,
        nodes: np.ndarray,
        times: np.ndarray,
        i: int,
    ) -> None:
        from repro.cascades.trees import map_parent

        start = int(np.searchsorted(times, times[i], side="left"))
        p = map_parent(model, nodes, times, i, start)
        self.parents[i] = p
        d = 0 if p < 0 else int(self.depths[p]) + 1
        self.depths[i] = d
        if d >= len(self.depth_counts):
            self.depth_counts.append(0)
        self.depth_counts[d] += 1
        self.max_depth = max(self.max_depth, d)
        self.max_breadth = max(self.max_breadth, self.depth_counts[d])
        if not self.track_sviral:
            return
        chain = [i]
        while self.parents[chain[-1]] >= 0:
            chain.append(int(self.parents[chain[-1]]))
        chain.append(-1)  # virtual origin above every root
        for j in range(i):
            set_j = self.anc_sets[j]
            for d_i, n in enumerate(chain):
                if n in set_j:
                    self.sv_total += set_j[n] + d_i  # ints: exact in any order
                    break
        self.anc_sets.append({n: d for d, n in enumerate(chain)})

    def sviral(self, m: int) -> float:
        """Mean pairwise tree distance (Wiener index), 0 for < 2 adopters."""
        if m < 2:
            return 0.0
        return self.sv_total / (m * (m - 1) // 2)


class IncrementalFeatures:
    """Streaming evaluator of one cascade's early-adopter features.

    Feed adoption events through :meth:`update`; read the current
    feature vector with :meth:`features`.  Designed for the serving
    layer's per-cascade trackers, and *the* definition of the feature
    math: :func:`extract_features` replays this class over a prefix, so
    stream and batch agree bit-for-bit on every observed prefix.

    Parameters
    ----------
    model:
        Trained embeddings.  Swap with :meth:`rebind` (replays the
        observed events under the new model).
    feature_set:
        Names from :data:`EXTENDED_FEATURES`; order defines the output
        layout.

    Notes
    -----
    * Events may arrive out of time order; the tracker then rebuilds its
      state over the stable time-sorted event log — the same ordering
      :class:`~repro.cascades.types.Cascade` applies — so the result is
      always the feature vector of ``Cascade(nodes_seen, times_seen)``.
      In-order (and tied-time) arrivals take the cheap append path.
    * A node adopting twice is ignored (:meth:`update` returns ``False``)
      — cascades are SI processes, re-deliveries are expected in an
      at-least-once event stream.
    * Zero observed adopters yield a well-defined all-zero vector.
    """

    def __init__(
        self,
        model: EmbeddingModel,
        feature_set: Sequence[str] = PAPER_FEATURES,
    ) -> None:
        for name in feature_set:
            if name not in EXTENDED_FEATURES:
                raise ValueError(
                    f"unknown feature {name!r}; valid: {EXTENDED_FEATURES}"
                )
        self.model = model
        self.feature_set = tuple(feature_set)
        fs = frozenset(self.feature_set)
        self._need_a = ("diverA" in fs, bool(fs & {"normA", "maxA"}))
        self._need_b = ("diverB" in fs, bool(fs & {"normB", "maxB"}))
        self._need_tree = bool(fs & {"depth", "breadth", "sviral"})
        self._need_sviral = "sviral" in fs
        #: arrival-order event log; the source of truth for rebuilds.
        #: Two parallel lists, not a list of tuples: burst appends are
        #: then two C-level ``extend`` calls with no tuple boxing.
        self._event_nodes: List[int] = []
        self._event_times: List[float] = []
        self._node_set: Set[int] = set()
        self._init_derived()

    # ------------------------------------------------------------------ #

    def _init_derived(self) -> None:
        """(Re-)zero the derived state, recycling grown buffers.

        Buffers are only reallocated when absent or when the embedding
        dimension changed; otherwise the existing capacity is kept so
        rebuilds and slot reuse in the serving store allocate nothing.
        Every retained buffer is fully rewritten before it is read, so
        stale data cannot leak between incarnations.
        """
        K = self.model.n_topics
        self._m = 0
        if getattr(self, "_buf_topics", None) == K:
            self._side_a.reset()
            self._side_b.reset()
            if self._tree is not None:
                self._tree.reset()
        else:
            self._capacity = _INIT_CAPACITY
            self._nodes = np.empty(_INIT_CAPACITY, dtype=np.int64)
            self._times = np.empty(_INIT_CAPACITY, dtype=np.float64)
            self._side_a = _SideState(K, *self._need_a)
            self._side_b = _SideState(K, *self._need_b)
            self._tree = (
                _TreeState(self._need_sviral) if self._need_tree else None
            )
            self._buf_topics = K

    def _ensure_capacity(self, n: int) -> None:
        if n <= self._capacity:
            return
        capacity = self._capacity
        while capacity < n:
            capacity *= 2
        nodes = np.empty(capacity, dtype=np.int64)
        nodes[: self._m] = self._nodes[: self._m]
        self._nodes = nodes
        times = np.empty(capacity, dtype=np.float64)
        times[: self._m] = self._times[: self._m]
        self._times = times
        self._side_a.grow(capacity)
        self._side_b.grow(capacity)
        if self._tree is not None:
            self._tree.grow(capacity)
        self._capacity = capacity

    # ------------------------------------------------------------------ #

    @property
    def n_events(self) -> int:
        """Number of distinct adopters observed so far."""
        return self._m

    @property
    def last_time(self) -> float:
        """Latest adoption time observed (-inf before any event)."""
        return float(self._times[self._m - 1]) if self._m else float("-inf")

    def observed(self) -> Cascade:
        """The observed prefix as a :class:`Cascade` (stable time order)."""
        if not self._event_nodes:
            return Cascade([], [])
        return Cascade(list(self._event_nodes), list(self._event_times))

    # ------------------------------------------------------------------ #

    def update(self, node: int, t: float) -> bool:
        """Observe one adoption event; ``False`` if the node is a re-adopt.

        In-order arrivals (``t`` at or after the latest observed time)
        take the O(mK) append path; an out-of-order arrival triggers a
        rebuild over the stable time-sorted log.
        """
        node = int(node)
        t = float(t)
        if not np.isfinite(t):
            raise ValueError("adoption times must be finite")
        if node < 0 or node >= self.model.n_nodes:
            raise ValueError(
                f"node {node} outside the model universe of "
                f"{self.model.n_nodes} nodes"
            )
        if node in self._node_set:
            return False
        self._event_nodes.append(node)
        self._event_times.append(t)
        self._node_set.add(node)
        if self._m and t < float(self._times[self._m - 1]):
            self._rebuild()
        else:
            self._append(node, t)
        return True

    def update_many(
        self,
        nodes: Sequence[int],
        times: Sequence[float],
        validate: bool = True,
        assume_sorted: bool = False,
    ) -> int:
        """Fold a burst of adoption events in; returns how many applied.

        The batched twin of :meth:`update`: duplicates are dropped in
        arrival order (against prior state *and* within the burst), the
        surviving events take the vectorized append path when they are
        time-ordered, and any out-of-order arrival falls back to one
        rebuild over the stable time-sorted log — so the resulting state
        is bit-identical to feeding the same events through
        :meth:`update` one at a time.

        Unlike the scalar path, the whole burst is validated before any
        state changes (an invalid node or non-finite time raises with
        the engine untouched).  A caller that has already validated the
        burst — the serving store checks a whole multi-cascade burst
        atomically before queueing per-cascade folds — passes
        ``validate=False`` to skip the redundant reductions.

        ``assume_sorted=True`` is a trusted promise that *times* is
        non-decreasing within the burst (the store checks its whole
        multi-cascade burst once; every gathered subsequence of a
        sorted firehose inherits the ordering).  Only the intra-burst
        scan is skipped — the boundary against the cascade's last
        folded event is still checked, so a sorted burst arriving
        before earlier state still takes the rebuild path correctly.
        """
        n = len(nodes)
        if n != len(times):
            raise ValueError("nodes and times must have the same length")
        if n == 0:
            return 0
        node_arr = np.asarray(nodes, dtype=np.int64)
        time_arr = np.asarray(times, dtype=np.float64)
        if validate:
            if not np.all(np.isfinite(time_arr)):
                raise ValueError("adoption times must be finite")
            if node_arr.size and (
                int(node_arr.min()) < 0
                or int(node_arr.max()) >= self.model.n_nodes
            ):
                raise ValueError(
                    f"burst contains nodes outside the model universe of "
                    f"{self.model.n_nodes} nodes"
                )
        # -- duplicate filtering, arrival order --------------------------- #
        # native ints via tolist(): the set probes and the event log
        # stay off numpy scalar extraction.  One blind set-union detects
        # the common no-repeat case: n fresh nodes grow the adopter set
        # by exactly n.  On a repeat the union is repaired from the
        # event log (the adopter set is always exactly its node set).
        seen = self._node_set
        node_list = node_arr.tolist()
        before = len(seen)
        seen.update(node_list)
        if len(seen) - before == n:
            j = n  # no repeats anywhere — keep the whole burst
        else:
            # rare path: drop repeats in arrival order (against prior
            # state and within the burst)
            seen.clear()
            seen.update(self._event_nodes)
            keep: List[int] = []
            for i, node in enumerate(node_list):
                if node in seen:
                    continue
                seen.add(node)
                keep.append(i)
            if not keep:
                return 0
            j = len(keep)
            if j != n:
                node_arr = node_arr[keep]
                time_arr = time_arr[keep]
                node_list = [node_list[i] for i in keep]
        self._event_nodes.extend(node_list)
        self._event_times.extend(time_arr.tolist())
        in_order = (
            assume_sorted or bool((time_arr[1:] >= time_arr[:-1]).all())
        ) and (
            self._m == 0 or float(time_arr[0]) >= float(self._times[self._m - 1])
        )
        if not in_order:
            self._rebuild()  # state := fold over the stable-sorted log
            return j
        self._append_many(node_arr, time_arr)
        return j

    def _append_many(self, nodes: np.ndarray, times: np.ndarray) -> None:
        """Vectorized in-order append of ``j`` pre-filtered events."""
        j = nodes.shape[0]
        if j > _FOLD_CHUNK:
            # Split a large burst into sequential sub-folds.  Bit-safe:
            # each chunk is itself a full in-order burst, and every fold
            # (running max, cumulative sum, MAP-parent recurrence)
            # accumulates left-to-right in the same order either way.
            # This bounds the pairwise-distance temporaries and skips
            # most of the invalid upper triangle one giant fold would
            # compute and mask away.
            for c0 in range(0, j, _FOLD_CHUNK):
                self._append_many(
                    nodes[c0 : c0 + _FOLD_CHUNK],
                    times[c0 : c0 + _FOLD_CHUNK],
                )
            return
        i0 = self._m
        end = i0 + j
        self._ensure_capacity(end)
        self._nodes[i0:end] = nodes
        self._times[i0:end] = times
        self._m = end
        if self._side_a.need_diver or self._side_a.need_sum:
            self._side_a.append_many(i0, self.model.A[nodes])
        if self._side_b.need_diver or self._side_b.need_sum:
            self._side_b.append_many(i0, self.model.B[nodes])
        if self._tree is not None:
            # the MAP-parent recurrence is inherently sequential (each
            # event's parent search sees every earlier event)
            for i in range(i0, end):
                self._tree.append(
                    self.model, self._nodes[: i + 1], self._times[: i + 1], i
                )

    def has_node(self, node: int) -> bool:
        """True when *node* already adopted in the observed prefix."""
        return int(node) in self._node_set

    @property
    def adopters(self) -> AbstractSet[int]:
        """Live view of the adopter set (do not mutate).

        Exists so burst ingest can duplicate-check with a set probe per
        event instead of a method call; the view tracks every update.
        """
        return self._node_set

    def rebind(self, model: EmbeddingModel) -> None:
        """Swap the embedding model and replay the event log under it."""
        if self._node_set and max(self._node_set) >= model.n_nodes:
            raise ValueError(
                "new model's node universe does not cover the observed nodes"
            )
        self.model = model
        self._rebuild()

    def reset(self, model: Optional[EmbeddingModel] = None) -> None:
        """Forget the observed prefix (optionally swapping the model),
        recycling the grown buffers — the serving store's slot-reuse
        primitive: re-admitting a cascade after eviction must not
        re-allocate its engine."""
        if model is not None:
            self.model = model
        self._event_nodes.clear()
        self._event_times.clear()
        self._node_set.clear()
        self._init_derived()

    def _rebuild(self) -> None:
        if not self._event_nodes:
            self._init_derived()
            return
        nodes = np.asarray(self._event_nodes, dtype=np.int64)
        times = np.asarray(self._event_times, dtype=np.float64)
        self._init_derived()
        order = np.argsort(times, kind="stable")  # Cascade's ordering
        # the sorted log is in-order by construction: replay it as one
        # batched fold (bit-identical to scalar appends by the
        # update_many parity invariant)
        self._append_many(nodes[order], times[order])

    def _append(self, node: int, t: float) -> None:
        i = self._m
        self._ensure_capacity(i + 1)
        self._nodes[i] = node
        self._times[i] = t
        self._m = i + 1
        if self._side_a.need_diver or self._side_a.need_sum:
            self._side_a.append(i, self.model.A[node])
        if self._side_b.need_diver or self._side_b.need_sum:
            self._side_b.append(i, self.model.B[node])
        if self._tree is not None:
            self._tree.append(
                self.model, self._nodes[: self._m], self._times[: self._m], i
            )

    # ------------------------------------------------------------------ #

    def features(self) -> np.ndarray:
        """Current feature vector, shape ``(len(feature_set),)``.

        Zero observed adopters yield the all-zero vector — every feature
        is identically 0 for an empty prefix, stated here explicitly
        rather than left to downstream arithmetic.
        """
        out = np.empty(len(self.feature_set), dtype=np.float64)
        self.features_into(out)
        return out

    def features_into(self, out: np.ndarray) -> None:
        """Write the current feature vector into *out* (no allocation).

        This is what lets the serving store's flush path refresh a row
        of its pooled feature-cache matrix in place.
        """
        m = self._m
        if m == 0:
            out[: len(self.feature_set)] = 0.0
            return
        for idx, name in enumerate(self.feature_set):
            out[idx] = self._value(name, m)

    def _value(self, name: str, m: int) -> float:
        if name == "diverA":
            return self._side_a.diver(m)
        if name == "normA":
            return self._side_a.norm()
        if name == "maxA":
            return self._side_a.max()
        if name == "diverB":
            return self._side_b.diver(m)
        if name == "normB":
            return self._side_b.norm()
        if name == "maxB":
            return self._side_b.max()
        if name == "n_early":
            return float(m)
        tree = self._tree
        assert tree is not None
        if name == "depth":
            return float(tree.max_depth)
        if name == "breadth":
            return float(tree.max_breadth)
        if name == "sviral":
            return float(tree.sviral(m))
        raise ValueError(
            f"unknown feature {name!r}; valid: {EXTENDED_FEATURES}"
        )  # pragma: no cover - names validated at construction


def extract_features(
    model: EmbeddingModel,
    early: Cascade,
    feature_set: Sequence[str] = PAPER_FEATURES,
) -> np.ndarray:
    """Feature vector of one cascade's early adopters.

    Implemented as a replay of :class:`IncrementalFeatures` — the batch
    and streaming paths are literally the same code, which is what makes
    the serving tracker's features bit-identical to this function on
    every prefix.  An empty prefix returns the all-zero vector.

    Parameters
    ----------
    model:
        Trained embeddings.
    early:
        The early-adopter prefix of a cascade (e.g.
        ``cascade.prefix_by_time(t0 + window * 2 / 7)``).
    feature_set:
        Names from :data:`EXTENDED_FEATURES`; order defines the output
        layout.

    Returns
    -------
    numpy.ndarray of shape (len(feature_set),)
    """
    inc = IncrementalFeatures(model, feature_set)
    for v, t in zip(early.nodes, early.times):
        inc.update(int(v), float(t))
    return inc.features()


class FeatureExtractor:
    """Batch extraction over many cascades with a fixed feature set."""

    def __init__(
        self,
        model: EmbeddingModel,
        feature_set: Sequence[str] = PAPER_FEATURES,
    ) -> None:
        for name in feature_set:
            if name not in EXTENDED_FEATURES:
                raise ValueError(f"unknown feature {name!r}")
        self.model = model
        self.feature_set = tuple(feature_set)

    @property
    def n_features(self) -> int:
        return len(self.feature_set)

    def transform(self, prefixes: Sequence[Cascade]) -> np.ndarray:
        """(n_cascades × n_features) design matrix."""
        X = np.empty((len(prefixes), self.n_features), dtype=np.float64)
        for i, c in enumerate(prefixes):
            X[i] = extract_features(self.model, c, self.feature_set)
        return X
