"""Early-adopter feature extraction (Eq. 17–19).

The features deliberately use only the *influence* vectors of the early
adopters — no topology — which is what lets the predictor work when the
propagation network is hidden (§V).  Selectivity-based analogues
(``diverB``/``normB``/``maxB``) and the raw early-adopter count are
provided as extensions; the paper's feature set is the default.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.cascades.types import Cascade
from repro.embedding.model import EmbeddingModel

__all__ = ["PAPER_FEATURES", "EXTENDED_FEATURES", "extract_features", "FeatureExtractor"]

PAPER_FEATURES: Tuple[str, ...] = ("diverA", "normA", "maxA")
EXTENDED_FEATURES: Tuple[str, ...] = (
    "diverA",
    "normA",
    "maxA",
    "diverB",
    "normB",
    "maxB",
    "n_early",
    # structural features of the MAP infector tree of the early prefix
    # (the Cheng et al. family the paper cites as [21])
    "depth",
    "breadth",
    "sviral",
)


def _diver(vectors: np.ndarray) -> float:
    """Max pairwise Euclidean distance (Eq. 17), 0 for < 2 adopters.

    Computed with the Gram-matrix identity ‖x−y‖² = ‖x‖² + ‖y‖² − 2x·y,
    O(m²K) without a Python pair loop.
    """
    m = vectors.shape[0]
    if m < 2:
        return 0.0
    sq = np.einsum("ik,ik->i", vectors, vectors)
    gram = vectors @ vectors.T
    d2 = sq[:, None] + sq[None, :] - 2.0 * gram
    return float(np.sqrt(max(float(d2.max()), 0.0)))


def extract_features(
    model: EmbeddingModel,
    early: Cascade,
    feature_set: Sequence[str] = PAPER_FEATURES,
) -> np.ndarray:
    """Feature vector of one cascade's early adopters.

    Parameters
    ----------
    model:
        Trained embeddings.
    early:
        The early-adopter prefix of a cascade (e.g.
        ``cascade.prefix_by_time(t0 + window * 2 / 7)``).
    feature_set:
        Names from :data:`EXTENDED_FEATURES`; order defines the output
        layout.

    Returns
    -------
    numpy.ndarray of shape (len(feature_set),)
    """
    nodes = early.nodes
    A = model.A[nodes] if nodes.size else np.zeros((0, model.n_topics))
    B = model.B[nodes] if nodes.size else np.zeros((0, model.n_topics))
    sumA = A.sum(axis=0)
    sumB = B.sum(axis=0)

    _tree_cache: dict = {}

    def _parents():
        if "p" not in _tree_cache:
            from repro.cascades.trees import map_infector_tree

            _tree_cache["p"] = map_infector_tree(model, early)
        return _tree_cache["p"]

    def _tree_stat(fn):
        from repro.cascades import trees

        return float(getattr(trees, fn)(_parents()))

    values = {
        "diverA": lambda: _diver(A),
        "normA": lambda: float(np.linalg.norm(sumA)),
        "maxA": lambda: float(sumA.max()) if sumA.size else 0.0,
        "diverB": lambda: _diver(B),
        "normB": lambda: float(np.linalg.norm(sumB)),
        "maxB": lambda: float(sumB.max()) if sumB.size else 0.0,
        "n_early": lambda: float(nodes.size),
        "depth": lambda: _tree_stat("tree_depth"),
        "breadth": lambda: _tree_stat("max_breadth"),
        "sviral": lambda: _tree_stat("structural_virality"),
    }
    out = np.empty(len(feature_set), dtype=np.float64)
    for i, name in enumerate(feature_set):
        if name not in values:
            raise ValueError(f"unknown feature {name!r}; valid: {EXTENDED_FEATURES}")
        out[i] = values[name]()
    return out


class FeatureExtractor:
    """Batch extraction over many cascades with a fixed feature set."""

    def __init__(
        self,
        model: EmbeddingModel,
        feature_set: Sequence[str] = PAPER_FEATURES,
    ) -> None:
        for name in feature_set:
            if name not in EXTENDED_FEATURES:
                raise ValueError(f"unknown feature {name!r}")
        self.model = model
        self.feature_set = tuple(feature_set)

    @property
    def n_features(self) -> int:
        return len(self.feature_set)

    def transform(self, prefixes: Sequence[Cascade]) -> np.ndarray:
        """(n_cascades × n_features) design matrix."""
        X = np.empty((len(prefixes), self.n_features), dtype=np.float64)
        for i, c in enumerate(prefixes):
            X[i] = extract_features(self.model, c, self.feature_set)
        return X
