"""K-fold cross-validation (the paper evaluates F1 with 10 folds)."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.prediction.metrics import f1_score
from repro.utils.rng import SeedLike, as_generator

__all__ = ["kfold_indices", "cross_val_f1"]


def kfold_indices(
    n: int,
    k: int = 10,
    stratify: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Return *k* ``(train_idx, test_idx)`` splits of ``range(n)``.

    With *stratify* (a ±1 label array), each class is distributed evenly
    across folds — important here because high size thresholds make
    positives rare and an unstratified fold can end up positive-free.
    """
    if not (2 <= k <= max(n, 2)):
        raise ValueError(f"k must be in [2, n], got k={k}, n={n}")
    rng = as_generator(seed)
    fold_of = np.empty(n, dtype=np.int64)
    if stratify is None:
        perm = rng.permutation(n)
        fold_of[perm] = np.arange(n) % k
    else:
        stratify = np.asarray(stratify)
        if stratify.shape != (n,):
            raise ValueError("stratify must have length n")
        for cls in np.unique(stratify):
            idx = np.flatnonzero(stratify == cls)
            perm = idx[rng.permutation(idx.size)]
            fold_of[perm] = np.arange(idx.size) % k
    splits = []
    for f in range(k):
        test = np.flatnonzero(fold_of == f)
        train = np.flatnonzero(fold_of != f)
        splits.append((train, test))
    return splits


def cross_val_f1(
    make_model: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 10,
    seed: SeedLike = None,
    standardize: bool = True,
) -> float:
    """Mean F1 over *k* stratified folds.

    ``make_model()`` must return a fresh estimator with ``fit(X, y)`` and
    ``predict(X)``.  Features are standardized with the *training* fold's
    mean/std (no test leakage).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    rng = as_generator(seed)
    scores = []
    for train, test in kfold_indices(len(y), k=k, stratify=y, seed=rng):
        Xtr, Xte = X[train], X[test]
        if standardize:
            mu = Xtr.mean(axis=0)
            sd = Xtr.std(axis=0)
            sd[sd == 0] = 1.0
            Xtr = (Xtr - mu) / sd
            Xte = (Xte - mu) / sd
        if np.unique(y[train]).size < 2:
            scores.append(0.0)  # degenerate fold: nothing to learn
            continue
        model = make_model()
        model.fit(Xtr, y[train])
        scores.append(f1_score(y[test], model.predict(Xte)))
    return float(np.mean(scores))
