"""Linear soft-margin SVM trained with the Pegasos primal solver.

The paper deliberately uses "a simple classifier ... with linear kernel" so
the features carry the predictive weight; we implement it from scratch.
Pegasos (Shalev-Shwartz et al., 2007) minimizes

.. math::

    \\frac{\\lambda}{2} \\lVert w \\rVert^2
    + \\frac{1}{n} \\sum_i c_{y_i} \\max(0, 1 - y_i (w \\cdot x_i + b))

by stochastic sub-gradient steps with learning rate ``1/(λ t)``.  Class
weights ``c_y`` counteract the label imbalance the paper notes at high
size thresholds ("a high threshold makes the prediction problem
challenging because the samples in two classes are unbalanced").
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator

__all__ = ["LinearSVM"]


class LinearSVM:
    """Binary linear SVM; labels are {-1, +1}.

    Parameters
    ----------
    lam:
        L2 regularization strength λ.
    n_epochs:
        Passes over the data.
    class_weight:
        ``None`` (all ones) or ``"balanced"`` (inverse class frequency) or
        an explicit ``{-1: w, +1: w}`` dict.
    fit_intercept:
        Learn an unregularized bias term.
    seed:
        RNG for the sampling order.
    """

    def __init__(
        self,
        lam: float = 1e-3,
        n_epochs: int = 30,
        class_weight: Optional[object] = "balanced",
        fit_intercept: bool = True,
        seed: SeedLike = None,
    ) -> None:
        if lam <= 0:
            raise ValueError("lam must be positive")
        if n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        self.lam = float(lam)
        self.n_epochs = int(n_epochs)
        self.class_weight = class_weight
        self.fit_intercept = bool(fit_intercept)
        self.seed = seed
        self.w: Optional[np.ndarray] = None
        self.b: float = 0.0

    # ------------------------------------------------------------------ #

    def _resolve_weights(self, y: np.ndarray) -> Dict[int, float]:
        if self.class_weight is None:
            return {-1: 1.0, 1: 1.0}
        if self.class_weight == "balanced":
            n = y.size
            n_pos = int(np.sum(y == 1))
            n_neg = n - n_pos
            if n_pos == 0 or n_neg == 0:
                return {-1: 1.0, 1: 1.0}
            return {-1: n / (2.0 * n_neg), 1: n / (2.0 * n_pos)}
        if isinstance(self.class_weight, dict):
            return {-1: float(self.class_weight[-1]), 1: float(self.class_weight[1])}
        raise ValueError(f"bad class_weight {self.class_weight!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """Train on (n, d) features and ±1 labels; returns self."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, d) and y must be (n,)")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be -1 or +1")
        n, d = X.shape
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = as_generator(self.seed)
        cw = self._resolve_weights(y)
        sample_w = np.where(y > 0, cw[1], cw[-1])

        # Fold the intercept into a (lightly regularized) constant column —
        # an unregularized bias under Pegasos' 1/(λt) schedule blows up on
        # the first steps, where η is enormous.
        if self.fit_intercept:
            Xa = np.hstack([X, np.ones((n, 1))])
        else:
            Xa = X
        w = np.zeros(Xa.shape[1])
        radius = 1.0 / np.sqrt(self.lam)  # Pegasos feasible-ball radius
        t = 0
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for i in order:
                t += 1
                eta = 1.0 / (self.lam * t)
                margin = y[i] * (Xa[i] @ w)
                w *= 1.0 - eta * self.lam
                if margin < 1.0:
                    w += (eta * sample_w[i] * y[i]) * Xa[i]
                # Optional projection step of the original algorithm:
                # keeps the early huge-η iterations from overshooting.
                norm = float(np.linalg.norm(w))
                if norm > radius:
                    w *= radius / norm
        if self.fit_intercept:
            self.w = w[:-1]
            self.b = float(w[-1])
        else:
            self.w = w
            self.b = 0.0
        return self

    # ------------------------------------------------------------------ #

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margins ``X @ w + b``.

        Computed with einsum rather than BLAS gemv: einsum's reduction
        order per row is independent of the batch's row count, so a
        cascade's margin is bit-identical whether it is scored alone or
        inside any batch — the serving tier's single-vs-batched parity
        rests on this.
        """
        if self.w is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return np.einsum("ik,k->i", X, self.w) + self.b

    def predict(self, X: np.ndarray) -> np.ndarray:
        """±1 labels (0 margin counts as +1)."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1).astype(np.int64)
