"""Self-exciting point-process size prediction (the §V "other category").

§V contrasts two families of virality predictors: feature-based models
(the paper's choice) and "stochastic process approaches which simulate
the progress of information dissemination as point process", citing
SEISMIC (Zhao et al., KDD 2015).  This module implements a SEISMIC-style
baseline so the two families can be compared within one harness.

Model: after the seed, events arrive as a Hawkes process with an
exponential memory kernel ``φ(τ) = ω e^{-ωτ}`` and branching factor *p*
(expected offspring per event).  Given the ``k`` events observed in
``[0, T]``, the MLE of the branching factor is in closed form,

.. math:: \\hat p = (k - 1) / \\sum_j (1 - e^{-ω (T - t_j)}),

(triggered events over realized exposure), and the expected final size
follows Galton–Watson accounting: every observed event still carries
``\\hat p · e^{-ω(T - t_j)}`` expected *future* children, each future
event spawns ``\\hat p`` more, so

.. math:: \\hat N_∞ = k + \\frac{\\hat p \\sum_j e^{-ω (T - t_j)}}{1 - \\hat p}.

Unlike the embedding features, this baseline uses only *timestamps* —
who adopted is ignored — which is exactly the trade-off the paper
discusses: point processes need no topology at all, feature models
exploit (inferred) structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cascades.types import Cascade, CascadeSet
from repro.utils.validation import check_positive

__all__ = ["SelfExcitingSizePredictor"]


@dataclass(frozen=True)
class SelfExcitingSizePredictor:
    """SEISMIC-style final-size estimator from early event times.

    Parameters
    ----------
    omega:
        Memory-kernel decay rate (1/time units of the corpus).
    max_branching:
        Supercritical guard: estimated branching factors are clipped just
        below 1 so the geometric series stays finite (SEISMIC applies the
        same kind of ceiling).
    """

    omega: float = 5.0
    max_branching: float = 0.95

    def __post_init__(self) -> None:
        check_positive(self.omega, "omega")
        if not (0 < self.max_branching < 1):
            raise ValueError("max_branching must lie in (0, 1)")

    # ------------------------------------------------------------------ #

    def branching_factor(self, early: Cascade, t_obs: float) -> float:
        """Closed-form MLE of the branching factor on the observed prefix."""
        k = early.size
        if k <= 1:
            return 0.0
        t0 = float(early.times[0])
        rel = early.times - t0
        horizon = t_obs - t0
        if horizon <= 0:
            return 0.0
        exposure = float(np.sum(1.0 - np.exp(-self.omega * (horizon - rel))))
        if exposure <= 0:
            return 0.0
        return min((k - 1) / exposure, self.max_branching)

    def predict_final_size(self, early: Cascade, t_obs: float) -> float:
        """Expected final event count given the prefix observed by *t_obs*."""
        k = early.size
        if k == 0:
            return 0.0
        p = self.branching_factor(early, t_obs)
        if p <= 0.0:
            return float(k)
        t0 = float(early.times[0])
        rel = early.times - t0
        horizon = t_obs - t0
        pending = p * float(np.sum(np.exp(-self.omega * (horizon - rel))))
        return float(k + pending / (1.0 - p))

    # ------------------------------------------------------------------ #

    def predict_sizes(
        self,
        cascades: CascadeSet,
        early_fraction: float,
        window: float,
    ) -> np.ndarray:
        """Vector of final-size estimates using each cascade's early prefix."""
        if not (0 < early_fraction < 1):
            raise ValueError("early_fraction must lie in (0, 1)")
        check_positive(window, "window")
        out = np.empty(len(cascades))
        for i, c in enumerate(cascades):
            if c.size == 0:
                out[i] = 0.0
                continue
            t_obs = float(c.times[0]) + early_fraction * window
            out[i] = self.predict_final_size(c.prefix_by_time(t_obs), t_obs)
        return out

    def classify(
        self,
        cascades: CascadeSet,
        threshold: int,
        early_fraction: float,
        window: float,
    ) -> np.ndarray:
        """±1 virality labels: +1 iff the predicted final size ≥ threshold."""
        est = self.predict_sizes(cascades, early_fraction, window)
        return np.where(est >= threshold, 1, -1).astype(np.int64)
