"""End-to-end virality prediction (Fig. 5 framework; Figs. 9 & 12 curves).

Protocol (§VI-A): the first *k* cascades train the embeddings; for each
held-out cascade the infections inside the first ``early_fraction`` of the
observation window (2/7 in the paper) form the early-adopter prefix, the
remaining infections are hidden.  Features of the prefix predict whether
the *final* size exceeds a threshold; F1 is estimated by 10-fold
stratified cross-validation, swept across thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cascades.types import Cascade, CascadeSet
from repro.embedding.model import EmbeddingModel
from repro.prediction.crossval import cross_val_f1
from repro.prediction.features import PAPER_FEATURES, FeatureExtractor
from repro.prediction.svm import LinearSVM
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_fraction

__all__ = [
    "PredictionDataset",
    "build_dataset",
    "ViralityPredictor",
    "ThresholdSweepResult",
    "threshold_sweep",
]


@dataclass
class PredictionDataset:
    """Features + final sizes for a set of test cascades."""

    X: np.ndarray  # (n, d) early-adopter features
    final_sizes: np.ndarray  # (n,) ground-truth final sizes
    feature_names: tuple

    def labels(self, threshold: int) -> np.ndarray:
        """±1 labels: +1 iff the final size is >= *threshold*."""
        return np.where(self.final_sizes >= threshold, 1, -1).astype(np.int64)

    def __len__(self) -> int:
        return int(self.final_sizes.size)


def build_dataset(
    model: EmbeddingModel,
    cascades: CascadeSet,
    early_fraction: float = 2.0 / 7.0,
    window: Optional[float] = None,
    feature_set: Sequence[str] = PAPER_FEATURES,
) -> PredictionDataset:
    """Extract early-adopter features and final sizes from *cascades*.

    Parameters
    ----------
    early_fraction:
        Fraction of the observation window whose infections are revealed
        (paper: 2/7).
    window:
        Observation-window length; if ``None``, each cascade's own span is
        used (suitable when corpora were simulated with a known window,
        pass it explicitly for exact parity with the paper).
    """
    check_fraction(early_fraction, "early_fraction")
    extractor = FeatureExtractor(model, feature_set)
    prefixes: List[Cascade] = []
    sizes = np.empty(len(cascades), dtype=np.int64)
    for i, c in enumerate(cascades):
        sizes[i] = c.size
        if c.size == 0:
            prefixes.append(c)
            continue
        span = window if window is not None else (c.times[-1] - c.times[0])
        cutoff = c.times[0] + early_fraction * span
        prefixes.append(c.prefix_by_time(cutoff))
    X = extractor.transform(prefixes)
    return PredictionDataset(X=X, final_sizes=sizes, feature_names=extractor.feature_set)


class ViralityPredictor:
    """Threshold classifier over early-adopter features.

    A thin, sklearn-ish wrapper: standardizes features, fits the linear
    SVM, predicts ±1 virality labels.
    """

    def __init__(
        self,
        threshold: int,
        lam: float = 1e-3,
        n_epochs: int = 30,
        seed: SeedLike = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self._svm = LinearSVM(lam=lam, n_epochs=n_epochs, seed=seed)
        self._mu: Optional[np.ndarray] = None
        self._sd: Optional[np.ndarray] = None

    def fit(self, dataset: PredictionDataset) -> "ViralityPredictor":
        y = dataset.labels(self.threshold)
        if np.unique(y).size < 2:
            raise ValueError(
                f"threshold {self.threshold} leaves a single class; "
                "choose a threshold inside the observed size range"
            )
        X = np.asarray(dataset.X, dtype=np.float64)
        self._mu = X.mean(axis=0)
        self._sd = X.std(axis=0)
        self._sd[self._sd == 0] = 1.0
        self._svm.fit((X - self._mu) / self._sd, y)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margins on raw (unstandardized) features.

        Positive means "predicted to exceed the size threshold"; the
        magnitude is the standardized-SVM margin, which the serving
        layer reports as the virality *score*.
        """
        if self._mu is None:
            raise RuntimeError("predictor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return self._svm.decision_function((X - self._mu) / self._sd)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._mu is None:
            raise RuntimeError("predictor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return self._svm.predict((X - self._mu) / self._sd)

    # ------------------------------------------------------------------ #
    # Persistence (what `repro serve --predictor` consumes)
    # ------------------------------------------------------------------ #

    def copy(self) -> "ViralityPredictor":
        """Independent copy (fitted state included) — snapshot safety."""
        clone = ViralityPredictor(
            threshold=self.threshold,
            lam=self._svm.lam,
            n_epochs=self._svm.n_epochs,
        )
        if self._svm.w is not None:
            clone._svm.w = self._svm.w.copy()
            clone._svm.b = self._svm.b
        if self._mu is not None and self._sd is not None:
            clone._mu = self._mu.copy()
            clone._sd = self._sd.copy()
        return clone

    def save(self, path) -> None:
        """Serialize the fitted predictor to an ``.npz`` archive."""
        if self._mu is None or self._sd is None or self._svm.w is None:
            raise RuntimeError("cannot save an unfitted predictor")
        np.savez_compressed(
            path,
            w=self._svm.w,
            b=np.float64(self._svm.b),
            mu=self._mu,
            sd=self._sd,
            threshold=np.int64(self.threshold),
            lam=np.float64(self._svm.lam),
        )

    @classmethod
    def load(cls, path) -> "ViralityPredictor":
        """Load a predictor written by :meth:`save`."""
        with np.load(path) as data:
            required = ("w", "b", "mu", "sd", "threshold")
            if any(key not in data for key in required):
                raise ValueError(
                    f"{path}: not a predictor archive (need {', '.join(required)})"
                )
            pred = cls(
                threshold=int(data["threshold"]),
                lam=float(data["lam"]) if "lam" in data else 1e-3,
            )
            pred._svm.w = data["w"].copy()
            pred._svm.b = float(data["b"])
            pred._mu = data["mu"].copy()
            pred._sd = data["sd"].copy()
        return pred


@dataclass
class ThresholdSweepResult:
    """The Fig. 9 / Fig. 12 series: F1 per size threshold + histogram."""

    thresholds: np.ndarray
    f1: np.ndarray
    positive_fraction: np.ndarray  # class balance at each threshold
    hist_edges: np.ndarray
    hist_counts: np.ndarray

    def f1_at_top_fraction(self, fraction: float = 0.2) -> float:
        """F1 at the threshold closest to labelling the top-*fraction*
        largest cascades positive (the paper's "top 20 % ≈ 80 %" claim)."""
        check_fraction(fraction, "fraction")
        i = int(np.argmin(np.abs(self.positive_fraction - fraction)))
        return float(self.f1[i])

    def rows(self) -> List[tuple]:
        """(threshold, F1, positive fraction) rows for the bench harness."""
        return [
            (int(t), float(f), float(p))
            for t, f, p in zip(self.thresholds, self.f1, self.positive_fraction)
        ]


def threshold_sweep(
    model: EmbeddingModel,
    cascades: CascadeSet,
    thresholds: Sequence[int],
    early_fraction: float = 2.0 / 7.0,
    window: Optional[float] = None,
    feature_set: Sequence[str] = PAPER_FEATURES,
    k_folds: int = 10,
    lam: float = 1e-3,
    n_epochs: int = 30,
    hist_bin_width: int = 50,
    seed: SeedLike = None,
) -> ThresholdSweepResult:
    """Cross-validated F1 at each size threshold (regenerates Fig. 9/12).

    Thresholds that leave fewer than *k_folds* samples in either class are
    scored 0 (the cross-validator cannot stratify them meaningfully).
    """
    from repro.cascades.stats import size_histogram

    rng = as_generator(seed)
    dataset = build_dataset(
        model, cascades, early_fraction=early_fraction, window=window,
        feature_set=feature_set,
    )
    f1s = np.zeros(len(thresholds))
    pos_frac = np.zeros(len(thresholds))
    for i, thr in enumerate(thresholds):
        y = dataset.labels(int(thr))
        n_pos = int(np.sum(y == 1))
        n_neg = int(np.sum(y == -1))
        pos_frac[i] = n_pos / max(len(y), 1)
        if min(n_pos, n_neg) < 2:
            f1s[i] = 0.0
            continue
        f1s[i] = cross_val_f1(
            lambda: LinearSVM(lam=lam, n_epochs=n_epochs, seed=rng),
            dataset.X,
            y,
            k=min(k_folds, min(n_pos, n_neg)),
            seed=rng,
        )
    edges, counts = size_histogram(cascades, bin_width=hist_bin_width)
    return ThresholdSweepResult(
        thresholds=np.asarray(thresholds, dtype=np.int64),
        f1=f1s,
        positive_fraction=pos_frac,
        hist_edges=edges,
        hist_counts=counts,
    )
