"""Threshold-free classifier evaluation: ROC and precision-recall curves.

The paper evaluates with the F1-measure, citing Powers (2011) — whose
paper is precisely about going "from precision, recall and F-measure to
ROC, informedness, markedness and correlation".  These utilities provide
that fuller view over the SVM's continuous decision values: ROC curve +
AUC, precision-recall curve + average precision, and Powers'
informedness (Youden's J) at the optimal operating point.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "roc_curve",
    "roc_auc",
    "precision_recall_curve",
    "average_precision",
    "best_informedness",
]


def _validate(y_true: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise ValueError("y_true and scores must be equal-length 1-D arrays")
    if y_true.size == 0:
        raise ValueError("need at least one sample")
    if not np.all(np.isin(y_true, (-1, 1))):
        raise ValueError("y_true must contain only -1/+1 labels")
    if not (np.any(y_true == 1) and np.any(y_true == -1)):
        raise ValueError("y_true must contain both classes")
    return y_true, scores


def roc_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False-positive rate, true-positive rate, and thresholds.

    Points are ordered by decreasing threshold, starting at (0, 0) and
    ending at (1, 1); ties in score collapse to single points.
    """
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(scores)[::-1]
    y_sorted = y_true[order]
    s_sorted = scores[order]
    tp = np.cumsum(y_sorted == 1)
    fp = np.cumsum(y_sorted == -1)
    # keep the last index of each distinct score (tie collapse)
    distinct = np.r_[np.diff(s_sorted) != 0, True]
    tp, fp, thr = tp[distinct], fp[distinct], s_sorted[distinct]
    P = int(np.sum(y_true == 1))
    N = y_true.size - P
    tpr = np.r_[0.0, tp / P]
    fpr = np.r_[0.0, fp / N]
    thresholds = np.r_[np.inf, thr]
    return fpr, tpr, thresholds


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))


def precision_recall_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall at every distinct score threshold.

    Ordered by decreasing threshold; recall starts near 0 and ends at 1.
    """
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(scores)[::-1]
    y_sorted = y_true[order]
    s_sorted = scores[order]
    tp = np.cumsum(y_sorted == 1)
    predicted = np.arange(1, y_sorted.size + 1)
    distinct = np.r_[np.diff(s_sorted) != 0, True]
    tp, predicted, thr = tp[distinct], predicted[distinct], s_sorted[distinct]
    P = int(np.sum(y_true == 1))
    precision = tp / predicted
    recall = tp / P
    return precision, recall, thr


def average_precision(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Step-interpolated area under the precision-recall curve."""
    precision, recall, _ = precision_recall_curve(y_true, scores)
    recall = np.r_[0.0, recall]
    return float(np.sum(np.diff(recall) * precision))


def best_informedness(y_true: np.ndarray, scores: np.ndarray) -> Tuple[float, float]:
    """Powers' informedness (TPR − FPR, a.k.a. Youden's J) maximized over
    thresholds; returns ``(informedness, threshold)``."""
    fpr, tpr, thresholds = roc_curve(y_true, scores)
    j = tpr - fpr
    i = int(np.argmax(j))
    return float(j[i]), float(thresholds[i])
