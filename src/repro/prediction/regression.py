"""Ridge regression of final cascade size on early-adopter features.

§V's first predictor family covers "feature-based regression or
classification models which predict the size and duration of a cascade"
— the paper evaluates only the classification variant; this module adds
the regression variant, predicting the final size itself (and usable for
duration just as well).

Closed-form ridge: ``w = (XᵀX + λI)⁻¹ Xᵀy`` on standardized features with
an unpenalized intercept.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["RidgeRegression", "r2_score", "mean_absolute_error"]


class RidgeRegression:
    """L2-regularized linear least squares with intercept.

    Parameters
    ----------
    lam:
        Ridge strength λ (0 gives ordinary least squares; the normal
        equations are solved with ``lstsq`` so rank deficiency is safe).
    """

    def __init__(self, lam: float = 1e-3) -> None:
        if lam < 0:
            raise ValueError("lam must be >= 0")
        self.lam = float(lam)
        self.w: Optional[np.ndarray] = None
        self.b: float = 0.0
        self._mu: Optional[np.ndarray] = None
        self._sd: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, d) and y must be (n,)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._mu = X.mean(axis=0)
        self._sd = X.std(axis=0)
        self._sd[self._sd == 0] = 1.0
        Xs = (X - self._mu) / self._sd
        y_mean = float(y.mean())
        yc = y - y_mean
        d = Xs.shape[1]
        G = Xs.T @ Xs + self.lam * np.eye(d)
        rhs = Xs.T @ yc
        self.w = np.linalg.lstsq(G, rhs, rcond=None)[0]
        self.b = y_mean
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.w is None or self._mu is None or self._sd is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return ((X - self._mu) / self._sd) @ self.w + self.b


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 0 for a constant-truth degenerate case
    with perfect prediction, -inf-free otherwise."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be equal-length 1-D arrays")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be equal-length 1-D arrays")
    if y_true.size == 0:
        return 0.0
    return float(np.mean(np.abs(y_true - y_pred)))
