"""Argument-validation helpers with consistent error messages.

All validators raise ``ValueError`` (or ``TypeError`` for outright wrong
types) with messages that name the offending argument, so failures deep in a
pipeline are attributable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_fraction",
    "check_array_shape",
    "check_sorted_times",
]


def check_positive(value: float, name: str) -> float:
    """Ensure ``value > 0``; return it."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Ensure ``value >= 0``; return it."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Ensure ``0 <= value <= 1``; return it."""
    if not np.isfinite(value) or not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Ensure ``0 < value < 1``; return it."""
    if not np.isfinite(value) or not (0.0 < value < 1.0):
        raise ValueError(f"{name} must lie in (0, 1), got {value!r}")
    return value


def check_array_shape(
    arr: np.ndarray, shape: Tuple[Optional[int], ...], name: str
) -> np.ndarray:
    """Ensure *arr* is an ndarray whose shape matches *shape*.

    ``None`` entries in *shape* act as wildcards.  Returns the array.
    """
    if not isinstance(arr, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(arr)!r}")
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {arr.shape}"
        )
    for axis, want in enumerate(shape):
        if want is not None and arr.shape[axis] != want:
            raise ValueError(
                f"{name} must have shape {shape} (None = any), got {arr.shape}"
            )
    return arr


def check_sorted_times(times: Sequence[float], name: str = "times") -> np.ndarray:
    """Ensure *times* is a 1-D non-decreasing float array; return it."""
    t = np.asarray(times, dtype=np.float64)
    if t.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {t.shape}")
    if t.size and not np.all(np.diff(t) >= 0):
        raise ValueError(f"{name} must be sorted in non-decreasing order")
    if t.size and not np.all(np.isfinite(t)):
        raise ValueError(f"{name} must be finite")
    return t
