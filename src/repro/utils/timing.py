"""Wall-clock measurement helpers used by the benchmark harness.

``perf_counter`` based; the simulated-cluster cost model in
:mod:`repro.parallel.costmodel` consumes the *measured* per-unit costs these
helpers produce (see DESIGN.md §3.2 for the substitution rationale).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Stopwatch", "time_callable"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: int = 0
    _start: Optional[float] = field(default=None, repr=False)

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps += 1
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps = 0
        self._start = None

    @property
    def mean_lap(self) -> float:
        """Mean duration per recorded lap (0 if no laps)."""
        return self.elapsed / self.laps if self.laps else 0.0


def time_callable(fn: Callable[[], object], repeats: int = 1) -> float:
    """Return the *minimum* wall-clock seconds across *repeats* calls of *fn*.

    Minimum (not mean) is the standard choice for microbenchmarks: system
    noise only ever adds time.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
