"""Shared low-level helpers: RNG handling, validation, timing.

These utilities are deliberately dependency-free (NumPy only) and are used
throughout the package.  Every stochastic component in :mod:`repro` accepts
either an integer seed, a :class:`numpy.random.Generator`, or ``None`` and
normalizes it through :func:`repro.utils.rng.as_generator`, which keeps the
whole pipeline reproducible end to end.
"""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Stopwatch, time_callable
from repro.utils.validation import (
    check_array_shape,
    check_fraction,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Stopwatch",
    "time_callable",
    "check_array_shape",
    "check_fraction",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]
