"""Random-number-generator plumbing.

The package follows the modern NumPy convention: every stochastic function
takes a ``seed`` argument which may be

* ``None`` — fresh OS entropy,
* an ``int`` — deterministic seeding,
* an existing :class:`numpy.random.Generator` — used as-is (shared state),
* a :class:`numpy.random.SeedSequence` — spawned into a generator.

Parallel components (the multiprocess engine, per-community optimizers)
derive *independent* child streams with :func:`spawn_generators`, which uses
``SeedSequence.spawn`` so that streams are statistically independent no
matter how many children are created and in which order they run.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "as_generator", "spawn_generators"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None``, an integer, a ``Generator`` (returned unchanged), or a
        ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, Generator, or SeedSequence; got {type(seed)!r}"
    )


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create *n* statistically independent generators derived from *seed*.

    Unlike ``[default_rng(seed + i) for i in range(n)]`` (which can produce
    correlated streams), this uses ``SeedSequence.spawn`` which guarantees
    independence.  When *seed* is already a ``Generator`` the children are
    spawned from integers drawn from it, preserving reproducibility.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: SeedLike, salt: int) -> int:
    """Deterministically derive an integer seed from *seed* and *salt*.

    Useful when a child process must be handed a plain ``int`` (picklable,
    cheap) rather than a generator object.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**31 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0] % (2**31 - 1))
    elif seed is None:
        base = int(np.random.SeedSequence().generate_state(1)[0] % (2**31 - 1))
    else:
        base = int(seed)
    # SplitMix64-style mix so nearby (seed, salt) pairs decorrelate.
    x = (base * 0x9E3779B97F4A7C15 + salt * 0xBF58476D1CE4E5B9) % (2**64)
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) % (2**64)
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) % (2**64)
    x ^= x >> 31
    return int(x % (2**31 - 1))
