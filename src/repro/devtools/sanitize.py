"""Runtime write-disjointness sanitizer for the parallel engine.

Algorithm 1's parallel correctness rests on one invariant: at every
merge-tree level, community block tasks write **pairwise-disjoint row
blocks** of the shared ``A``/``B`` embedding matrices, and each task
writes **exactly the rows it was assigned** (its community's members).
The optimizer, the arena scatter path, the retry ladder, and the
checkpoint/resume machinery all assume it; none of them check it.

Setting ``REPRO_SANITIZE=1`` turns the check on:

* the hierarchical driver builds a :class:`WriteLedger` per level,
  records each block task's assigned rows (the seed-row plumbing) and
  the rows its result actually writes back, and calls
  :meth:`WriteLedger.verify` **before** merging anything into the model;
* :class:`~repro.parallel.backends.MultiprocessBackend` additionally
  reads back the *published* :class:`~repro.parallel.arena
  .LevelSelection` members block from shared memory and checks, via
  :func:`verify_selection`, that every worker's scatter range matches
  its task's assignment and that the ranges are pairwise disjoint —
  catching stale-selection reuse and splitting bugs before any worker
  writes a byte.

Any breach raises a structured :class:`DisjointnessViolation` naming the
level, the communities involved, and the offending rows.

:mod:`repro.parallel.hogwild` is **exempt**: it races on shared rows by
design (that is the experiment).  The exemption is itself asserted —
``hogwild_fit`` calls :func:`assert_exempt`, which raises if the module
is ever dropped from :data:`EXEMPT_MODULES`, so the exemption cannot
silently widen or rot.

The sanitizer is pure observation: with ``REPRO_SANITIZE`` unset (or
``0``), no ledger is built and the engine's hot paths are untouched;
with it set, recording copies only row-index arrays (never embedding
data), so a sanitized run remains bit-identical to an unsanitized one.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ENV_VAR",
    "EXEMPT_MODULES",
    "DisjointnessViolation",
    "WriteLedger",
    "assert_exempt",
    "enabled",
    "verify_selection",
]

#: Environment variable that arms the sanitizer.
ENV_VAR = "REPRO_SANITIZE"

#: Modules allowed to perform racy shared-memory writes.  Hogwild races
#: by design — lock-free SGD is the paper's cited alternative, and its
#: non-determinism is the phenomenon under study, not a bug.
EXEMPT_MODULES = frozenset({"repro.parallel.hogwild"})

_FALSEY = frozenset({"", "0", "false", "no", "off"})


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value.

    Read from the environment on every call (it is consulted once per
    level, not per row), so tests and long-running services can toggle
    it without re-importing anything.
    """
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSEY


def assert_exempt(module: str) -> None:
    """Assert that *module* holds a sanctioned exemption from the sanitizer.

    Called by the exempt module itself at entry.  Raising on an unknown
    module keeps the exemption list authoritative: moving or renaming
    hogwild without updating :data:`EXEMPT_MODULES` fails loudly instead
    of silently racing under a sanitized run.
    """
    if module not in EXEMPT_MODULES:
        raise RuntimeError(
            f"{module!r} performs unsanitized shared writes but is not on "
            f"the sanitizer exemption list {sorted(EXEMPT_MODULES)}; either "
            "route its writes through disjoint block tasks or add an "
            "explicit exemption with a rationale in devtools/sanitize.py"
        )


class DisjointnessViolation(RuntimeError):
    """A block write broke Algorithm 1's row-disjointness contract.

    Attributes
    ----------
    level:
        Merge-tree level at which the violation was detected.
    kind:
        ``"overlap"`` (two blocks wrote the same rows), ``"coverage"``
        (a block's written rows differ from its assignment), or
        ``"selection"`` (the published shared-memory selection disagrees
        with the task assignments).
    communities:
        The community ids involved.
    rows:
        The offending global row indices (sorted, deduplicated).
    """

    def __init__(
        self,
        level: int,
        kind: str,
        communities: Sequence[int],
        rows: np.ndarray,
        detail: str = "",
    ) -> None:
        self.level = int(level)
        self.kind = str(kind)
        self.communities = tuple(int(c) for c in communities)
        self.rows = np.unique(np.asarray(rows, dtype=np.int64))
        shown = ", ".join(str(int(r)) for r in self.rows[:8])
        if self.rows.size > 8:
            shown += f", ... ({self.rows.size} rows)"
        msg = (
            f"level {self.level}: {self.kind} violation involving "
            f"communit{'y' if len(self.communities) == 1 else 'ies'} "
            f"{list(self.communities)} on A/B rows [{shown}]"
        )
        if detail:
            msg += f" — {detail}"
        super().__init__(msg)


class WriteLedger:
    """Per-level record of assigned vs. actually-written embedding rows.

    Usage (one ledger per merge-tree level)::

        ledger = WriteLedger(level)
        for task in tasks:
            ledger.assign(task.community_id, task.nodes)
        ...                                  # backend runs the level
        for result in results:
            ledger.record_write(result.community_id, result.nodes)
        ledger.verify()                      # before merging into the model
    """

    def __init__(self, level: int) -> None:
        self.level = int(level)
        self._assigned: Dict[int, np.ndarray] = {}
        self._written: List[Tuple[int, np.ndarray]] = []

    # ------------------------------------------------------------------ #

    def assign(self, community_id: int, rows: np.ndarray) -> None:
        """Record the rows a block task is *allowed* (and expected) to write."""
        cid = int(community_id)
        if cid in self._assigned:
            raise ValueError(
                f"level {self.level}: community {cid} assigned twice"
            )
        self._assigned[cid] = np.asarray(rows, dtype=np.int64).copy()

    def record_write(self, community_id: int, rows: np.ndarray) -> None:
        """Record the rows a block task's result actually writes back."""
        self._written.append(
            (int(community_id), np.asarray(rows, dtype=np.int64).copy())
        )

    # ------------------------------------------------------------------ #

    def verify(self) -> None:
        """Raise :class:`DisjointnessViolation` on any breach; else return.

        Checks, in order:

        1. **coverage** — every written block matches its assignment
           exactly (an unassigned writer, a missing row, or a stray row
           all fail), and
        2. **overlap** — across blocks, no global row is written twice.

        Communities that were assigned but produced no write are fine:
        a community whose sub-corpus is empty at this level is skipped
        by the driver and its rows legitimately keep their seed values.
        """
        for cid, rows in self._written:
            expected = self._assigned.get(cid)
            if expected is None:
                raise DisjointnessViolation(
                    self.level,
                    "coverage",
                    (cid,),
                    rows,
                    "block wrote rows but was never assigned any",
                )
            got = np.sort(rows)
            exp = np.sort(expected)
            if got.shape != exp.shape or not np.array_equal(got, exp):
                stray = np.setdiff1d(got, exp)
                missing = np.setdiff1d(exp, got)
                raise DisjointnessViolation(
                    self.level,
                    "coverage",
                    (cid,),
                    np.concatenate([stray, missing]),
                    f"{stray.size} row(s) written outside the assignment, "
                    f"{missing.size} assigned row(s) not written",
                )
        if len(self._written) > 1:
            rows = np.concatenate([r for _, r in self._written])
            owners = np.concatenate(
                [np.full(r.size, cid, dtype=np.int64) for cid, r in self._written]
            )
            order = np.argsort(rows, kind="stable")
            r, o = rows[order], owners[order]
            dup = np.zeros(r.size, dtype=bool)
            dup[1:] = r[1:] == r[:-1]
            if dup.any():
                dup_rows = np.unique(r[dup])
                involved = np.unique(o[np.isin(r, dup_rows)])
                raise DisjointnessViolation(
                    self.level,
                    "overlap",
                    involved,
                    dup_rows,
                    "two block tasks write the same A/B rows — the "
                    "conflict-free merge of Algorithm 1 is broken",
                )

    # ------------------------------------------------------------------ #

    @property
    def n_blocks(self) -> int:
        return len(self._written)

    @property
    def n_rows_written(self) -> int:
        return int(sum(r.size for _, r in self._written))


def verify_selection(
    level: int,
    communities: Sequence[int],
    assigned_rows: Sequence[np.ndarray],
    members: np.ndarray,
    ranges: Sequence[Tuple[int, int]],
) -> None:
    """Check a published level selection against the task assignments.

    Parameters
    ----------
    communities, assigned_rows:
        Per task: its community id and the global rows it was assigned
        (``BlockTask.nodes`` — the seed-row plumbing).
    members:
        The members block as *read back from shared memory* (the array
        workers will gather/scatter through).
    ranges:
        Per task ``(mem_lo, mem_hi)`` — its slice of *members*.

    Raises
    ------
    DisjointnessViolation
        ``kind="selection"`` when a task's published slice differs from
        its assignment; ``kind="overlap"`` when slices collide.
    """
    if not (len(communities) == len(assigned_rows) == len(ranges)):
        raise ValueError("communities, assigned_rows, ranges must align")
    members = np.asarray(members, dtype=np.int64)
    ledger = WriteLedger(level)
    for cid, rows, (mem_lo, mem_hi) in zip(communities, assigned_rows, ranges):
        rows = np.asarray(rows, dtype=np.int64)
        published = members[int(mem_lo) : int(mem_hi)]
        if published.shape != rows.shape or not np.array_equal(published, rows):
            diff = np.concatenate(
                [np.setdiff1d(published, rows), np.setdiff1d(rows, published)]
            )
            raise DisjointnessViolation(
                level,
                "selection",
                (int(cid),),
                diff if diff.size else published,
                "published LevelSelection member range differs from the "
                "task's assigned rows (stale or corrupt selection block)",
            )
        ledger.assign(int(cid), rows)
        ledger.record_write(int(cid), published)
    ledger.verify()
