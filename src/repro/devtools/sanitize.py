"""Runtime sanitizers: write disjointness and lock-acquisition order.

Algorithm 1's parallel correctness rests on one invariant: at every
merge-tree level, community block tasks write **pairwise-disjoint row
blocks** of the shared ``A``/``B`` embedding matrices, and each task
writes **exactly the rows it was assigned** (its community's members).
The optimizer, the arena scatter path, the retry ladder, and the
checkpoint/resume machinery all assume it; none of them check it.

Setting ``REPRO_SANITIZE=1`` turns the check on:

* the hierarchical driver builds a :class:`WriteLedger` per level,
  records each block task's assigned rows (the seed-row plumbing) and
  the rows its result actually writes back, and calls
  :meth:`WriteLedger.verify` **before** merging anything into the model;
* :class:`~repro.parallel.backends.MultiprocessBackend` additionally
  reads back the *published* :class:`~repro.parallel.arena
  .LevelSelection` members block from shared memory and checks, via
  :func:`verify_selection`, that every worker's scatter range matches
  its task's assignment and that the ranges are pairwise disjoint —
  catching stale-selection reuse and splitting bugs before any worker
  writes a byte.

Any breach raises a structured :class:`DisjointnessViolation` naming the
level, the communities involved, and the offending rows.

:mod:`repro.parallel.hogwild` is **exempt**: it races on shared rows by
design (that is the experiment).  The exemption is itself asserted —
``hogwild_fit`` calls :func:`assert_exempt`, which raises if the module
is ever dropped from :data:`EXEMPT_MODULES`, so the exemption cannot
silently widen or rot.

The sanitizer is pure observation: with ``REPRO_SANITIZE`` unset (or
``0``), no ledger is built and the engine's hot paths are untouched;
with it set, recording copies only row-index arrays (never embedding
data), so a sanitized run remains bit-identical to an unsanitized one.

Lock-order sanitizer
--------------------
The second sanitizer is the runtime complement of the static REP102
analyzer (:mod:`repro.devtools.analysis`): the static pass proves the
absence of inversions among ``with``-acquired *named* locks, this one
observes **every** acquisition — including bare ``acquire()`` calls and
locks reached through paths the call-graph could not resolve.

Lock-bearing classes construct their locks through
:func:`guarded_lock` / :func:`guarded_rlock`.  Unarmed, those return
plain :mod:`threading` primitives — zero overhead, no wrapper in the
hot path.  Armed (``REPRO_SANITIZE=1`` at construction time), they
return a :class:`TrackedLock` that maintains a per-thread stack of held
lock names and a process-global acquisition-order graph: acquiring
``B`` while holding ``A`` records the edge ``A → B``; an acquisition
that would close a cycle raises :class:`LockOrderViolation` naming the
cycle path *at the acquisition site of the inversion*, before the
deadlock can happen.  Re-acquiring a lock already held by the current
thread (RLock reentrancy) records no edge, mirroring the static rule.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # Protocol landed in 3.8; keep import-time failure impossible
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

__all__ = [
    "ENV_VAR",
    "EXEMPT_MODULES",
    "DisjointnessViolation",
    "LockLike",
    "LockOrderViolation",
    "TrackedLock",
    "WriteLedger",
    "assert_exempt",
    "enabled",
    "guarded_lock",
    "guarded_rlock",
    "lock_order_edges",
    "reset_lock_order",
    "verify_selection",
]

#: Environment variable that arms the sanitizer.
ENV_VAR = "REPRO_SANITIZE"

#: Modules allowed to perform racy shared-memory writes.  Hogwild races
#: by design — lock-free SGD is the paper's cited alternative, and its
#: non-determinism is the phenomenon under study, not a bug.
EXEMPT_MODULES = frozenset({"repro.parallel.hogwild"})

_FALSEY = frozenset({"", "0", "false", "no", "off"})


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value.

    Read from the environment on every call (it is consulted once per
    level, not per row), so tests and long-running services can toggle
    it without re-importing anything.
    """
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSEY


def assert_exempt(module: str) -> None:
    """Assert that *module* holds a sanctioned exemption from the sanitizer.

    Called by the exempt module itself at entry.  Raising on an unknown
    module keeps the exemption list authoritative: moving or renaming
    hogwild without updating :data:`EXEMPT_MODULES` fails loudly instead
    of silently racing under a sanitized run.
    """
    if module not in EXEMPT_MODULES:
        raise RuntimeError(
            f"{module!r} performs unsanitized shared writes but is not on "
            f"the sanitizer exemption list {sorted(EXEMPT_MODULES)}; either "
            "route its writes through disjoint block tasks or add an "
            "explicit exemption with a rationale in devtools/sanitize.py"
        )


class DisjointnessViolation(RuntimeError):
    """A block write broke Algorithm 1's row-disjointness contract.

    Attributes
    ----------
    level:
        Merge-tree level at which the violation was detected.
    kind:
        ``"overlap"`` (two blocks wrote the same rows), ``"coverage"``
        (a block's written rows differ from its assignment), or
        ``"selection"`` (the published shared-memory selection disagrees
        with the task assignments).
    communities:
        The community ids involved.
    rows:
        The offending global row indices (sorted, deduplicated).
    """

    def __init__(
        self,
        level: int,
        kind: str,
        communities: Sequence[int],
        rows: np.ndarray,
        detail: str = "",
    ) -> None:
        self.level = int(level)
        self.kind = str(kind)
        self.communities = tuple(int(c) for c in communities)
        self.rows = np.unique(np.asarray(rows, dtype=np.int64))
        shown = ", ".join(str(int(r)) for r in self.rows[:8])
        if self.rows.size > 8:
            shown += f", ... ({self.rows.size} rows)"
        msg = (
            f"level {self.level}: {self.kind} violation involving "
            f"communit{'y' if len(self.communities) == 1 else 'ies'} "
            f"{list(self.communities)} on A/B rows [{shown}]"
        )
        if detail:
            msg += f" — {detail}"
        super().__init__(msg)


class WriteLedger:
    """Per-level record of assigned vs. actually-written embedding rows.

    Usage (one ledger per merge-tree level)::

        ledger = WriteLedger(level)
        for task in tasks:
            ledger.assign(task.community_id, task.nodes)
        ...                                  # backend runs the level
        for result in results:
            ledger.record_write(result.community_id, result.nodes)
        ledger.verify()                      # before merging into the model
    """

    def __init__(self, level: int) -> None:
        self.level = int(level)
        self._assigned: Dict[int, np.ndarray] = {}
        self._written: List[Tuple[int, np.ndarray]] = []

    # ------------------------------------------------------------------ #

    def assign(self, community_id: int, rows: np.ndarray) -> None:
        """Record the rows a block task is *allowed* (and expected) to write."""
        cid = int(community_id)
        if cid in self._assigned:
            raise ValueError(
                f"level {self.level}: community {cid} assigned twice"
            )
        self._assigned[cid] = np.asarray(rows, dtype=np.int64).copy()

    def record_write(self, community_id: int, rows: np.ndarray) -> None:
        """Record the rows a block task's result actually writes back."""
        self._written.append(
            (int(community_id), np.asarray(rows, dtype=np.int64).copy())
        )

    # ------------------------------------------------------------------ #

    def verify(self) -> None:
        """Raise :class:`DisjointnessViolation` on any breach; else return.

        Checks, in order:

        1. **coverage** — every written block matches its assignment
           exactly (an unassigned writer, a missing row, or a stray row
           all fail), and
        2. **overlap** — across blocks, no global row is written twice.

        Communities that were assigned but produced no write are fine:
        a community whose sub-corpus is empty at this level is skipped
        by the driver and its rows legitimately keep their seed values.
        """
        for cid, rows in self._written:
            expected = self._assigned.get(cid)
            if expected is None:
                raise DisjointnessViolation(
                    self.level,
                    "coverage",
                    (cid,),
                    rows,
                    "block wrote rows but was never assigned any",
                )
            got = np.sort(rows)
            exp = np.sort(expected)
            if got.shape != exp.shape or not np.array_equal(got, exp):
                stray = np.setdiff1d(got, exp)
                missing = np.setdiff1d(exp, got)
                raise DisjointnessViolation(
                    self.level,
                    "coverage",
                    (cid,),
                    np.concatenate([stray, missing]),
                    f"{stray.size} row(s) written outside the assignment, "
                    f"{missing.size} assigned row(s) not written",
                )
        if len(self._written) > 1:
            rows = np.concatenate([r for _, r in self._written])
            owners = np.concatenate(
                [np.full(r.size, cid, dtype=np.int64) for cid, r in self._written]
            )
            order = np.argsort(rows, kind="stable")
            r, o = rows[order], owners[order]
            dup = np.zeros(r.size, dtype=bool)
            dup[1:] = r[1:] == r[:-1]
            if dup.any():
                dup_rows = np.unique(r[dup])
                involved = np.unique(o[np.isin(r, dup_rows)])
                raise DisjointnessViolation(
                    self.level,
                    "overlap",
                    involved,
                    dup_rows,
                    "two block tasks write the same A/B rows — the "
                    "conflict-free merge of Algorithm 1 is broken",
                )

    # ------------------------------------------------------------------ #

    @property
    def n_blocks(self) -> int:
        return len(self._written)

    @property
    def n_rows_written(self) -> int:
        return int(sum(r.size for _, r in self._written))


def verify_selection(
    level: int,
    communities: Sequence[int],
    assigned_rows: Sequence[np.ndarray],
    members: np.ndarray,
    ranges: Sequence[Tuple[int, int]],
) -> None:
    """Check a published level selection against the task assignments.

    Parameters
    ----------
    communities, assigned_rows:
        Per task: its community id and the global rows it was assigned
        (``BlockTask.nodes`` — the seed-row plumbing).
    members:
        The members block as *read back from shared memory* (the array
        workers will gather/scatter through).
    ranges:
        Per task ``(mem_lo, mem_hi)`` — its slice of *members*.

    Raises
    ------
    DisjointnessViolation
        ``kind="selection"`` when a task's published slice differs from
        its assignment; ``kind="overlap"`` when slices collide.
    """
    if not (len(communities) == len(assigned_rows) == len(ranges)):
        raise ValueError("communities, assigned_rows, ranges must align")
    members = np.asarray(members, dtype=np.int64)
    ledger = WriteLedger(level)
    for cid, rows, (mem_lo, mem_hi) in zip(communities, assigned_rows, ranges):
        rows = np.asarray(rows, dtype=np.int64)
        published = members[int(mem_lo) : int(mem_hi)]
        if published.shape != rows.shape or not np.array_equal(published, rows):
            diff = np.concatenate(
                [np.setdiff1d(published, rows), np.setdiff1d(rows, published)]
            )
            raise DisjointnessViolation(
                level,
                "selection",
                (int(cid),),
                diff if diff.size else published,
                "published LevelSelection member range differs from the "
                "task's assigned rows (stale or corrupt selection block)",
            )
        ledger.assign(int(cid), rows)
        ledger.record_write(int(cid), published)
    ledger.verify()


# --------------------------------------------------------------------- #
# Lock-order sanitizer
# --------------------------------------------------------------------- #


class LockLike(Protocol):
    """Structural type of what :func:`guarded_lock` returns.

    Lock-bearing classes annotate their lock attribute with this so the
    strict-typed serving tier is indifferent to whether the factory
    handed back a plain ``threading`` primitive or a
    :class:`TrackedLock`.
    """

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, *exc: object) -> object: ...


class LockOrderViolation(RuntimeError):
    """Acquiring this lock would close a cycle in the order graph.

    Attributes
    ----------
    cycle:
        The lock names along the would-be cycle, starting and ending at
        the lock whose acquisition was refused.
    """

    def __init__(self, cycle: Sequence[str], holding: Sequence[str]) -> None:
        self.cycle = tuple(cycle)
        msg = (
            "lock-order inversion: acquiring "
            f"'{self.cycle[0]}' while holding {list(holding)} closes the "
            "cycle " + " -> ".join(f"'{n}'" for n in self.cycle) + "; "
            "another thread taking these locks in the recorded order "
            "deadlocks against this one"
        )
        super().__init__(msg)


class _OrderGraph:
    """Process-global lock-acquisition-order graph.

    ``edges[a][b]`` means some thread acquired *b* while holding *a*.
    The graph itself is guarded by a plain (untracked) lock — it is
    never acquired while a tracked lock's inner lock is being taken, so
    it cannot itself participate in an inversion.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._edges: Dict[str, Dict[str, int]] = {}

    def reset(self) -> None:
        with self._mu:
            self._edges.clear()

    def edges(self) -> Dict[str, Tuple[str, ...]]:
        with self._mu:
            return {a: tuple(sorted(bs)) for a, bs in self._edges.items()}

    def _path(self, src: str, dst: str) -> Optional[List[str]]:
        """A directed path src -> ... -> dst in the edge set, or None."""
        parents: Dict[str, str] = {}
        stack = [src]
        seen = {src}
        while stack:
            node = stack.pop()
            for nxt in self._edges.get(node, ()):
                if nxt in seen:
                    continue
                parents[nxt] = node
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(nxt)
                stack.append(nxt)
        return None

    def record(self, held: Sequence[str], acquiring: str) -> None:
        """Record ``held[i] → acquiring`` edges; raise on a cycle.

        The check runs *before* the inner lock is taken, so the
        violation surfaces as an exception at the inversion site rather
        than as a wedged process.
        """
        with self._mu:
            for h in held:
                if h == acquiring:
                    continue
                cycle_tail = self._path(acquiring, h)
                if cycle_tail is not None:
                    raise LockOrderViolation(
                        cycle_tail + [acquiring], holding=list(held)
                    )
            for h in held:
                if h != acquiring:
                    self._edges.setdefault(h, {})
                    self._edges[h][acquiring] = (
                        self._edges[h].get(acquiring, 0) + 1
                    )


_ORDER_GRAPH = _OrderGraph()

_HELD = threading.local()


def _held_stack() -> List[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack


def reset_lock_order() -> None:
    """Clear the global order graph (test isolation)."""
    _ORDER_GRAPH.reset()


def lock_order_edges() -> Dict[str, Tuple[str, ...]]:
    """Snapshot of the observed acquisition-order edges (for tests)."""
    return _ORDER_GRAPH.edges()


class TrackedLock:
    """A named lock wrapper feeding the global order graph.

    Wraps any lock-like object (``Lock``, ``RLock``).  Acquisition
    order is recorded per thread; closing a cycle raises
    :class:`LockOrderViolation` *before* blocking on the inner lock.
    Reentrant re-acquisition (the name already on this thread's held
    stack) records no edge — RLock semantics, and the same exemption
    the static REP102 analyzer applies.
    """

    def __init__(self, inner: LockLike, name: str) -> None:
        self.inner = inner
        self.name = name

    def _before_acquire(self) -> None:
        stack = _held_stack()
        if self.name not in stack:
            _ORDER_GRAPH.record(list(stack), self.name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._before_acquire()
        got = self.inner.acquire(blocking, timeout)
        if got:
            _held_stack().append(self.name)
        return got

    def release(self) -> None:
        self.inner.release()
        stack = _held_stack()
        # remove the most recent occurrence (reentrant locks stack)
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == self.name:
                del stack[i]
                break

    def locked(self) -> bool:
        probe = getattr(self.inner, "locked", None)
        return bool(probe()) if callable(probe) else False

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedLock({self.name!r}, {self.inner!r})"


def guarded_lock(name: str) -> LockLike:
    """A ``threading.Lock``, order-tracked when the sanitizer is armed.

    The environment is consulted at *construction* time: services built
    under ``REPRO_SANITIZE=1`` (chaos runs, tests) carry tracked locks
    for their whole lifetime; production construction pays nothing.
    """
    lock = threading.Lock()
    if enabled():
        return TrackedLock(lock, name)
    return lock


def guarded_rlock(name: str) -> LockLike:
    """A ``threading.RLock``, order-tracked when the sanitizer is armed."""
    rlock = threading.RLock()
    if enabled():
        return TrackedLock(rlock, name)
    return rlock
