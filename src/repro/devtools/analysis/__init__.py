"""Interprocedural concurrency analysis (REP101–REP104).

Where :mod:`repro.devtools.lint` checks one module at a time with purely
syntactic rules, this package builds a **per-package symbol table and
call graph** (:mod:`~repro.devtools.analysis.symbols`,
:mod:`~repro.devtools.analysis.callgraph`), tracks the **lock-held set**
through ``with self._lock:`` bodies and across intra-package calls
(:mod:`~repro.devtools.analysis.lockset`), and reports four families of
concurrency defects (:mod:`~repro.devtools.analysis.analyzers`):

========  ==============================================================
REP101    *guarded-by violation* — an attribute declared guarded (via a
          ``# guarded-by: _lock`` comment on its assignment in
          ``__init__``, or a ``_GUARDED_BY`` class/module registry) is
          read or written on some call path where the guarding lock is
          not held — including paths two or more calls deep that no
          single-module rule can see.
REP102    *lock-order inversion* — the global lock-acquisition-order
          graph (one edge per "acquired B while holding A" site, across
          the call graph) contains a cycle: two threads taking the
          involved locks in their respective orders can deadlock.
REP103    *await / blocking call while holding a lock* — the
          interprocedural extension of REP008: an ``await`` or a known
          thread-blocking call (``time.sleep``, socket/subprocess/...)
          executes on a path where a ``threading`` lock is held,
          stalling every other thread contending for it.
REP104    *fork-unsafe capture* — an argument shipped to a
          ``Process``/``Pool``/executor target is (or transitively
          holds) a threading lock, an open file handle, an asyncio
          primitive, a shared-memory handle
          (``create_segment``/``attach_untracked``/``SharedMemory``),
          or a live lock-owning service object; after ``fork`` the
          child inherits a possibly-locked lock, a shared file offset,
          or a duplicated shm fd whose unlink finalizer can fire twice,
          after ``spawn`` pickling fails late.  Children should receive
          the segment *name* and attach themselves.
========  ==============================================================

Soundness limits (see DESIGN.md §15): lock identity is class-level
(``ScoringService._lock`` names *every* instance's lock — sufficient
while each guarded object owns exactly one lock of a given name);
``lock.acquire()``/``release()`` pairs outside ``with`` are not tracked
(the runtime sanitizer in :mod:`repro.devtools.sanitize` covers dynamic
discipline); dynamic dispatch that cannot be resolved statically falls
back to "unknown" and produces **no** finding rather than a false
positive.
"""

from __future__ import annotations

from repro.devtools.analysis.analyzers import (
    ANALYSIS_RULE_IDS,
    analysis_rule_table,
    analyze_paths,
    analyze_sources,
)
from repro.devtools.analysis.symbols import PackageIndex, build_index

__all__ = [
    "ANALYSIS_RULE_IDS",
    "PackageIndex",
    "analysis_rule_table",
    "analyze_paths",
    "analyze_sources",
    "build_index",
]
