"""Call resolution and lightweight type inference over a PackageIndex.

The resolver answers one question — *which function does this call
expression reach?* — using only facts the symbol table already holds:

* ``self.method(...)`` → the enclosing class's method (MRO-aware);
* ``helper(...)`` → a module-level function of the same module, or an
  imported function resolved through the import map;
* ``pkg.mod.fn(...)`` / ``SomeClass(...)`` → index lookup by canonical
  dotted name (a class resolves to its ``__init__``);
* ``self.attr.method(...)`` / ``local.method(...)`` → the method of the
  attribute's / local's inferred class.

Anything else — dynamic dispatch through untyped values, ``getattr``,
callables passed as arguments — resolves to ``None`` and the analyses
treat the callee as *unknown*: no held-lock propagation, no finding.

Local types come from a single forward pass per function: annotated
parameters, ``x = SomeClass(...)``, ``x = self.attr``, ``with ... as x``
bindings, plus the special constructors recognized by
:mod:`~repro.devtools.analysis.symbols` (locks, ``open``, process
pools).
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.devtools.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    PackageIndex,
    _call_special_type,
    _resolve_annotation,
    resolve_dotted,
)

__all__ = [
    "LocalTypes",
    "called_qualnames",
    "infer_expr_type",
    "infer_locals",
    "resolve_call",
]

#: expression type marker for process pools / executors
POOL_TYPE = "pool"

_POOL_CONSTRUCTOR_ATTRS = frozenset({"Pool", "ProcessPoolExecutor"})
_POOL_CONSTRUCTOR_DOTTED = frozenset(
    {
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "multiprocessing.get_context.Pool",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    }
)

LocalTypes = Dict[str, str]


def _constructor_type(
    index: PackageIndex, mod: ModuleInfo, call: ast.Call
) -> Optional[str]:
    """Type produced by a call expression, if statically known."""
    special = _call_special_type(mod.imports, call)
    if special is not None:
        return special
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in mod.classes:
            return f"{mod.name}.{func.id}"
        resolved = mod.imports.get(func.id)
        if resolved is not None and index.lookup_class(resolved) is not None:
            return resolved
        if resolved in _POOL_CONSTRUCTOR_DOTTED:
            return POOL_TYPE
    resolved = resolve_dotted(mod.imports, func)
    if resolved is not None:
        if index.lookup_class(resolved) is not None:
            return resolved
        if resolved in _POOL_CONSTRUCTOR_DOTTED:
            return POOL_TYPE
    # `ctx.Pool(...)` / `ctx.Process(...)`-style: multiprocessing
    # contexts are plain locals, invisible to import resolution.
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _POOL_CONSTRUCTOR_ATTRS
    ):
        return POOL_TYPE
    return None


def infer_expr_type(
    index: PackageIndex,
    mod: ModuleInfo,
    locals_: LocalTypes,
    expr: ast.AST,
) -> Optional[str]:
    """Inferred type of an expression, or ``None`` (unknown).

    Types are dotted class names or the specials ``"file"``,
    ``"asyncio"``, ``"lock:<kind>"``, ``"pool"``.
    """
    if isinstance(expr, ast.Name):
        local = locals_.get(expr.id)
        if local is not None:
            return local
        if expr.id in locals_:
            return None
        kind = mod.module_locks.get(expr.id)
        if kind is not None:
            return f"lock:{kind}"
        # module-level lock imported from a sibling module
        resolved = mod.imports.get(expr.id)
        if resolved is not None:
            owner_mod, _, name = resolved.rpartition(".")
            other = index.modules.get(owner_mod)
            if other is not None:
                kind = other.module_locks.get(name)
                if kind is not None:
                    return f"lock:{kind}"
        return None
    if isinstance(expr, ast.Call):
        return _constructor_type(index, mod, expr)
    if isinstance(expr, ast.Attribute):
        base_type = infer_expr_type(index, mod, locals_, expr.value)
        cls = index.lookup_class(base_type)
        if cls is not None:
            kind = index.lock_kind(cls, expr.attr)
            if kind is not None:
                return f"lock:{kind}"
            return index.attr_type(cls, expr.attr)
        return None
    return None


def infer_locals(
    index: PackageIndex, mod: ModuleInfo, fn: FunctionInfo
) -> LocalTypes:
    """Forward-pass local variable types for one function."""
    locals_: LocalTypes = {}
    args = getattr(fn.node, "args", None)
    if args is not None:
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            resolved = _resolve_annotation(mod.imports, arg.annotation)
            if resolved is not None:
                locals_[arg.arg] = resolved
        if fn.cls is not None and all_args:
            first = all_args[0].arg
            if first in ("self", "cls"):
                locals_[first] = fn.cls
    body = getattr(fn.node, "body", [])
    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if isinstance(node, ast.Assign):
            inferred = infer_expr_type(index, mod, locals_, node.value)
            if inferred is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    locals_.setdefault(target.id, inferred)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            inferred = None
            if node.value is not None:
                inferred = infer_expr_type(index, mod, locals_, node.value)
            if inferred is None:
                inferred = _resolve_annotation(mod.imports, node.annotation)
            if inferred is not None:
                locals_.setdefault(node.target.id, inferred)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is None or not isinstance(
                    item.optional_vars, ast.Name
                ):
                    continue
                inferred = infer_expr_type(
                    index, mod, locals_, item.context_expr
                )
                if inferred is not None:
                    locals_.setdefault(item.optional_vars.id, inferred)
    return locals_


def resolve_call(
    index: PackageIndex,
    mod: ModuleInfo,
    fn: FunctionInfo,
    call: ast.Call,
    locals_: LocalTypes,
) -> Optional[FunctionInfo]:
    """The FunctionInfo a call expression reaches, or ``None`` (unknown)."""
    func = call.func
    if isinstance(func, ast.Name):
        target = mod.functions.get(func.id)
        if target is not None:
            return target
        if func.id in mod.classes:
            return index.find_method(mod.classes[func.id], "__init__")
        resolved = mod.imports.get(func.id)
        if resolved is not None:
            found = index.lookup_function(resolved)
            if found is not None:
                return found
            cls = index.lookup_class(resolved)
            if cls is not None:
                return index.find_method(cls, "__init__")
        return None
    if not isinstance(func, ast.Attribute):
        return None
    # canonical dotted path first: `mod.fn(...)`, `pkg.mod.Class(...)`
    resolved = resolve_dotted(mod.imports, func)
    if resolved is not None:
        found = index.lookup_function(resolved)
        if found is not None:
            return found
        cls = index.lookup_class(resolved)
        if cls is not None:
            return index.find_method(cls, "__init__")
    # receiver-typed dispatch: `self.m(...)`, `self.attr.m(...)`, `x.m(...)`
    base_type = infer_expr_type(index, mod, locals_, func.value)
    cls = index.lookup_class(base_type)
    if cls is not None:
        return index.find_method(cls, func.attr)
    return None


def called_qualnames(index: PackageIndex) -> Set[str]:
    """Qualnames of every function with at least one resolved internal
    call site — the complement picks out worklist entry points."""
    called: Set[str] = set()
    for fn in index.all_functions():
        mod = index.modules.get(fn.module)
        if mod is None:
            continue
        locals_ = infer_locals(index, mod, fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                target = resolve_call(index, mod, fn, node, locals_)
                if target is not None:
                    called.add(target.qualname)
    return called
