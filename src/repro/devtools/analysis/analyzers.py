"""The REP101–REP104 analyzers and the analysis entry points.

``analyze_sources`` builds the symbol table, runs the lock-set tracker
with the analyzer sinks attached, scans for fork-unsafe captures, and
returns a standard :class:`~repro.devtools.lint.engine.LintReport` —
same violation shape, same suppression grammar
(``# repro: noqa[REP101] reason``), same exit-code conventions as the
syntactic rules, so the CLI and SARIF writers need no special cases.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.devtools.analysis.callgraph import (
    POOL_TYPE,
    LocalTypes,
    infer_expr_type,
    infer_locals,
)
from repro.devtools.analysis.lockset import (
    HeldSet,
    LockToken,
    LockTracker,
    Sink,
)
from repro.devtools.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    PackageIndex,
    build_index,
)
from repro.devtools.lint.engine import (
    ENGINE_RULE_ID,
    LintReport,
    Violation,
    iter_python_files,
)
from repro.devtools.lint.rules import _BLOCKING_CALLS

__all__ = [
    "ANALYSIS_RULE_IDS",
    "analysis_rule_table",
    "analyze_paths",
    "analyze_sources",
]

ANALYSIS_RULE_IDS: Tuple[str, ...] = ("REP101", "REP102", "REP103", "REP104")

_RULE_META: Tuple[Tuple[str, str, str], ...] = (
    (
        "REP101",
        "guarded-by-violation",
        "attribute declared guarded (via '# guarded-by: _lock' on its "
        "__init__ assignment or a _GUARDED_BY registry) read/written on a "
        "call path where the guarding lock is not held — checked "
        "interprocedurally across the package call graph",
    ),
    (
        "REP102",
        "lock-order-inversion",
        "the global lock-acquisition-order graph (edge per 'acquired B "
        "while holding A' site, across the call graph) contains a cycle; "
        "two threads taking the locks in their respective orders deadlock",
    ),
    (
        "REP103",
        "blocking-under-lock",
        "await or known thread-blocking call (time.sleep, socket/"
        "subprocess/...) reached while a threading lock is held — the "
        "interprocedural extension of REP008; every contending thread "
        "stalls behind the sleeper",
    ),
    (
        "REP104",
        "fork-unsafe-capture",
        "argument shipped to a Process/Pool/executor target is (or "
        "transitively holds) a threading lock, an open file handle, an "
        "asyncio primitive, or a SharedMemory handle; forked children "
        "inherit possibly-locked locks, shared file offsets, and "
        "duplicated shm fds, spawn targets fail to pickle late",
    ),
)


def analysis_rule_table() -> List[Dict[str, str]]:
    """Rule metadata rows, shape-compatible with ``rules.rule_table``."""
    return [
        {
            "id": rid,
            "name": name,
            "description": desc,
            "allowed_in": "(applies everywhere)",
        }
        for rid, name, desc in _RULE_META
    ]


def _chain_note(chain: Tuple[str, ...]) -> str:
    if len(chain) <= 1:
        return ""
    return " [call path: " + " -> ".join(chain) + "]"


def _held_names(held: HeldSet) -> List[str]:
    return sorted(name for name, _ in held)


# --------------------------------------------------------------------- #
# REP101 / REP102 / REP103 — lock-set sinks
# --------------------------------------------------------------------- #


class _LockDisciplineSink(Sink):
    """Collects guarded-by, lock-order, and blocking-under-lock events."""

    def __init__(self, index: PackageIndex) -> None:
        self.index = index
        self.tracker: LockTracker = None  # type: ignore[assignment]
        self.violations: List[Violation] = []
        self._seen: Set[Tuple[str, str, int, int, str]] = set()
        #: (held lock, acquired lock) -> first witness site
        self.order_edges: Dict[Tuple[str, str], Tuple[str, int, int, str]] = {}

    def _emit(
        self, rule: str, path: str, node: ast.AST, message: str, key: str
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        dedupe = (rule, path, line, col, key)
        if dedupe in self._seen:
            return
        self._seen.add(dedupe)
        self.violations.append(
            Violation(rule=rule, path=path, line=line, col=col, message=message)
        )

    # ------------------------------- REP101 --------------------------- #

    def attribute_access(
        self,
        fn: FunctionInfo,
        node: ast.Attribute,
        owner: ClassInfo,
        attr: str,
        held: HeldSet,
        chain: Tuple[str, ...],
        on_self: bool,
    ) -> None:
        if fn.name == "__init__" and on_self:
            return  # construction happens-before publication
        guard = self.index.guard_for(owner, attr)
        if guard is None:
            return
        declaring, lock_attr = guard
        decl_cls = self.index.classes.get(declaring, owner)
        required = self.tracker.required_token(decl_cls, lock_attr)
        if required in {name for name, _ in held}:
            return
        self._emit(
            "REP101",
            fn.path,
            node,
            f"'{owner.name}.{attr}' is declared guarded-by '{lock_attr}' "
            f"but is accessed in {fn.qualname}() without "
            f"'{required}' held"
            + (
                f" (held: {', '.join(_held_names(held))})"
                if held
                else " (no locks held)"
            )
            + _chain_note(chain),
            key=f"{owner.qualname}.{attr}",
        )

    def global_access(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        name: str,
        lock_token: str,
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        if lock_token in {n for n, _ in held}:
            return
        self._emit(
            "REP101",
            fn.path,
            node,
            f"'{name}' is declared guarded-by '{lock_token}' but is "
            f"accessed in {fn.qualname}() without it held" + _chain_note(chain),
            key=name,
        )

    # ------------------------------- REP102 --------------------------- #

    def acquire(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        token: LockToken,
        held_before: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        for held_name, _ in held_before:
            if held_name == token[0]:
                continue  # reentrant: no ordering constraint
            self.order_edges.setdefault(
                (held_name, token[0]), (fn.path, line, col, fn.qualname)
            )

    # ------------------------------- REP103 --------------------------- #

    def _threading_held(self, held: HeldSet) -> List[str]:
        return sorted(name for name, kind in held if kind == "threading")

    def await_point(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        locked = self._threading_held(held)
        if not locked:
            return
        self._emit(
            "REP103",
            fn.path,
            node,
            f"await in {fn.qualname}() while holding threading lock(s) "
            f"{', '.join(locked)}; the event loop parks the coroutine "
            "with the lock still held, stalling every contending thread"
            + _chain_note(chain),
            key="await",
        )

    def call(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        resolved: Optional[str],
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        if resolved not in _BLOCKING_CALLS:
            return
        locked = self._threading_held(held)
        if not locked:
            return
        self._emit(
            "REP103",
            fn.path,
            node,
            f"{resolved}(...) blocks in {fn.qualname}() while holding "
            f"threading lock(s) {', '.join(locked)}; every thread "
            "contending for the lock stalls behind it" + _chain_note(chain),
            key=resolved or "blocking",
        )


def _order_cycles(
    edges: Dict[Tuple[str, str], Tuple[str, int, int, str]],
) -> List[Violation]:
    """One REP102 violation per strongly-connected lock-order component."""
    graph: Dict[str, Set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    # Tarjan SCC, iterative
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, List[str]]] = [(root, sorted(graph[root]))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, succs = work[-1]
            advanced = False
            while succs:
                w = succs.pop(0)
                if w not in index_of:
                    index_of[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, sorted(graph[w])))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index_of[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    for node in sorted(graph):
        if node not in index_of:
            strongconnect(node)

    out: List[Violation] = []
    for scc in sorted(sccs):
        members = set(scc)
        witnesses = sorted(
            (site, (a, b))
            for (a, b), site in edges.items()
            if a in members and b in members
        )
        notes = "; ".join(
            f"'{b}' acquired while holding '{a}' at {path}:{line} in "
            f"{qual}()"
            for (path, line, _col, qual), (a, b) in witnesses
        )
        path, line, col, _qual = witnesses[0][0]
        out.append(
            Violation(
                rule="REP102",
                path=path,
                line=line,
                col=col,
                message=(
                    "lock-order inversion between "
                    + ", ".join(f"'{name}'" for name in scc)
                    + ": "
                    + notes
                    + "; two threads taking these locks in their "
                    "respective orders deadlock"
                ),
            )
        )
    return out


# --------------------------------------------------------------------- #
# REP104 — fork-unsafe capture
# --------------------------------------------------------------------- #

_POOL_SUBMIT_METHODS = frozenset(
    {
        "submit",
        "map",
        "map_async",
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    }
)

_PROCESS_CONSTRUCTORS = frozenset(
    {"multiprocessing.Process", "multiprocessing.process.Process"}
)


class _ForkSafetyScanner:
    """Flags locks/files/asyncio primitives shipped across fork/spawn."""

    def __init__(self, index: PackageIndex) -> None:
        self.index = index
        self.violations: List[Violation] = []
        self._seen: Set[Tuple[str, int, int, str]] = set()

    def run(self) -> None:
        for mod in self.index.modules.values():
            top_level = [
                stmt
                for stmt in mod.tree.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
            self._scan_nodes(mod, top_level, {})
        for fn in self.index.all_functions():
            mod = self.index.modules.get(fn.module)
            if mod is None:
                continue
            locals_ = infer_locals(self.index, mod, fn)
            self._scan_nodes(mod, getattr(fn.node, "body", []), locals_)

    def _scan_nodes(
        self,
        mod: ModuleInfo,
        nodes: Sequence[ast.AST],
        locals_: LocalTypes,
    ) -> None:
        for root in nodes:
            for node in ast.walk(root):
                if isinstance(node, ast.Call):
                    self._check_call(mod, node, locals_)

    # ------------------------------------------------------------------ #

    def _check_call(
        self, mod: ModuleInfo, call: ast.Call, locals_: LocalTypes
    ) -> None:
        func = call.func
        from repro.devtools.analysis.symbols import resolve_dotted

        resolved = resolve_dotted(mod.imports, func)
        attr = func.attr if isinstance(func, ast.Attribute) else None
        if resolved in _PROCESS_CONSTRUCTORS or attr == "Process":
            self._check_process_ctor(mod, call, locals_)
            return
        if (
            resolved
            in (
                "concurrent.futures.ProcessPoolExecutor",
                "concurrent.futures.process.ProcessPoolExecutor",
            )
            or attr == "ProcessPoolExecutor"
            or attr == "Pool"
        ):
            self._check_pool_ctor(mod, call, locals_)
            return
        if attr in _POOL_SUBMIT_METHODS and isinstance(func, ast.Attribute):
            receiver = infer_expr_type(self.index, mod, locals_, func.value)
            if receiver == POOL_TYPE:
                self._check_submit(mod, call, attr, locals_)

    def _check_process_ctor(
        self, mod: ModuleInfo, call: ast.Call, locals_: LocalTypes
    ) -> None:
        for kw in call.keywords:
            if kw.arg == "target":
                self._check_bound_target(mod, call, kw.value, locals_)
            elif kw.arg in ("args", "kwargs"):
                self._check_packed(mod, call, kw.value, locals_, "Process")

    def _check_pool_ctor(
        self, mod: ModuleInfo, call: ast.Call, locals_: LocalTypes
    ) -> None:
        # Pool(processes, initializer, initargs) — the count is safe by
        # construction; everything else shipped to workers is checked.
        for arg in call.args[1:]:
            self._check_packed(mod, call, arg, locals_, "Pool")
        for kw in call.keywords:
            if kw.arg == "initargs":
                self._check_packed(mod, call, kw.value, locals_, "Pool")
            elif kw.arg == "initializer":
                self._check_bound_target(mod, call, kw.value, locals_)

    def _check_submit(
        self,
        mod: ModuleInfo,
        call: ast.Call,
        method: str,
        locals_: LocalTypes,
    ) -> None:
        if call.args:
            self._check_bound_target(mod, call, call.args[0], locals_)
        for arg in call.args[1:]:
            self._check_packed(mod, call, arg, locals_, method)
        for kw in call.keywords:
            if kw.arg in ("args", "kwds", "iterable"):
                self._check_packed(mod, call, kw.value, locals_, method)

    # ------------------------------------------------------------------ #

    def _check_packed(
        self,
        mod: ModuleInfo,
        site: ast.Call,
        value: ast.AST,
        locals_: LocalTypes,
        via: str,
    ) -> None:
        elements = (
            list(value.elts)
            if isinstance(value, (ast.Tuple, ast.List))
            else [value]
        )
        for element in elements:
            t = infer_expr_type(self.index, mod, locals_, element)
            reason = self._unsafe_reason(t, set())
            if reason is not None:
                self._emit(mod, site, element, via, t, reason)

    def _check_bound_target(
        self,
        mod: ModuleInfo,
        site: ast.Call,
        target: ast.AST,
        locals_: LocalTypes,
    ) -> None:
        """A bound method pickles its ``self`` — check the receiver."""
        if not isinstance(target, ast.Attribute):
            return
        t = infer_expr_type(self.index, mod, locals_, target.value)
        reason = self._unsafe_reason(t, set())
        if reason is not None:
            self._emit(mod, site, target, "target", t, reason)

    def _unsafe_reason(
        self, type_name: Optional[str], visiting: Set[str]
    ) -> Optional[str]:
        """Why *type_name* must not cross a fork, or ``None`` if it may.

        Unknown types are safe by fiat — no false positives on values
        the index cannot see into.  ``multiprocessing`` locks are fork-
        safe by design and never enter the index's lock table.
        """
        if type_name is None or type_name in visiting:
            return None
        if type_name == "file":
            return "an open file handle (shared offset after fork)"
        if type_name == "asyncio":
            return "an asyncio primitive bound to the parent's event loop"
        if type_name == "shm":
            return (
                "a SharedMemory handle (duplicated fd + unlink finalizer "
                "after fork); pass the segment *name* and attach in the child"
            )
        if type_name.startswith("lock:"):
            kind = type_name.split(":", 1)[1]
            return f"a {kind} lock (forked children inherit its state)"
        cls = self.index.lookup_class(type_name)
        if cls is None:
            return None
        visiting.add(type_name)
        for c in self.index._mro(cls):
            for attr, kind in sorted(c.lock_attrs.items()):
                return (
                    f"{cls.name}.{attr}, a {kind} lock "
                    "(forked children inherit its state)"
                )
            for attr, attr_type in sorted(c.attr_types.items()):
                inner = self._unsafe_reason(attr_type, visiting)
                if inner is not None:
                    return f"{cls.name}.{attr} -> {inner}"
        return None

    def _emit(
        self,
        mod: ModuleInfo,
        site: ast.Call,
        node: ast.AST,
        via: str,
        type_name: Optional[str],
        reason: str,
    ) -> None:
        line = getattr(node, "lineno", getattr(site, "lineno", 1))
        col = getattr(node, "col_offset", 0)
        key = (mod.path, line, col, reason)
        if key in self._seen:
            return
        self._seen.add(key)
        shown = type_name or "value"
        self.violations.append(
            Violation(
                rule="REP104",
                path=mod.path,
                line=line,
                col=col,
                message=(
                    f"value of type '{shown}' shipped through {via}(...) to "
                    f"a child process captures {reason}; pass plain data "
                    "(names, arrays, paths) and rebuild handles/locks in "
                    "the child"
                ),
            )
        )


# --------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------- #


def _run_analyzers(
    index: PackageIndex, select: FrozenSet[str]
) -> List[Violation]:
    violations: List[Violation] = []
    if select & {"REP101", "REP102", "REP103"}:
        sink = _LockDisciplineSink(index)
        tracker = LockTracker(index, sink)
        sink.tracker = tracker
        tracker.run()
        violations.extend(
            v for v in sink.violations if v.rule in select
        )
        if "REP102" in select:
            violations.extend(_order_cycles(sink.order_edges))
    if "REP104" in select:
        scanner = _ForkSafetyScanner(index)
        scanner.run()
        violations.extend(scanner.violations)
    return violations


def analyze_sources(
    sources: Sequence[Tuple[str, str]],
    select: Optional[Sequence[str]] = None,
    report_engine_errors: bool = True,
) -> LintReport:
    """Analyze ``(path, source)`` pairs; returns a standard LintReport.

    *select* restricts to a subset of :data:`ANALYSIS_RULE_IDS`.  With
    ``report_engine_errors=False``, REP000 parse failures are left to a
    concurrently-run lint pass over the same files (the CLI does this
    to avoid double-reporting).
    """
    selected = frozenset(select) if select is not None else frozenset(
        ANALYSIS_RULE_IDS
    )
    report = LintReport(files_scanned=len(sources))
    index, errors = build_index(sources)
    if report_engine_errors:
        for path, exc in errors:
            report.violations.append(
                Violation(
                    rule=ENGINE_RULE_ID,
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"could not parse file: {exc.msg}",
                )
            )
    by_path = {mod.path: mod for mod in index.modules.values()}
    raw = _run_analyzers(index, selected)
    for v in sorted(raw, key=lambda v: (v.path, v.line, v.col, v.rule)):
        mod = by_path.get(v.path)
        sup = mod.suppressions.get(v.line) if mod is not None else None
        if sup is not None and v.rule in sup.rules:
            report.n_suppressed += 1
            continue
        report.violations.append(v)
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    report_engine_errors: bool = True,
) -> LintReport:
    """Analyze every Python file under *paths*."""
    import tokenize

    sources: List[Tuple[str, str]] = []
    unreadable: List[Violation] = []
    for f in iter_python_files(paths):
        try:
            with tokenize.open(f) as fh:
                sources.append((str(f), fh.read()))
        except (OSError, UnicodeDecodeError, SyntaxError) as exc:
            unreadable.append(
                Violation(
                    rule=ENGINE_RULE_ID,
                    path=str(f),
                    line=1,
                    col=0,
                    message=f"could not read file: {exc}",
                )
            )
    report = analyze_sources(
        sources, select=select, report_engine_errors=report_engine_errors
    )
    if report_engine_errors:
        report.violations.extend(unreadable)
        report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    report.files_scanned += len(unreadable)
    return report
