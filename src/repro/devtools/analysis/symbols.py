"""Per-package symbol table: modules, classes, locks, guarded-by declarations.

The table is built once per analysis run from parsed sources — nothing
is imported or executed.  It records, for every module in the analyzed
set:

* its **import map** (local name → canonical dotted name, including
  level-1+ relative imports resolved against the module's own package);
* its **classes** with their methods, base classes, and three per-class
  attribute facts inferred from ``__init__`` (and the other methods):

  - *lock attributes* — ``self._lock = threading.RLock()`` (or
    ``asyncio.Lock()``, or one of the sanitize factories
    ``guarded_lock``/``guarded_rlock``) marks ``_lock`` as a lock of
    the recorded kind;
  - *guarded attributes* — a ``# guarded-by: <lock>`` comment on the
    attribute's assignment line, or an entry in a class-body
    ``_GUARDED_BY = {"attr": "<lock>"}`` registry, declares that every
    read/write of the attribute must happen with the named lock held;
  - *attribute types* — ``self.x = <annotated param>``,
    ``self.x = SomeClass(...)``, and ``self.x: SomeClass = ...`` give
    the flow analyses enough typing to resolve ``self.x.method()``
    call edges and ``other.x`` guarded accesses across classes.

* its **module-level** functions, lock variables, and guarded globals
  (comment-annotated assignments or a module-level ``_GUARDED_BY``
  registry whose keys may be dotted external names, e.g.
  ``multiprocessing.resource_tracker.register``).

Everything here is deliberately conservative: a name that does not
resolve stays unresolved (``None``) and downstream analyses treat it as
"unknown — no finding" rather than guessing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.devtools.lint.engine import Suppression, parse_suppressions

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "PackageIndex",
    "build_index",
    "module_name_for_path",
]

_GUARD_COMMENT_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][\w]*)")

#: constructor dotted names → lock kind
_LOCK_CONSTRUCTORS: Dict[str, str] = {
    "threading.Lock": "threading",
    "threading.RLock": "threading",
    "threading.Condition": "threading",
    "threading.Semaphore": "threading",
    "threading.BoundedSemaphore": "threading",
    "asyncio.Lock": "asyncio",
    "asyncio.Condition": "asyncio",
    "asyncio.Semaphore": "asyncio",
    "asyncio.BoundedSemaphore": "asyncio",
}

#: sanitize factory suffixes → lock kind (repro.devtools.sanitize)
_SANITIZE_FACTORIES: Dict[str, str] = {
    "guarded_lock": "threading",
    "guarded_rlock": "threading",
}

#: asyncio primitives that must never cross a fork boundary
_ASYNCIO_PRIMITIVES = frozenset(
    {"Lock", "Condition", "Semaphore", "BoundedSemaphore", "Event", "Queue", "Future"}
)

#: shared-memory handle factories, matched by terminal name (the repo's
#: sanctioned wrappers in repro.parallel._shm plus the raw stdlib
#: constructor).  The handle owns an mmap + fd and, for create_segment,
#: a PID-guarded unlink finalizer — shipping it through fork duplicates
#: the fd and can double-unlink the segment; children must receive the
#: segment *name* and attach themselves.
_SHM_FACTORIES = frozenset({"create_segment", "attach_untracked", "SharedMemory"})

#: io.* annotation roots that mark an attribute as an open file handle
_FILE_ANNOTATIONS = frozenset(
    {
        "io.IOBase",
        "io.RawIOBase",
        "io.BufferedIOBase",
        "io.BufferedReader",
        "io.BufferedWriter",
        "io.BufferedRandom",
        "io.TextIOWrapper",
        "io.FileIO",
        "typing.IO",
        "typing.TextIO",
        "typing.BinaryIO",
    }
)


@dataclass
class FunctionInfo:
    """One analyzable function or method."""

    qualname: str  # "pkg.mod.func" or "pkg.mod.Class.method"
    module: str  # owning module's dotted name
    cls: Optional[str]  # owning class qualname, or None
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    path: str
    is_async: bool

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ClassInfo:
    """One class with its concurrency-relevant facts."""

    qualname: str  # "pkg.mod.Class"
    module: str
    name: str
    node: ast.ClassDef
    path: str
    bases: List[str] = field(default_factory=list)  # resolved dotted names
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: lock attribute name -> kind ("threading" | "asyncio")
    lock_attrs: Dict[str, str] = field(default_factory=dict)
    #: guarded attribute name -> guarding lock attribute name
    guarded: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> inferred type: a dotted class name, or one of the
    #: specials "file", "lock:threading", "lock:asyncio", "asyncio"
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str  # dotted module name
    path: str
    tree: ast.Module
    source: str
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level lock variable -> kind
    module_locks: Dict[str, str] = field(default_factory=dict)
    #: guarded module-level (or dotted external) name -> lock *token*
    #: (fully qualified, e.g. "repro.parallel._shm._ATTACH_LOCK")
    module_guarded: Dict[str, str] = field(default_factory=dict)
    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    #: lineno -> guard name for `# guarded-by:` comments in this file
    guard_comments: Dict[int, str] = field(default_factory=dict)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path.

    ``src/repro/serving/service.py`` → ``repro.serving.service`` (the
    last ``/src/`` segment anchors the package root when present);
    fixture paths like ``pkg/mod.py`` map to ``pkg.mod``.
    """
    posix = path.replace("\\", "/")
    if "/src/" in posix:
        posix = posix.rsplit("/src/", 1)[1]
    elif posix.startswith("src/"):
        posix = posix[len("src/") :]
    posix = posix.lstrip("/")
    if posix.endswith(".py"):
        posix = posix[: -len(".py")]
    if posix.endswith("/__init__"):
        posix = posix[: -len("/__init__")]
    return posix.replace("/", ".")


def _guard_comments(source: str) -> Dict[int, str]:
    """``lineno -> lock name`` for every ``# guarded-by:`` comment."""
    out: Dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            m = _GUARD_COMMENT_RE.search(tok.string)
            if m is not None:
                out[tok.start[0]] = m.group("lock")
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        pass
    return out


def _build_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name → canonical dotted name, with relative imports resolved."""
    imports: Dict[str, str] = {}
    pkg_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # `from .x import y` inside pkg.sub.mod: drop `level`
                # trailing components of the module path, append x.
                base_parts = pkg_parts[: -node.level] if node.level <= len(
                    pkg_parts
                ) else []
                base = ".".join(base_parts)
                prefix = f"{base}.{node.module}" if node.module else base
            else:
                if node.module is None:
                    continue
                prefix = node.module
            if not prefix:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{prefix}.{alias.name}"
    # The module's own top-level definitions resolve like imports do, so
    # annotations and calls naming a same-module class need no special
    # casing downstream.
    for stmt in tree.body:
        if isinstance(stmt, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            imports[stmt.name] = f"{module}.{stmt.name}"
    return imports


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` chain as a dotted string, or ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_dotted(imports: Dict[str, str], node: ast.AST) -> Optional[str]:
    """Canonical dotted name of a Name/Attribute chain via the import map."""
    raw = _dotted(node)
    if raw is None:
        return None
    head, _, rest = raw.partition(".")
    base = imports.get(head)
    if base is None:
        return None
    return f"{base}.{rest}" if rest else base


def _annotation_names(node: ast.AST) -> Iterator[str]:
    """Every dotted-name candidate inside an annotation expression.

    Handles ``Optional[X]``, ``"X"`` string annotations, unions, and
    subscripts by recursing; yields raw (unresolved) dotted strings.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            inner = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
        yield from _annotation_names(inner)
        return
    if isinstance(node, (ast.Name, ast.Attribute)):
        raw = _dotted(node)
        if raw is not None:
            yield raw
        return
    for child in ast.iter_child_nodes(node):
        yield from _annotation_names(child)


_TYPING_WRAPPERS = frozenset({"Optional", "Union", "Final", "ClassVar", "Annotated"})


def _resolve_annotation(
    imports: Dict[str, str], node: Optional[ast.AST]
) -> Optional[str]:
    """First resolvable, non-typing-wrapper dotted name in an annotation."""
    if node is None:
        return None
    for raw in _annotation_names(node):
        head, _, rest = raw.partition(".")
        if head == "typing" or raw in _TYPING_WRAPPERS or head in _TYPING_WRAPPERS:
            if raw.startswith("typing.") and raw in _FILE_ANNOTATIONS:
                return raw
            continue
        base = imports.get(head)
        if base is None:
            continue
        resolved = f"{base}.{rest}" if rest else base
        return resolved
    return None


def _call_special_type(imports: Dict[str, str], node: ast.AST) -> Optional[str]:
    """Special type of a call expression: lock kinds, files, asyncio."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open" and "open" not in imports:
        return "file"
    resolved = resolve_dotted(imports, func)
    if resolved is not None:
        kind = _LOCK_CONSTRUCTORS.get(resolved)
        if kind is not None:
            return f"lock:{kind}"
        if resolved.startswith("asyncio."):
            tail = resolved.split(".")[-1]
            if tail in _ASYNCIO_PRIMITIVES:
                return "asyncio"
        if resolved in ("builtins.open", "os.fdopen", "io.open", "gzip.open"):
            return "file"
    # sanitize lock factories, matched by terminal name so both
    # `guarded_rlock(...)` and `sanitize.guarded_rlock(...)` resolve
    name = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id if isinstance(func, ast.Name) else ""
    )
    kind = _SANITIZE_FACTORIES.get(name)
    if kind is not None:
        return f"lock:{kind}"
    if name in _SHM_FACTORIES:
        return "shm"
    return None


def _literal_str_dict(node: ast.AST) -> Optional[Dict[str, str]]:
    """A ``{"k": "v", ...}`` display as a plain dict, else ``None``."""
    if not isinstance(node, ast.Dict):
        return None
    out: Dict[str, str] = {}
    for k, v in zip(node.keys, node.values):
        if (
            isinstance(k, ast.Constant)
            and isinstance(k.value, str)
            and isinstance(v, ast.Constant)
            and isinstance(v.value, str)
        ):
            out[k.value] = v.value
        else:
            return None
    return out


class _ClassScanner:
    """Extract lock/guarded/type facts from one class body."""

    def __init__(self, info: ClassInfo, mod: ModuleInfo) -> None:
        self.info = info
        self.mod = mod

    def scan(self) -> None:
        for stmt in self.info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    qualname=f"{self.info.qualname}.{stmt.name}",
                    module=self.mod.name,
                    cls=self.info.qualname,
                    name=stmt.name,
                    node=stmt,
                    path=self.mod.path,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
                self.info.methods[stmt.name] = fn
                self._scan_method(stmt)
            elif isinstance(stmt, ast.Assign):
                self._scan_class_assign(stmt)
            elif isinstance(stmt, ast.AnnAssign):
                self._scan_class_annassign(stmt)

    # ------------------------------------------------------------------ #

    def _scan_class_assign(self, stmt: ast.Assign) -> None:
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == "_GUARDED_BY":
                registry = _literal_str_dict(stmt.value)
                if registry:
                    self.info.guarded.update(registry)

    def _scan_class_annassign(self, stmt: ast.AnnAssign) -> None:
        if (
            isinstance(stmt.target, ast.Name)
            and stmt.target.id == "_GUARDED_BY"
            and stmt.value is not None
        ):
            registry = _literal_str_dict(stmt.value)
            if registry:
                self.info.guarded.update(registry)

    def _scan_method(self, fn: ast.AST) -> None:
        """Record ``self.x = ...`` facts from a method body.

        Local variables are tracked in a single forward pass so
        ``fh = open(...); self._fh = fh`` still marks ``_fh`` a file.
        """
        imports = self.mod.imports
        local_types: Dict[str, str] = {}
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                resolved = _resolve_annotation(imports, arg.annotation)
                if resolved is not None:
                    local_types[arg.arg] = resolved
        for node in ast.walk(fn):  # type: ignore[arg-type]
            if isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                self._record_target(
                    target,
                    value,
                    local_types,
                    annotation=node.annotation,
                    lineno=node.lineno,
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._record_target(
                        target, node.value, local_types, lineno=node.lineno
                    )

    def _infer_value_type(
        self,
        value: Optional[ast.AST],
        local_types: Dict[str, str],
        annotation: Optional[ast.AST],
    ) -> Optional[str]:
        imports = self.mod.imports
        if value is not None:
            special = _call_special_type(imports, value)
            if special is not None:
                return special
            if isinstance(value, ast.Call):
                resolved = resolve_dotted(imports, value.func)
                if resolved is not None:
                    return resolved
                # same-module class construction: `Inner(...)`
                if (
                    isinstance(value.func, ast.Name)
                    and value.func.id in self.mod.classes
                ):
                    return f"{self.mod.name}.{value.func.id}"
            if isinstance(value, ast.Name):
                known = local_types.get(value.id)
                if known is not None:
                    return known
        resolved = _resolve_annotation(imports, annotation)
        if resolved in _FILE_ANNOTATIONS:
            return "file"
        return resolved

    def _record_target(
        self,
        target: ast.AST,
        value: Optional[ast.AST],
        local_types: Dict[str, str],
        annotation: Optional[ast.AST] = None,
        lineno: int = 0,
    ) -> None:
        inferred = self._infer_value_type(value, local_types, annotation)
        if isinstance(target, ast.Name):
            if inferred is not None:
                local_types[target.id] = inferred
            return
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        attr = target.attr
        if inferred is not None and inferred.startswith("lock:"):
            self.info.lock_attrs.setdefault(attr, inferred.split(":", 1)[1])
        elif inferred is not None:
            self.info.attr_types.setdefault(attr, inferred)
        guard = self.mod.guard_comments.get(lineno)
        if guard is not None:
            self.info.guarded.setdefault(attr, guard)


def _scan_module_level(mod: ModuleInfo) -> None:
    """Module-level locks, guarded globals, and the module registry."""
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value: Optional[ast.AST] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        special = _call_special_type(mod.imports, value) if value is not None else None
        for target in targets:
            if target.id == "_GUARDED_BY" and value is not None:
                registry = _literal_str_dict(value)
                if registry:
                    for name, lock in registry.items():
                        mod.module_guarded[name] = f"{mod.name}.{lock}"
                continue
            if special is not None and special.startswith("lock:"):
                mod.module_locks[target.id] = special.split(":", 1)[1]
            guard = mod.guard_comments.get(stmt.lineno)
            if guard is not None:
                mod.module_guarded[target.id] = f"{mod.name}.{guard}"


class PackageIndex:
    """All modules of one analysis run, with cross-module lookups."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: class qualname -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: function qualname -> FunctionInfo (module-level and methods)
        self.functions: Dict[str, FunctionInfo] = {}
        #: guarded dotted name -> lock token, merged across modules
        self.guarded_globals: Dict[str, str] = {}

    # ------------------------------------------------------------------ #

    def add_module(self, mod: ModuleInfo) -> None:
        self.modules[mod.name] = mod
        for cls in mod.classes.values():
            self.classes[cls.qualname] = cls
            for fn in cls.methods.values():
                self.functions[fn.qualname] = fn
        for fn in mod.functions.values():
            self.functions[fn.qualname] = fn
        for name, token in mod.module_guarded.items():
            # Bare registry keys refer to this module's own globals;
            # dotted keys name external targets (e.g. a monkeypatched
            # stdlib attribute) and are kept verbatim.
            key = name if "." in name else f"{mod.name}.{name}"
            self.guarded_globals[key] = token

    def lookup_class(self, dotted: Optional[str]) -> Optional[ClassInfo]:
        """ClassInfo for a canonical dotted name, or ``None``."""
        if dotted is None:
            return None
        return self.classes.get(dotted)

    def lookup_function(self, dotted: Optional[str]) -> Optional[FunctionInfo]:
        if dotted is None:
            return None
        return self.functions.get(dotted)

    def all_functions(self) -> List[FunctionInfo]:
        return list(self.functions.values())

    # ------------------------------------------------------------------ #
    # Inheritance-aware class fact lookups
    # ------------------------------------------------------------------ #

    def _mro(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        seen = {cls.qualname}
        queue = [cls]
        while queue:
            current = queue.pop(0)
            yield current
            for base in current.bases:
                info = self.classes.get(base)
                if info is not None and info.qualname not in seen:
                    seen.add(info.qualname)
                    queue.append(info)

    def find_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        for c in self._mro(cls):
            fn = c.methods.get(name)
            if fn is not None:
                return fn
        return None

    def guard_for(self, cls: ClassInfo, attr: str) -> Optional[Tuple[str, str]]:
        """``(declaring class qualname, lock attr)`` guarding *attr*."""
        for c in self._mro(cls):
            lock = c.guarded.get(attr)
            if lock is not None:
                return c.qualname, lock
        return None

    def lock_kind(self, cls: ClassInfo, attr: str) -> Optional[str]:
        for c in self._mro(cls):
            kind = c.lock_attrs.get(attr)
            if kind is not None:
                return kind
        return None

    def attr_type(self, cls: ClassInfo, attr: str) -> Optional[str]:
        for c in self._mro(cls):
            t = c.attr_types.get(attr)
            if t is not None:
                return t
        return None


def _index_module(path: str, source: str, tree: ast.Module) -> ModuleInfo:
    name = module_name_for_path(path)
    mod = ModuleInfo(name=name, path=path, tree=tree, source=source)
    mod.imports = _build_imports(tree, name)
    mod.guard_comments = _guard_comments(source)
    mod.suppressions, _ = parse_suppressions(path, source)
    # classes must exist before their scanners run (same-module
    # constructor inference looks the peer classes up)
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            mod.classes[stmt.name] = ClassInfo(
                qualname=f"{name}.{stmt.name}",
                module=name,
                name=stmt.name,
                node=stmt,
                path=path,
            )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[stmt.name] = FunctionInfo(
                qualname=f"{name}.{stmt.name}",
                module=name,
                cls=None,
                name=stmt.name,
                node=stmt,
                path=path,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
            )
    for cls in mod.classes.values():
        for base in cls.node.bases:
            resolved = resolve_dotted(mod.imports, base)
            if resolved is None and isinstance(base, ast.Name):
                if base.id in mod.classes:
                    resolved = f"{name}.{base.id}"
            if resolved is not None:
                cls.bases.append(resolved)
        _ClassScanner(cls, mod).scan()
    _scan_module_level(mod)
    return mod


def build_index(
    sources: Sequence[Tuple[str, str]],
) -> Tuple[PackageIndex, List[Tuple[str, SyntaxError]]]:
    """Build the index from ``(path, source)`` pairs.

    Returns the index and the list of files that failed to parse (the
    caller reports those as REP000 engine violations).
    """
    index = PackageIndex()
    errors: List[Tuple[str, SyntaxError]] = []
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            errors.append((path, exc))
            continue
        index.add_module(_index_module(path, source, tree))
    return index, errors
