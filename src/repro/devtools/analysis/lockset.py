"""Lock-held-set dataflow over the call graph.

The tracker walks every *entry point* — public functions, dunders, and
functions with no resolved internal call site — with an empty held set,
folds ``with <lock>:`` acquisitions into the set as it descends through
statement bodies, and propagates the current set into every resolved
callee.  Contexts are memoized on ``(function, held-set)`` so recursion
and diamond call shapes terminate; a private helper only ever called
under a lock is therefore only ever *analyzed* under that lock, which
is exactly the guarded-by semantics REP101 wants.

The walker itself knows nothing about rules.  It reports five kinds of
event to a :class:`Sink`; the analyzers in
:mod:`~repro.devtools.analysis.analyzers` turn those into violations:

* ``attribute_access`` — ``<typed expr>.attr`` read or written;
* ``global_access`` — a module-level (or dotted external) name that
  appears in a guarded-globals registry;
* ``acquire`` — a lock token entering the held set (with the set held
  *before* the acquisition, for lock-order edges);
* ``await_point`` — an ``await`` expression;
* ``call`` — every call, resolved or not, with its dotted name when
  import resolution finds one (for blocking-call checks).

Lock identity is class-level (``pkg.mod.Class._lock``) or module-level
(``pkg.mod._LOCK``); reentrant re-acquisition of a token already held
is not re-reported (RLock semantics — mirrored by the runtime
sanitizer).  ``lock.acquire()``/``release()`` outside ``with`` is out
of scope here and covered at runtime by
:mod:`repro.devtools.sanitize`.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.devtools.analysis.callgraph import (
    LocalTypes,
    called_qualnames,
    infer_expr_type,
    infer_locals,
    resolve_call,
)
from repro.devtools.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    PackageIndex,
    resolve_dotted,
)

__all__ = ["HeldSet", "LockToken", "Sink", "LockTracker"]

#: (token name, kind) — e.g. ("repro.serving.service.ScoringService._lock",
#: "threading")
LockToken = Tuple[str, str]

HeldSet = FrozenSet[LockToken]

#: call-chain depth backstop; real chains in this tree are < 10 deep
_MAX_DEPTH = 40

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class Sink:
    """Override the events an analyzer cares about; defaults ignore."""

    def attribute_access(
        self,
        fn: FunctionInfo,
        node: ast.Attribute,
        owner: ClassInfo,
        attr: str,
        held: HeldSet,
        chain: Tuple[str, ...],
        on_self: bool,
    ) -> None:
        """``<expr of type owner>.attr`` read or written."""

    def global_access(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        name: str,
        lock_token: str,
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        """Access to a registry-guarded module-level / external name."""

    def acquire(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        token: LockToken,
        held_before: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        """A lock token entering the held set."""

    def await_point(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        """An ``await`` expression."""

    def call(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        resolved: Optional[str],
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        """Every call site; *resolved* is the canonical dotted name when
        import resolution finds one (``None`` for unknown targets)."""


class LockTracker:
    """Worklist traversal driving a :class:`Sink`."""

    def __init__(self, index: PackageIndex, sink: Sink) -> None:
        self.index = index
        self.sink = sink
        self._seen: Set[Tuple[str, HeldSet]] = set()
        self._locals_cache: Dict[str, LocalTypes] = {}

    # ------------------------------------------------------------------ #

    def run(self) -> None:
        called = called_qualnames(self.index)
        for fn in sorted(self.index.all_functions(), key=lambda f: f.qualname):
            if self._is_entry(fn, called):
                self._analyze(fn, frozenset(), ())

    @staticmethod
    def _is_entry(fn: FunctionInfo, called: Set[str]) -> bool:
        if fn.is_public:
            return True
        if fn.name.startswith("__") and fn.name.endswith("__"):
            return True  # dunders are externally reachable
        return fn.qualname not in called

    # ------------------------------------------------------------------ #

    def _locals_for(self, fn: FunctionInfo, mod: ModuleInfo) -> LocalTypes:
        cached = self._locals_cache.get(fn.qualname)
        if cached is None:
            cached = infer_locals(self.index, mod, fn)
            self._locals_cache[fn.qualname] = cached
        return cached

    def _analyze(
        self, fn: FunctionInfo, held: HeldSet, chain: Tuple[str, ...]
    ) -> None:
        key = (fn.qualname, held)
        if key in self._seen or len(chain) >= _MAX_DEPTH:
            return
        self._seen.add(key)
        mod = self.index.modules.get(fn.module)
        if mod is None:
            return
        locals_ = self._locals_for(fn, mod)
        body = getattr(fn.node, "body", [])
        self._walk_stmts(body, fn, mod, locals_, held, chain + (fn.qualname,))

    # ------------------------------------------------------------------ #
    # Statement / expression walking
    # ------------------------------------------------------------------ #

    def _walk_stmts(
        self,
        stmts: Sequence[ast.stmt],
        fn: FunctionInfo,
        mod: ModuleInfo,
        locals_: LocalTypes,
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk_with(stmt, fn, mod, locals_, held, chain)
            elif isinstance(stmt, _SCOPE_NODES):
                continue  # nested scope: separate analysis unit (or unknown)
            else:
                self._visit_exprs(stmt, fn, mod, locals_, held, chain)
                for body in self._compound_bodies(stmt):
                    self._walk_stmts(body, fn, mod, locals_, held, chain)

    @staticmethod
    def _compound_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        bodies: List[List[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if block:
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        for case in getattr(stmt, "cases", []) or []:
            bodies.append(case.body)
        return bodies

    def _walk_with(
        self,
        stmt: ast.stmt,
        fn: FunctionInfo,
        mod: ModuleInfo,
        locals_: LocalTypes,
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        acquired = held
        for item in stmt.items:  # type: ignore[attr-defined]
            # the context expression runs with the *previous* locks held
            self._visit_exprs_in(
                item.context_expr, fn, mod, locals_, acquired, chain,
                skip_lock_attr=True,
            )
            token = self._lock_token(item.context_expr, fn, mod, locals_)
            if token is not None and token not in acquired:
                self.sink.acquire(fn, item.context_expr, token, acquired, chain)
                acquired = acquired | {token}
        self._walk_stmts(
            stmt.body, fn, mod, locals_, acquired, chain  # type: ignore[attr-defined]
        )

    # ------------------------------------------------------------------ #
    # Lock tokenization
    # ------------------------------------------------------------------ #

    def _lock_token(
        self,
        expr: ast.AST,
        fn: FunctionInfo,
        mod: ModuleInfo,
        locals_: LocalTypes,
    ) -> Optional[LockToken]:
        """Token for a with-item, or ``None`` for non-lock contexts.

        Only *named* locks are tokenized — attributes of typed objects
        and module-level lock variables.  Anonymous/local locks have no
        stable identity across functions and are deliberately skipped.
        """
        if isinstance(expr, ast.Name):
            if expr.id in locals_:
                return None
            kind = mod.module_locks.get(expr.id)
            if kind is not None:
                return (f"{mod.name}.{expr.id}", kind)
            # `from other.mod import _LOCK` — token stays owned by the
            # defining module so both sides of an inversion unify.
            resolved = mod.imports.get(expr.id)
            if resolved is not None:
                owner_mod, _, name = resolved.rpartition(".")
                other = self.index.modules.get(owner_mod)
                if other is not None:
                    kind = other.module_locks.get(name)
                    if kind is not None:
                        return (resolved, kind)
            return None
        if not isinstance(expr, ast.Attribute):
            return None
        # module-level lock referenced from another module
        resolved = resolve_dotted(mod.imports, expr)
        if resolved is not None:
            owner_mod, _, name = resolved.rpartition(".")
            other = self.index.modules.get(owner_mod)
            if other is not None:
                kind = other.module_locks.get(name)
                if kind is not None:
                    return (resolved, kind)
        base_type = infer_expr_type(self.index, mod, locals_, expr.value)
        cls = self.index.lookup_class(base_type)
        if cls is None:
            return None
        return self._class_lock_token(cls, expr.attr)

    def _class_lock_token(
        self, cls: ClassInfo, attr: str
    ) -> Optional[LockToken]:
        """Token named after the class that *declares* the lock, so a
        subclass's ``with self._lock:`` unifies with the base's."""
        for c in self.index._mro(cls):
            kind = c.lock_attrs.get(attr)
            if kind is not None:
                return (f"{c.qualname}.{attr}", kind)
        return None

    def required_token(self, cls: ClassInfo, lock_attr: str) -> str:
        """Token a guarded-by declaration requires to be held."""
        token = self._class_lock_token(cls, lock_attr)
        if token is not None:
            return token[0]
        return f"{cls.qualname}.{lock_attr}"

    # ------------------------------------------------------------------ #
    # Expression events
    # ------------------------------------------------------------------ #

    def _visit_exprs(
        self,
        stmt: ast.stmt,
        fn: FunctionInfo,
        mod: ModuleInfo,
        locals_: LocalTypes,
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        """Emit events for every expression directly under *stmt* (not
        descending into its nested statement bodies)."""
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody", "handlers", "cases"):
                continue
            nodes = value if isinstance(value, list) else [value]
            for node in nodes:
                if isinstance(node, ast.expr):
                    self._visit_exprs_in(node, fn, mod, locals_, held, chain)

    def _visit_exprs_in(
        self,
        root: ast.expr,
        fn: FunctionInfo,
        mod: ModuleInfo,
        locals_: LocalTypes,
        held: HeldSet,
        chain: Tuple[str, ...],
        skip_lock_attr: bool = False,
    ) -> None:
        for node in ast.walk(root):
            if isinstance(node, _SCOPE_NODES):
                continue
            if isinstance(node, ast.Await):
                self.sink.await_point(fn, node, held, chain)
            elif isinstance(node, ast.Call):
                resolved = resolve_dotted(mod.imports, node.func)
                self.sink.call(fn, node, resolved, held, chain)
                target = resolve_call(self.index, mod, fn, node, locals_)
                if target is not None:
                    self._analyze(target, held, chain)
            elif isinstance(node, ast.Attribute):
                self._attribute_event(
                    node, fn, mod, locals_, held, chain, skip_lock_attr
                )
            elif isinstance(node, ast.Name):
                self._name_event(node, fn, mod, locals_, held, chain)

    def _attribute_event(
        self,
        node: ast.Attribute,
        fn: FunctionInfo,
        mod: ModuleInfo,
        locals_: LocalTypes,
        held: HeldSet,
        chain: Tuple[str, ...],
        skip_lock_attr: bool,
    ) -> None:
        # registry-guarded dotted external name (e.g. a monkeypatched
        # stdlib attribute): matched on the canonical dotted chain
        resolved = resolve_dotted(mod.imports, node)
        if resolved is not None:
            lock_token = self.index.guarded_globals.get(resolved)
            if lock_token is not None:
                self.sink.global_access(
                    fn, node, resolved, lock_token, held, chain
                )
        base_type = infer_expr_type(self.index, mod, locals_, node.value)
        cls = self.index.lookup_class(base_type)
        if cls is None:
            return
        if skip_lock_attr and self._class_lock_token(cls, node.attr) is not None:
            return  # the lock operand of a with-item is not an access
        on_self = (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and fn.cls is not None
        )
        self.sink.attribute_access(
            fn, node, cls, node.attr, held, chain, on_self
        )

    def _name_event(
        self,
        node: ast.Name,
        fn: FunctionInfo,
        mod: ModuleInfo,
        locals_: LocalTypes,
        held: HeldSet,
        chain: Tuple[str, ...],
    ) -> None:
        name = node.id
        if name in locals_ or name in self._assigned_names(fn):
            return  # a local shadows the module-level name
        lock_token = mod.module_guarded.get(name)
        if lock_token is not None:
            self.sink.global_access(
                fn, node, f"{mod.name}.{name}", lock_token, held, chain
            )

    def _assigned_names(self, fn: FunctionInfo) -> Set[str]:
        cached = getattr(fn, "_assigned_cache", None)
        if cached is not None:
            return cached
        names: Set[str] = set()
        args = getattr(fn.node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                names.add(arg.arg)
        declared_global: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                names.add(node.id)
            elif isinstance(node, ast.Global):
                declared_global.update(node.names)
        # `global X` makes every X access a module-global access, even
        # though X also appears in Store context
        names -= declared_global
        fn._assigned_cache = names  # type: ignore[attr-defined]
        return names
