"""Project-specific lint rules (REP001–REP009).

Each rule encodes one invariant the reproduction's correctness story
depends on (see DESIGN.md §10 for the full rationale):

========  ==============================================================
REP001    Global/unseeded RNG state (``np.random.seed``-style module
          functions, stdlib ``random`` module functions) outside
          ``utils/rng.py``.  NetRate-style survival models silently lose
          bit-reproducibility the moment any code path draws from global
          state; everything must flow through seeded ``Generator``
          plumbing.  ``np.random.default_rng`` / ``Generator`` /
          ``SeedSequence`` are the sanctioned API and are not flagged.
REP002    Wall-clock reads (``time.time``, ``datetime.now``, …) outside
          ``utils/timing.py`` and observability code (``bench/``,
          ``devtools/``).  Monotonic clocks (``perf_counter``,
          ``monotonic``) are fine anywhere: they order events without
          making results depend on the calendar.
REP003    Raw ``shared_memory.SharedMemory(...)`` construction outside
          ``parallel/_shm.py``.  Every segment must be created through
          the sanctioned helper so it carries a paired finalizer —
          the ``/dev/shm`` leak class PR 2 fixed cannot reappear.
REP004    Bare ``multiprocessing`` ``Pool``/``Process`` construction
          outside ``parallel/backends.py`` / ``parallel/hogwild.py``.
          Only the supervised backends may own worker processes;
          anything else bypasses liveness polling, deadlines, and the
          retry ladder.
REP005    Float ``==``/``!=`` against a non-zero float literal.  Exact
          equality against a computed float is almost always an epsilon
          bug in numeric code (the whole of ``src/repro`` is numeric).
          Comparison against literal ``0.0`` is allowed: it is the
          standard exact guard for quantities that are identically zero
          by construction (empty sums, unweighted graphs) — see the
          audited guards in ``community/modularity.py`` and
          ``prediction/regression.py``.
REP006    Mutable default arguments (list/dict/set displays or
          constructor calls).  The classic shared-state footgun; use
          ``None`` + in-body default or ``field(default_factory=...)``.
REP007    ``np.add.at`` / ``np.<ufunc>.at`` outside the sanctioned
          modules.  Unbuffered ufunc scatter is NumPy's slowest
          accumulation path — the hot gradient kernel replaced it with a
          precomputed scatter plan (``repro.embedding.compiled``), and
          this rule keeps the slow path from creeping back.  Reference/
          baseline modules where ``.at`` is cold and duplicate indices
          are essential keep using it (see ``allowed_in``).
REP008    Blocking calls inside ``async def`` bodies (``time.sleep``,
          blocking socket/subprocess/select/urllib calls, non-awaited
          ``<expr>.wait(...)``).  One blocking call inside the scoring
          server's event loop stalls *every* connection and the
          micro-batch flusher with it; blocking work must go through
          ``loop.run_in_executor`` (or ``asyncio.sleep`` /
          ``asyncio.wait_for``).  Calls under an ``await`` expression
          (e.g. ``await asyncio.wait_for(ev.wait(), ...)``) are the
          sanctioned idiom and are not flagged.
REP009    ``os.replace``/``os.rename``/``shutil.move`` in a
          durability-intent module (checkpointing, the serving journal)
          whose enclosing function never calls ``fsync``.  The
          atomic-publish idiom is write → flush → **fsync** → rename:
          renaming an unsynced file can atomically install garbage
          after a power cut (the filesystem may journal the rename
          before the data blocks land).  Unlike the other rules this
          one applies *only* inside the modules listed in
          ``durable_in`` — the inverse of the allow-list grammar, same
          pattern syntax.
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.devtools.lint.engine import ModuleContext, Rule, Violation

__all__ = ["DEFAULT_RULES", "rule_table"]


#: numpy.random module-level functions that mutate/draw from global state.
_NUMPY_GLOBAL_FNS = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "poisson",
        "binomial",
        "exponential",
        "beta",
        "gamma",
        "lognormal",
        "pareto",
        "power",
        "zipf",
    }
)

#: stdlib ``random`` module functions backed by the hidden global Random().
_STDLIB_GLOBAL_FNS = frozenset(
    {
        "seed",
        "getstate",
        "setstate",
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "normalvariate",
        "gauss",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
    }
)


class UnseededRandomRule(Rule):
    """REP001: global RNG state outside the sanctioned rng module."""

    id = "REP001"
    name = "unseeded-global-rng"
    description = (
        "global RNG state (np.random.* module functions, stdlib random.*) "
        "outside utils/rng.py; use seeded Generator plumbing from "
        "repro.utils.rng"
    )
    allowed_in = ("repro/utils/rng.py",)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                resolved = ctx.resolve(node)
                if resolved is None:
                    continue
                if self._is_global_rng(resolved):
                    # Only report the outermost chain: `np.random.seed`
                    # resolves once; its `np.random` sub-chain does not
                    # match any banned function.
                    yield self.violation(
                        ctx,
                        node,
                        f"{resolved} draws from global RNG state; "
                        "thread a seeded numpy Generator through "
                        "repro.utils.rng instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy.random":
                    banned = _NUMPY_GLOBAL_FNS
                elif node.module == "random":
                    banned = _STDLIB_GLOBAL_FNS
                else:
                    continue
                for alias in node.names:
                    if alias.name in banned:
                        yield self.violation(
                            ctx,
                            node,
                            f"importing {node.module}.{alias.name} binds "
                            "global RNG state; use repro.utils.rng",
                        )

    @staticmethod
    def _is_global_rng(resolved: str) -> bool:
        if resolved.startswith("numpy.random."):
            return resolved.rsplit(".", 1)[1] in _NUMPY_GLOBAL_FNS
        if resolved.startswith("random."):
            return resolved.rsplit(".", 1)[1] in _STDLIB_GLOBAL_FNS
        return False


#: Exact wall-clock reads; monotonic/perf_counter deliberately absent.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.asctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """REP002: wall-clock reads outside timing/observability code."""

    id = "REP002"
    name = "wall-clock"
    description = (
        "wall-clock call (time.time, datetime.now, ...) outside "
        "utils/timing.py and observability code; use perf_counter/"
        "monotonic via repro.utils.timing so results never depend on "
        "the calendar"
    )
    allowed_in = ("repro/utils/timing.py", "bench/", "devtools/")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            resolved = ctx.resolve(node)
            if resolved is None:
                continue
            if resolved in _WALL_CLOCK:
                yield self.violation(
                    ctx,
                    node,
                    f"{resolved} reads the wall clock; use "
                    "repro.utils.timing (perf_counter-based) or pass "
                    "timestamps in explicitly",
                )


class RawSharedMemoryRule(Rule):
    """REP003: raw SharedMemory construction outside parallel/_shm.py."""

    id = "REP003"
    name = "raw-shared-memory"
    description = (
        "raw shared_memory.SharedMemory(...) outside parallel/_shm.py; "
        "create segments with repro.parallel._shm.create_segment (paired "
        "finalizer, no /dev/shm leaks) and attach with attach_untracked"
    )
    allowed_in = ("repro/parallel/_shm.py",)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if (
                resolved == "multiprocessing.shared_memory.SharedMemory"
                or resolved.endswith("shared_memory.SharedMemory")
            ):
                yield self.violation(
                    ctx,
                    node,
                    "raw SharedMemory construction; every segment must "
                    "come from repro.parallel._shm.create_segment so it "
                    "carries a paired finalizer",
                )


class BareMultiprocessingRule(Rule):
    """REP004: Pool/Process construction outside the sanctioned backends."""

    id = "REP004"
    name = "bare-multiprocessing"
    description = (
        "bare multiprocessing Pool/Process outside parallel/backends.py "
        "and parallel/hogwild.py; worker processes must be owned by the "
        "supervised backends (deadlines, liveness, retry ladder)"
    )
    #: The sharded serving router owns its worker processes directly —
    #: its watchdog (restart + journal replay) is the supervision story.
    allowed_in = (
        "repro/parallel/backends.py",
        "repro/parallel/hogwild.py",
        "repro/serving/sharding.py",
    )

    _ATTRS = frozenset({"Pool", "Process"})

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name: str = ""
            if isinstance(func, ast.Attribute) and func.attr in self._ATTRS:
                # Conservative: any `<expr>.Pool(...)` / `<expr>.Process(...)`
                # call — multiprocessing contexts are plain locals
                # (`ctx.Pool(...)`), invisible to import resolution.
                name = ctx.resolve(func) or f"<...>.{func.attr}"
            elif isinstance(func, ast.Name):
                resolved = ctx.resolve(func)
                if resolved in (
                    "multiprocessing.Pool",
                    "multiprocessing.Process",
                    "multiprocessing.pool.Pool",
                ):
                    name = resolved
            if name:
                yield self.violation(
                    ctx,
                    node,
                    f"{name} constructed outside the sanctioned backends; "
                    "route parallel work through repro.parallel.backends "
                    "(or hogwild_fit for the lock-free solver)",
                )


class FloatEqualityRule(Rule):
    """REP005: exact equality against a non-zero float literal."""

    id = "REP005"
    name = "float-equality"
    description = (
        "float ==/!= against a non-zero float literal; exact equality "
        "on computed floats is an epsilon bug — compare with a tolerance "
        "(literal-0.0 exact guards are allowed)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                for lit, other in ((left, right), (right, left)):
                    value = self._float_literal(lit)
                    if value is None or value == 0.0:
                        continue
                    if self._is_literal(other):
                        continue  # constant folding, not a runtime compare
                    yield self.violation(
                        ctx,
                        node,
                        f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                        f"against float literal {value!r}; use an epsilon "
                        "(math.isclose / np.isclose) — only literal-0.0 "
                        "exact guards are allowed",
                    )
                    break  # one report per comparison pair

    @staticmethod
    def _float_literal(node: ast.AST) -> "float | None":
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            inner = FloatEqualityRule._float_literal(node.operand)
            if inner is None:
                return None
            return -inner if isinstance(node.op, ast.USub) else inner
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return node.value
        return None

    @staticmethod
    def _is_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return FloatEqualityRule._is_literal(node.operand)
        return isinstance(node, ast.Constant)


class MutableDefaultRule(Rule):
    """REP006: mutable default arguments."""

    id = "REP006"
    name = "mutable-default"
    description = (
        "mutable default argument (list/dict/set display or constructor); "
        "the default is shared across calls — use None or "
        "dataclasses.field(default_factory=...)"
    )

    _MUTABLE_BUILTINS = frozenset({"list", "dict", "set", "bytearray"})
    _MUTABLE_DOTTED = frozenset(
        {
            "collections.defaultdict",
            "collections.OrderedDict",
            "collections.deque",
            "collections.Counter",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(ctx, default):
                    label = (
                        "<lambda>"
                        if isinstance(node, ast.Lambda)
                        else node.name
                    )
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument in {label}(); the same "
                        "object is shared by every call",
                    )

    def _is_mutable(self, ctx: ModuleContext, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in self._MUTABLE_BUILTINS
                and func.id not in ctx.imports
            ):
                return True
            resolved = ctx.resolve(func)
            if resolved in self._MUTABLE_DOTTED:
                return True
        return False


class UfuncAtRule(Rule):
    """REP007: unbuffered ufunc scatter outside the sanctioned modules."""

    id = "REP007"
    name = "ufunc-at-scatter"
    description = (
        "np.<ufunc>.at(...) outside the sanctioned modules; unbuffered "
        "ufunc scatter is NumPy's slowest accumulation path — hot code "
        "must use the compiled scatter plan (repro.embedding.compiled) "
        "or duplicate-free fancy indexing"
    )
    #: Cold reference/baseline code where ``.at`` stays: community/graph
    #: statistics, the Kempe simulator, rank aggregation, and the NETINF
    #: baseline (whose cross-cascade accumulation order a segment-sum
    #: rewrite would not preserve bitwise).
    allowed_in = (
        "repro/community/modularity.py",
        "repro/graphs/graph.py",
        "repro/cascades/kempe.py",
        "repro/analysis/reconstruction.py",
        "repro/embedding/linkmodel.py",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "at"):
                continue
            resolved = ctx.resolve(func)
            if resolved is not None and resolved.startswith("numpy."):
                yield self.violation(
                    ctx,
                    node,
                    f"{resolved}(...) is an unbuffered scatter; use the "
                    "compiled scatter plan (repro.embedding.compiled) or "
                    "fancy-index += over duplicate-free indices",
                )


#: Resolved dotted names that block the calling thread outright.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "socket.gethostbyname_ex",
        "socket.gethostbyaddr",
        "socket.getfqdn",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.getoutput",
        "subprocess.getstatusoutput",
        "os.system",
        "os.wait",
        "os.waitpid",
        "os.popen",
        "select.select",
        "select.poll",
        "urllib.request.urlopen",
    }
)


class BlockingCallInAsyncRule(Rule):
    """REP008: blocking calls inside ``async def`` bodies."""

    id = "REP008"
    name = "blocking-call-in-async"
    description = (
        "blocking call (time.sleep, socket/subprocess/select/urllib, "
        "non-awaited <expr>.wait(...)) inside an async def; one blocking "
        "call stalls the whole event loop — use asyncio.sleep/wait_for "
        "or push the work through loop.run_in_executor"
    )
    #: Async benchmark drivers may block deliberately (e.g. to simulate
    #: a slow client); production async code may not.
    allowed_in = ("bench/",)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(ctx, node)

    def _check_async_body(
        self, ctx: ModuleContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        awaited = self._awaited_subtrees(fn)
        for node in self._own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _BLOCKING_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"{resolved}(...) blocks the event loop inside "
                    f"async {fn.name}(); use the asyncio equivalent or "
                    "loop.run_in_executor",
                )
                continue
            # Heuristic: a non-awaited `<expr>.wait(...)` in async code is
            # almost always threading.Event.wait / process .wait — the
            # sanctioned `await asyncio.wait_for(ev.wait(), ...)` shape
            # keeps the call under an await expression and is exempt.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "wait"
                and id(node) not in awaited
                and not (resolved or "").startswith("asyncio.")
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"non-awaited .wait(...) call inside async {fn.name}() "
                    "looks like a thread-blocking wait; await it (asyncio "
                    "primitives) or run it in an executor",
                )

    @staticmethod
    def _own_nodes(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk *fn*'s body, not descending into nested function scopes.

        A nested sync ``def`` is a new scope (often an executor target or
        callback, where blocking is legitimate); a nested ``async def``
        is checked on its own when the outer walk reaches it.
        """
        scopes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        stack: List[ast.AST] = [s for s in fn.body if not isinstance(s, scopes)]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, scopes):
                    continue
                stack.append(child)

    @classmethod
    def _awaited_subtrees(cls, fn: ast.AsyncFunctionDef) -> frozenset:
        """ids of every node somewhere under an ``await`` expression."""
        out = set()
        for node in cls._own_nodes(fn):
            if isinstance(node, ast.Await):
                for sub in ast.walk(node):
                    out.add(id(sub))
        return frozenset(out)


#: rename-class calls that atomically install a file at its final path
_DURABLE_RENAMES = frozenset({"os.replace", "os.rename", "shutil.move"})


class UnsyncedDurableWriteRule(Rule):
    """REP009: rename-install without a paired fsync in durable modules."""

    id = "REP009"
    name = "unsynced-durable-write"
    description = (
        "os.replace/os.rename/shutil.move in a durability-intent module "
        "without an fsync call in the same function; the atomic-publish "
        "idiom is write -> flush -> fsync -> rename — renaming an "
        "unsynced file can install garbage after a power cut"
    )
    #: Modules declaring durability intent — the rule applies ONLY here
    #: (the *inverse* of ``allowed_in``, same pattern grammar: ``.py``
    #: entries match as path suffixes, ``dir/`` entries as components).
    durable_in = (
        "repro/parallel/checkpoint.py",
        "repro/serving/durability.py",
    )

    def applies_to(self, posix_path: str) -> bool:
        return self.path_matches(posix_path, self.durable_in)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for own_nodes in self._scopes(ctx.tree):
            renames: List[Tuple[ast.Call, str]] = []
            has_fsync = False
            for node in own_nodes:
                if not isinstance(node, ast.Call):
                    continue
                resolved = ctx.resolve(node.func)
                if resolved in _DURABLE_RENAMES:
                    assert resolved is not None
                    renames.append((node, resolved))
                elif self._is_fsync_call(node, resolved):
                    has_fsync = True
            if not has_fsync:
                for call, resolved in renames:
                    yield self.violation(
                        ctx,
                        call,
                        f"{resolved}(...) without an fsync in the same "
                        "function; fsync the file (and, for crash-ordering, "
                        "the directory) before renaming it into place",
                    )

    @staticmethod
    def _is_fsync_call(node: ast.Call, resolved: "str | None") -> bool:
        """``os.fsync(...)`` or any helper whose name names fsync.

        The helper clause keeps factored-out sync code (``_fsync_dir``,
        ``self._maybe_fsync``) recognized without an interprocedural
        analysis; a helper *named* fsync that doesn't sync is a worse
        bug than a lint gap.
        """
        if resolved == "os.fsync":
            return True
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        return "fsync" in name

    @staticmethod
    def _scopes(tree: ast.AST) -> Iterator[List[ast.AST]]:
        """Yield each scope's *own* nodes (module body, then each def).

        Nested defs start their own scope: an ``os.replace`` in a
        closure must find its fsync in that closure, not in the outer
        function — pairing across scope boundaries proves nothing about
        execution order.
        """
        scope_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

        def own(root_body: List[ast.AST]) -> List[ast.AST]:
            out: List[ast.AST] = []
            stack = [n for n in root_body if not isinstance(n, scope_types)]
            while stack:
                node = stack.pop()
                out.append(node)
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, scope_types):
                        continue
                    stack.append(child)
            return out

        assert isinstance(tree, ast.Module)
        yield own(tree.body)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield own(node.body)
            elif isinstance(node, ast.Lambda):
                yield own([node.body])


DEFAULT_RULES: Tuple[Rule, ...] = (
    UnseededRandomRule(),
    WallClockRule(),
    RawSharedMemoryRule(),
    BareMultiprocessingRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    UfuncAtRule(),
    BlockingCallInAsyncRule(),
    UnsyncedDurableWriteRule(),
)


def rule_table() -> List[Dict[str, str]]:
    """Rule metadata for ``--list-rules`` and the docs."""
    rows = []
    for r in DEFAULT_RULES:
        durable_in = getattr(r, "durable_in", ())
        if durable_in:
            scope = "only in: " + ", ".join(durable_in)
        else:
            scope = ", ".join(r.allowed_in) or "(applies everywhere)"
        rows.append(
            {
                "id": r.id,
                "name": r.name,
                "description": r.description,
                "allowed_in": scope,
            }
        )
    return rows
