"""Custom AST lint engine: rule framework, suppressions, reporting.

The engine is deliberately small: a :class:`Rule` inspects one parsed
module (:class:`ModuleContext`) and yields :class:`Violation` records.
Project rules live in :mod:`repro.devtools.lint.rules`; the CLI in
:mod:`repro.devtools.lint.cli`.

Suppressions
------------
A violation on line *L* is suppressed by an inline comment on that line::

    something_forbidden()  # repro: noqa[REP001] reason the rule is wrong here

The rule list is mandatory (blanket ``noqa`` is not supported) and the
reason string is mandatory — a suppression without one is itself reported
as ``REP000`` and cannot be suppressed.  ``REP000`` also covers files the
engine cannot parse.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Violation",
    "Suppression",
    "ModuleContext",
    "Rule",
    "LintReport",
    "lint_paths",
    "lint_source",
]

#: Engine-level problems (parse failures, malformed suppressions).
ENGINE_RULE_ID = "REP000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*noqa\s*\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)
_RULE_ID_RE = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: noqa[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str


class ModuleContext:
    """Everything a rule needs about one module.

    ``imports`` maps local names to the dotted module/object they are
    bound to (``np`` → ``numpy``, ``shared_memory`` →
    ``multiprocessing.shared_memory``, ``datetime`` →
    ``datetime.datetime`` after ``from datetime import datetime``), so
    rules can resolve attribute chains back to canonical dotted names
    without executing anything.
    """

    def __init__(self, path: str, tree: ast.AST, source: str) -> None:
        self.path = path
        #: POSIX-style path used for allow-list matching.
        self.posix_path = path.replace("\\", "/")
        self.tree = tree
        self.source = source
        self.imports: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports resolve inside the package
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    # ------------------------------------------------------------------ #

    def dotted_parts(self, node: ast.AST) -> Optional[List[str]]:
        """``a.b.c`` attribute/name chain as ``["a", "b", "c"]``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            parts.reverse()
            return parts
        return None

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        The chain's root is looked up in the module's import table, so a
        chain rooted at a local variable (unresolvable statically) stays
        ``None`` rather than producing a false positive.
        """
        parts = self.dotted_parts(node)
        if not parts:
            return None
        base = self.imports.get(parts[0])
        if base is None:
            return None
        return ".".join([base] + parts[1:])


class Rule:
    """Base class for lint rules.

    ``allowed_in`` lists path fragments where the rule is *sanctioned*:
    an entry ending in ``.py`` is matched as a path suffix, an entry
    ending in ``/`` as a directory component.  Everywhere else the rule
    applies.
    """

    id: str = ENGINE_RULE_ID
    name: str = ""
    description: str = ""
    allowed_in: Tuple[str, ...] = ()

    @staticmethod
    def path_matches(posix_path: str, patterns: Tuple[str, ...]) -> bool:
        """Does *posix_path* match any pattern of the allow-list grammar?

        An entry ending in ``.py`` is matched as a path suffix, an entry
        ending in ``/`` as a directory component.  Shared by the
        allow-list (``allowed_in``: rule is sanctioned *there*) and its
        inverse (REP009's ``durable_in``: rule applies *only* there).
        """
        probe = "/" + posix_path.lstrip("/")
        for pattern in patterns:
            if pattern.endswith("/"):
                if f"/{pattern}".replace("//", "/") in probe + "/":
                    return True
            elif probe.endswith("/" + pattern.lstrip("/")):
                return True
        return False

    def applies_to(self, posix_path: str) -> bool:
        return not self.path_matches(posix_path, self.allowed_in)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: ModuleContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_scanned: int = 0
    n_suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "n_violations": len(self.violations),
            "n_suppressed": self.n_suppressed,
            "counts": self.counts(),
            "violations": [v.to_json() for v in self.violations],
        }


# --------------------------------------------------------------------- #
# Suppression parsing
# --------------------------------------------------------------------- #


def _comment_tokens(source: str) -> Iterator[Tuple[int, int, str]]:
    """``(line, col, text)`` for each comment token in *source*.

    Tokenizing (rather than scanning raw lines) keeps string literals
    that merely *mention* the suppression marker — docstrings, the lint
    engine's own tests — from being treated as suppressions.  Files the
    tokenizer chokes on yield no comments; the parse-error path reports
    them anyway.
    """
    import io

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return


def parse_suppressions(
    path: str, source: str
) -> Tuple[Dict[int, Suppression], List[Violation]]:
    """Extract ``# repro: noqa[...]`` comments, flagging malformed ones."""
    suppressions: Dict[int, Suppression] = {}
    bad: List[Violation] = []
    for lineno, col0, comment in _comment_tokens(source):
        m = _SUPPRESS_RE.search(comment)
        if m is None:
            if "repro: noqa" in comment:
                bad.append(
                    Violation(
                        rule=ENGINE_RULE_ID,
                        path=path,
                        line=lineno,
                        col=col0,
                        message=(
                            "malformed suppression: expected "
                            "'# repro: noqa[REPxxx,...] reason'"
                        ),
                    )
                )
            continue
        rules = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
        reason = m.group("reason").strip()
        col = col0 + m.start()
        if not rules or not all(_RULE_ID_RE.match(r) for r in rules):
            bad.append(
                Violation(
                    rule=ENGINE_RULE_ID,
                    path=path,
                    line=lineno,
                    col=col,
                    message=(
                        "suppression must name the rule(s) it silences, "
                        "e.g. 'repro: noqa[REP003] reason'"
                    ),
                )
            )
            continue
        if not reason:
            bad.append(
                Violation(
                    rule=ENGINE_RULE_ID,
                    path=path,
                    line=lineno,
                    col=col,
                    message=(
                        f"suppression of {', '.join(rules)} without a reason "
                        "string; explain why the rule does not apply"
                    ),
                )
            )
            continue
        suppressions[lineno] = Suppression(line=lineno, rules=rules, reason=reason)
    return suppressions, bad


# --------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------- #


def lint_source(
    path: str, source: str, rules: Sequence[Rule]
) -> Tuple[List[Violation], int]:
    """Lint one module's source; returns ``(violations, n_suppressed)``."""
    suppressions, bad = parse_suppressions(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        bad.append(
            Violation(
                rule=ENGINE_RULE_ID,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"could not parse file: {exc.msg}",
            )
        )
        return bad, 0
    ctx = ModuleContext(path, tree, source)
    raw: List[Violation] = []
    for rule in rules:
        if rule.applies_to(ctx.posix_path):
            raw.extend(rule.check(ctx))
    kept: List[Violation] = []
    n_suppressed = 0
    for v in sorted(raw, key=lambda v: (v.line, v.col, v.rule)):
        sup = suppressions.get(v.line)
        if sup is not None and v.rule in sup.rules:
            n_suppressed += 1
            continue
        kept.append(v)
    # Engine-level problems are never suppressible.
    kept.extend(bad)
    kept.sort(key=lambda v: (v.line, v.col, v.rule))
    return kept, n_suppressed


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of .py files."""
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            yield p
        elif p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in f.parts
                ):
                    continue
                yield f
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def lint_paths(paths: Sequence[str], rules: Sequence[Rule]) -> LintReport:
    """Lint every Python file under *paths* with *rules*."""
    report = LintReport()
    for f in iter_python_files(paths):
        try:
            with tokenize.open(f) as fh:  # honors PEP 263 encoding cookies
                source = fh.read()
        except (OSError, UnicodeDecodeError, SyntaxError) as exc:
            report.violations.append(
                Violation(
                    rule=ENGINE_RULE_ID,
                    path=str(f),
                    line=1,
                    col=0,
                    message=f"could not read file: {exc}",
                )
            )
            report.files_scanned += 1
            continue
        violations, n_sup = lint_source(str(f), source, rules)
        report.violations.extend(violations)
        report.n_suppressed += n_sup
        report.files_scanned += 1
    return report
