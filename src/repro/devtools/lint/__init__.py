"""Custom AST lint pass: rule framework plus the REP001–REP006 rules.

Run as ``python -m repro.devtools.lint [paths...]`` or ``make lint``;
see :mod:`repro.devtools.lint.rules` for the rule catalogue and
:mod:`repro.devtools.lint.engine` for the framework (suppressions with
``# repro: noqa[REPxxx] reason``, JSON output, CI exit codes).
"""

from __future__ import annotations

from repro.devtools.lint.cli import main
from repro.devtools.lint.engine import (
    LintReport,
    ModuleContext,
    Rule,
    Violation,
    lint_paths,
    lint_source,
)
from repro.devtools.lint.rules import DEFAULT_RULES, rule_table

__all__ = [
    "DEFAULT_RULES",
    "LintReport",
    "ModuleContext",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
    "rule_table",
]
