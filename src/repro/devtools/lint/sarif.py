"""SARIF 2.1.0 export for lint and analysis reports.

SARIF (Static Analysis Results Interchange Format) is the exchange
format understood by code-scanning UIs (GitHub code scanning, VS Code
SARIF viewer, ...).  ``python -m repro.devtools.lint --format sarif``
emits one run per invocation through :func:`report_to_sarif`.

Only the minimal stable subset of the spec is produced:

* ``tool.driver.rules`` carries every known rule (syntactic REP00x and
  interprocedural REP10x alike) with its short description, so viewers
  can show rule help without a side channel;
* each violation becomes one ``result`` with ``ruleId``, a text
  ``message``, and a single ``physicalLocation``.

Columns: the lint engine records 0-based ``ast`` column offsets; SARIF
regions are 1-based, so ``startColumn`` is ``col + 1``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.devtools.analysis import analysis_rule_table
from repro.devtools.lint.engine import LintReport
from repro.devtools.lint.rules import rule_table

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "report_to_sarif"]

SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://example.invalid/repro-devtools"


def _driver_rules() -> List[Dict[str, object]]:
    rows = list(rule_table()) + list(analysis_rule_table())
    out: List[Dict[str, object]] = []
    for row in rows:
        out.append(
            {
                "id": row["id"],
                "name": row["name"],
                "shortDescription": {"text": row["description"]},
            }
        )
    return out


def report_to_sarif(report: LintReport) -> Dict[str, object]:
    """Render *report* as a SARIF 2.1.0 log (one run)."""
    results: List[Dict[str, object]] = []
    for v in report.violations:
        results.append(
            {
                "ruleId": v.rule,
                "level": "error",
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": v.path},
                            "region": {
                                "startLine": v.line,
                                "startColumn": v.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": _driver_rules(),
                    }
                },
                "results": results,
            }
        ],
    }
