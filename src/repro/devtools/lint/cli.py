"""Command-line front end: ``python -m repro.devtools.lint [paths...]``.

Exit codes (CI contract):

* ``0`` — scanned tree is clean,
* ``1`` — at least one violation (including REP000 engine problems),
* ``2`` — usage or I/O error (unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.devtools.lint.engine import LintReport, Rule, lint_paths
from repro.devtools.lint.rules import DEFAULT_RULES, rule_table

__all__ = ["main", "build_parser"]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Project lint: reproducibility/parallel-safety rules "
        "REP001-REP006 (see DESIGN.md §10).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List[Rule]:
    if spec is None:
        return list(DEFAULT_RULES)
    wanted = {s.strip() for s in spec.split(",") if s.strip()}
    by_id = {r.id: r for r in DEFAULT_RULES}
    unknown = wanted - set(by_id)
    if unknown:
        raise KeyError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(by_id))})"
        )
    return [by_id[i] for i in sorted(wanted)]


def _render_human(report: LintReport, out) -> None:
    for v in report.violations:
        print(v.render(), file=out)
    counts = report.counts()
    summary = (
        f"{report.files_scanned} file(s) scanned, "
        f"{len(report.violations)} violation(s), "
        f"{report.n_suppressed} suppressed"
    )
    if counts:
        summary += (
            " [" + ", ".join(f"{k}: {n}" for k, n in counts.items()) + "]"
        )
    print(summary, file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for row in rule_table():
            print(
                f"{row['id']} ({row['name']}): {row['description']} "
                f"[sanctioned in: {row['allowed_in']}]",
                file=out,
            )
        return EXIT_CLEAN
    try:
        rules = _select_rules(args.select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR
    try:
        report = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.format == "json":
        json.dump(report.to_json(), out, indent=2, sort_keys=True)
        print(file=out)
    else:
        _render_human(report, out)
    return EXIT_CLEAN if report.clean else EXIT_VIOLATIONS
