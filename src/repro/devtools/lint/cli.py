"""Command-line front end: ``python -m repro.devtools.lint [paths...]``.

Runs two tiers behind one flag surface:

* **syntactic rules** (REP001-REP009) — per-file AST scans from
  :mod:`repro.devtools.lint.rules`;
* **interprocedural analyzers** (REP101-REP104) — whole-package
  symbol-table / call-graph / lock-set analysis from
  :mod:`repro.devtools.analysis` (DESIGN.md §15).

``--select``/``--ignore`` carve the 13-rule universe; when the chosen
set touches only one tier, only that tier runs (``make analyze`` is
``--select REP101,REP102,REP103,REP104``).  REP000 engine problems
(malformed suppressions, unparseable files) are always reported and
can be neither selected away nor suppressed.

Exit codes (CI contract):

* ``0`` — scanned tree is clean,
* ``1`` — at least one violation (including REP000 engine problems),
* ``2`` — usage or I/O error (unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.engine import LintReport, Rule, lint_paths
from repro.devtools.lint.rules import DEFAULT_RULES, rule_table

# IDs of the interprocedural analyzers (mirrors
# repro.devtools.analysis.ANALYSIS_RULE_IDS, which cannot be imported at
# module scope: the analysis package itself imports the lint engine, and
# this module is pulled in by ``repro.devtools.lint.__init__`` — importing
# analysis here would close that cycle).  Cross-checked by a test.
ANALYSIS_RULE_IDS = ("REP101", "REP102", "REP103", "REP104")

__all__ = ["main", "build_parser"]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Project lint: syntactic reproducibility/parallel-safety "
        "rules REP001-REP009 (DESIGN.md §10) plus interprocedural "
        "concurrency analyzers REP101-REP104 (DESIGN.md §15).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to drop from the selection",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _parse_ids(spec: str, known: Set[str], flag: str) -> Set[str]:
    wanted = {s.strip() for s in spec.split(",") if s.strip()}
    unknown = wanted - known
    if unknown:
        raise KeyError(
            f"unknown rule id(s) in {flag}: {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return wanted


def _resolve_selection(
    select: Optional[str], ignore: Optional[str]
) -> Tuple[List[Rule], Set[str]]:
    """``(syntactic rules, analysis rule ids)`` after select/ignore."""
    by_id = {r.id: r for r in DEFAULT_RULES}
    universe = set(by_id) | set(ANALYSIS_RULE_IDS)
    chosen = (
        _parse_ids(select, universe, "--select")
        if select is not None
        else set(universe)
    )
    if ignore is not None:
        chosen -= _parse_ids(ignore, universe, "--ignore")
    syntactic = [by_id[i] for i in sorted(chosen & set(by_id))]
    return syntactic, chosen & set(ANALYSIS_RULE_IDS)


def _merge(reports: List[LintReport]) -> LintReport:
    merged = LintReport(
        violations=sorted(
            (v for r in reports for v in r.violations),
            key=lambda v: (v.path, v.line, v.col, v.rule),
        ),
        # Both passes walk the same file set; don't double-count it.
        files_scanned=max((r.files_scanned for r in reports), default=0),
        n_suppressed=sum(r.n_suppressed for r in reports),
    )
    return merged


def _render_human(report: LintReport, out) -> None:
    for v in report.violations:
        print(v.render(), file=out)
    counts = report.counts()
    summary = (
        f"{report.files_scanned} file(s) scanned, "
        f"{len(report.violations)} violation(s), "
        f"{report.n_suppressed} suppressed"
    )
    if counts:
        summary += (
            " [" + ", ".join(f"{k}: {n}" for k, n in counts.items()) + "]"
        )
    print(summary, file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.devtools.analysis import analysis_rule_table, analyze_paths

    if args.list_rules:
        for row in list(rule_table()) + list(analysis_rule_table()):
            print(
                f"{row['id']} ({row['name']}): {row['description']} "
                f"[sanctioned in: {row['allowed_in']}]",
                file=out,
            )
        return EXIT_CLEAN
    try:
        syntactic, analysis = _resolve_selection(args.select, args.ignore)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR
    reports: List[LintReport] = []
    try:
        if syntactic or not analysis:
            reports.append(lint_paths(args.paths, syntactic))
        if analysis:
            # The lint pass (when it ran) already reported REP000 engine
            # problems for this same file set; don't report them twice.
            reports.append(
                analyze_paths(
                    args.paths,
                    select=analysis,
                    report_engine_errors=not reports,
                )
            )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    report = _merge(reports)
    if args.format == "json":
        json.dump(report.to_json(), out, indent=2, sort_keys=True)
        print(file=out)
    elif args.format == "sarif":
        from repro.devtools.lint.sarif import report_to_sarif

        json.dump(report_to_sarif(report), out, indent=2, sort_keys=True)
        print(file=out)
    else:
        _render_human(report, out)
    return EXIT_CLEAN if report.clean else EXIT_VIOLATIONS
