"""Correctness tooling for the reproduction: lint, sanitizers, typing.

The paper's parallel design is only correct because of invariants the
interpreter never checks on its own:

* determinism — every stochastic step flows through seeded
  :mod:`repro.utils.rng` generators, never global RNG state;
* wall-clock hygiene — timing flows through :mod:`repro.utils.timing`
  (``perf_counter``/``monotonic``), so results never depend on the clock;
* shared-memory discipline — every POSIX segment is created through
  :mod:`repro.parallel._shm` with a paired finalizer (no ``/dev/shm``
  leaks) and every process through the sanctioned backends;
* write disjointness — community block tasks write **disjoint row
  blocks** of ``A``/``B`` (Algorithm 1's conflict freedom).

:mod:`repro.devtools.lint` enforces the static side of these invariants
per-commit (``make lint``); :mod:`repro.devtools.sanitize` checks the
dynamic side at run time when ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

__all__: list[str] = []
