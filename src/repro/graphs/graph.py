"""Immutable CSR directed weighted graph.

The representation is two parallel CSR structures (out-adjacency and
in-adjacency) built once at construction.  All hot loops downstream
(cascade simulation, SLPA, co-occurrence scans) slice contiguous NumPy
views out of these arrays — no Python-level adjacency dicts.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph"]


class Graph:
    """A directed weighted graph over nodes ``0 .. n_nodes-1`` in CSR form.

    Parameters
    ----------
    n_nodes:
        Number of nodes.  Node ids are dense integers.
    src, dst:
        Parallel integer arrays of edge endpoints.  Duplicate edges are
        merged by *summing* their weights; self-loops are rejected.
    weight:
        Optional parallel float array of edge weights (default all 1.0).

    Notes
    -----
    The class is immutable: all mutation produces a new ``Graph``.  Methods
    returning neighbor arrays return *views* into the CSR storage; callers
    must not write to them.
    """

    __slots__ = (
        "n_nodes",
        "n_edges",
        "_out_indptr",
        "_out_indices",
        "_out_weights",
        "_in_indptr",
        "_in_indices",
        "_in_weights",
    )

    def __init__(
        self,
        n_nodes: int,
        src: Sequence[int],
        dst: Sequence[int],
        weight: Optional[Sequence[float]] = None,
    ) -> None:
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be >= 0, got {n_nodes}")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        if weight is None:
            w = np.ones(src.size, dtype=np.float64)
        else:
            w = np.asarray(weight, dtype=np.float64)
            if w.shape != src.shape:
                raise ValueError("weight must match src/dst length")
        if src.size:
            if src.min() < 0 or src.max() >= n_nodes:
                raise ValueError("src contains node ids outside [0, n_nodes)")
            if dst.min() < 0 or dst.max() >= n_nodes:
                raise ValueError("dst contains node ids outside [0, n_nodes)")
            if np.any(src == dst):
                raise ValueError("self-loops are not allowed")

        # Merge duplicates by (src, dst) key, summing weights.
        if src.size:
            key = src * n_nodes + dst
            order = np.argsort(key, kind="stable")
            key_sorted = key[order]
            w_sorted = w[order]
            uniq_mask = np.empty(key_sorted.size, dtype=bool)
            uniq_mask[0] = True
            np.not_equal(key_sorted[1:], key_sorted[:-1], out=uniq_mask[1:])
            group_id = np.cumsum(uniq_mask) - 1
            n_uniq = int(group_id[-1]) + 1
            w_merged = np.zeros(n_uniq, dtype=np.float64)
            np.add.at(w_merged, group_id, w_sorted)
            key_uniq = key_sorted[uniq_mask]
            src = key_uniq // n_nodes
            dst = key_uniq % n_nodes
            w = w_merged
        self.n_nodes = int(n_nodes)
        self.n_edges = int(src.size)

        self._out_indptr, self._out_indices, self._out_weights = _build_csr(
            n_nodes, src, dst, w
        )
        self._in_indptr, self._in_indices, self._in_weights = _build_csr(
            n_nodes, dst, src, w
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]] | Iterable[Tuple[int, int, float]],
        n_nodes: Optional[int] = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` or ``(u, v, w)``.

        If *n_nodes* is omitted it is inferred as ``max id + 1``.
        """
        edges = list(edges)
        if not edges:
            return cls(n_nodes or 0, [], [])
        first = edges[0]
        if len(first) == 3:
            src, dst, w = zip(*edges)
        else:
            src, dst = zip(*edges)
            w = None
        if n_nodes is None:
            n_nodes = int(max(max(src), max(dst))) + 1
        return cls(n_nodes, src, dst, w)

    @classmethod
    def empty(cls, n_nodes: int) -> "Graph":
        """Graph with *n_nodes* nodes and no edges."""
        return cls(n_nodes, [], [])

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def successors(self, u: int) -> np.ndarray:
        """Out-neighbors of *u* (read-only view, ascending order)."""
        return self._out_indices[self._out_indptr[u] : self._out_indptr[u + 1]]

    def successor_weights(self, u: int) -> np.ndarray:
        """Weights parallel to :meth:`successors`."""
        return self._out_weights[self._out_indptr[u] : self._out_indptr[u + 1]]

    def predecessors(self, v: int) -> np.ndarray:
        """In-neighbors of *v* (read-only view, ascending order)."""
        return self._in_indices[self._in_indptr[v] : self._in_indptr[v + 1]]

    def predecessor_weights(self, v: int) -> np.ndarray:
        """Weights parallel to :meth:`predecessors`."""
        return self._in_weights[self._in_indptr[v] : self._in_indptr[v + 1]]

    def out_degree(self, u: Optional[int] = None):
        """Out-degree of *u*, or the full out-degree array when ``u is None``."""
        if u is None:
            return np.diff(self._out_indptr)
        return int(self._out_indptr[u + 1] - self._out_indptr[u])

    def in_degree(self, v: Optional[int] = None):
        """In-degree of *v*, or the full in-degree array when ``v is None``."""
        if v is None:
            return np.diff(self._in_indptr)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the directed edge ``u -> v`` exists."""
        nbrs = self.successors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v``; raises ``KeyError`` if absent."""
        nbrs = self.successors(u)
        i = np.searchsorted(nbrs, v)
        if i < nbrs.size and nbrs[i] == v:
            return float(self.successor_weights(u)[i])
        raise KeyError(f"edge ({u}, {v}) not in graph")

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(u, v, weight)`` triples in CSR order."""
        for u in range(self.n_nodes):
            lo, hi = self._out_indptr[u], self._out_indptr[u + 1]
            for j in range(lo, hi):
                yield u, int(self._out_indices[j]), float(self._out_weights[j])

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, weight)`` arrays covering all edges."""
        src = np.repeat(np.arange(self.n_nodes), np.diff(self._out_indptr))
        return src, self._out_indices.copy(), self._out_weights.copy()

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def reverse(self) -> "Graph":
        """Graph with every edge direction flipped."""
        src, dst, w = self.edge_arrays()
        return Graph(self.n_nodes, dst, src, w)

    def subgraph(self, nodes: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on *nodes*.

        Returns ``(sub, mapping)`` where ``mapping[i]`` is the original id of
        the subgraph node ``i``.  Node ids in the subgraph are relabeled to
        ``0 .. len(nodes)-1`` following the order of *nodes*.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size != np.unique(nodes).size:
            raise ValueError("nodes must be unique")
        local = np.full(self.n_nodes, -1, dtype=np.int64)
        local[nodes] = np.arange(nodes.size)
        src, dst, w = self.edge_arrays()
        keep = (local[src] >= 0) & (local[dst] >= 0)
        return (
            Graph(nodes.size, local[src[keep]], local[dst[keep]], w[keep]),
            nodes,
        )

    def filter_edges(self, min_weight: float) -> "Graph":
        """Keep only edges with ``weight >= min_weight`` (the Fig. 2 backbone
        construction: pairs co-reporting at least 50 events)."""
        src, dst, w = self.edge_arrays()
        keep = w >= min_weight
        return Graph(self.n_nodes, src[keep], dst[keep], w[keep])

    def to_undirected(self) -> "Graph":
        """Symmetrize: weight of {u,v} is the sum of both directed weights,
        materialized as two directed arcs of equal weight."""
        src, dst, w = self.edge_arrays()
        s = np.concatenate([src, dst])
        d = np.concatenate([dst, src])
        ww = np.concatenate([w, w])
        return Graph(self.n_nodes, s, d, ww)

    # ------------------------------------------------------------------ #
    # Dunder
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and np.array_equal(self._out_indptr, other._out_indptr)
            and np.array_equal(self._out_indices, other._out_indices)
            and np.array_equal(self._out_weights, other._out_weights)
        )

    def __hash__(self) -> int:
        return hash((self.n_nodes, self.n_edges))


def _build_csr(
    n: int, src: np.ndarray, dst: np.ndarray, w: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (indptr, indices, weights) sorting neighbors ascending."""
    order = np.lexsort((dst, src))
    src_s, dst_s, w_s = src[order], dst[order], w[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    counts = np.bincount(src_s, minlength=n)
    np.cumsum(counts, out=indptr[1:])
    indices = np.ascontiguousarray(dst_s)
    weights = np.ascontiguousarray(w_s)
    indices.setflags(write=False)
    weights.setflags(write=False)
    indptr.setflags(write=False)
    return indptr, indices, weights
