"""Descriptive statistics over :class:`repro.graphs.Graph`."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "mean_degree",
    "density",
    "degree_histogram",
    "reciprocity",
    "weakly_connected_components",
]


def mean_degree(graph: Graph) -> float:
    """Mean out-degree (equals mean in-degree)."""
    if graph.n_nodes == 0:
        return 0.0
    return graph.n_edges / graph.n_nodes


def density(graph: Graph) -> float:
    """Fraction of the n(n-1) possible directed edges that exist."""
    n = graph.n_nodes
    if n < 2:
        return 0.0
    return graph.n_edges / (n * (n - 1))


def degree_histogram(graph: Graph, which: str = "out") -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of node degrees.

    Returns ``(degrees, counts)`` where ``counts[i]`` nodes have degree
    ``degrees[i]``; only non-empty bins are returned.
    """
    if which == "out":
        deg = graph.out_degree()
    elif which == "in":
        deg = graph.in_degree()
    elif which == "total":
        deg = graph.out_degree() + graph.in_degree()
    else:
        raise ValueError("which must be 'out', 'in', or 'total'")
    values, counts = np.unique(deg, return_counts=True)
    return values, counts


def reciprocity(graph: Graph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.n_edges == 0:
        return 0.0
    src, dst, _ = graph.edge_arrays()
    fwd = set(zip(src.tolist(), dst.tolist()))
    recip = sum(1 for (u, v) in fwd if (v, u) in fwd)
    return recip / len(fwd)


def weakly_connected_components(graph: Graph) -> List[np.ndarray]:
    """Weakly connected components, largest first.

    Iterative BFS over the symmetrized adjacency; returns a list of node-id
    arrays.
    """
    n = graph.n_nodes
    seen = np.zeros(n, dtype=bool)
    components: List[np.ndarray] = []
    for start in range(n):
        if seen[start]:
            continue
        frontier = [start]
        seen[start] = True
        members = [start]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in graph.successors(u):
                    if not seen[v]:
                        seen[v] = True
                        nxt.append(int(v))
                for v in graph.predecessors(u):
                    if not seen[v]:
                        seen[v] = True
                        nxt.append(int(v))
            members.extend(nxt)
            frontier = nxt
        components.append(np.asarray(sorted(members), dtype=np.int64))
    components.sort(key=len, reverse=True)
    return components
